//! Text-token handling: CogVideoX prepends 226 prompt tokens that are not
//! part of the 3-D visual grid. PARO's reorder pins them in place and
//! permutes only the visual suffix; this example shows the combined
//! sequence flowing through a reorder round trip and the effect on the
//! attention map's border strip.
//!
//! ```text
//! cargo run --release --example text_tokens
//! ```

use paro::core::pipeline::attention_map;
use paro::core::reorder::ReorderPlan;
use paro::prelude::*;
use paro::tensor::render;
use paro::tensor::rng::seeded;
use rand::distributions::Uniform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(4, 6, 6);
    let text_tokens = 16;
    let head_dim = 32;
    let n_total = grid.len() + text_tokens;
    println!(
        "sequence: {} text tokens + {} visual tokens = {}",
        text_tokens,
        grid.len(),
        n_total
    );

    // Visual part: a temporal-pattern head. Text part: diffuse queries and
    // keys appended in front (prompt tokens attend broadly).
    let spec = PatternSpec::new(PatternKind::Temporal);
    let visual = synthesize_head(&grid, head_dim, &spec, 7);
    let dist = Uniform::new(-0.6f32, 0.6);
    let mut rng = seeded(99);
    let text_q = Tensor::random(&[text_tokens, head_dim], &dist, &mut rng);
    let text_k = Tensor::random(&[text_tokens, head_dim], &dist, &mut rng);

    let concat = |text: &Tensor, vis: &Tensor| -> Result<Tensor, paro::tensor::TensorError> {
        let mut out = Tensor::zeros(&[n_total, head_dim]);
        out.set_block(0, 0, text)?;
        out.set_block(text_tokens, 0, vis)?;
        Ok(out)
    };
    let q = concat(&text_q, &visual.q)?;
    let k = concat(&text_k, &visual.k)?;

    // Reorder with pinned text: the paper's plan applies to the visual
    // suffix only.
    let plan = ReorderPlan::with_text_tokens(&grid, AxisOrder::Hwf, text_tokens);
    let qr = plan.apply(&q)?;
    let kr = plan.apply(&k)?;

    // Round trip is exact for the full sequence.
    assert_eq!(plan.invert(&qr)?, q);
    println!("reorder round trip over the combined sequence: exact");

    // Text rows occupy a fixed border strip of the map in both orders.
    let before = attention_map(&q, &k)?;
    let after = attention_map(&qr, &kr)?;
    println!("\nattention map, canonical order (text strip at top/left):");
    println!("{}", render::ascii_heatmap(&before, 40)?);
    println!("attention map, visual tokens reordered (strip unchanged):");
    println!("{}", render::ascii_heatmap(&after, 40)?);

    // The text-text corner is bit-identical across the two orders.
    let corner_before = before.block(0, 0, text_tokens, text_tokens)?;
    let corner_after = after.block(0, 0, text_tokens, text_tokens)?;
    let err = metrics::relative_l2(&corner_before, &corner_after)?;
    println!("text-text corner relative difference: {err:.2e} (exact up to float order)");
    Ok(())
}
