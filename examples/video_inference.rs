//! Video inference: run a scaled-down CogVideoX-like model — every block
//! and head with its own attention pattern — under several quantization
//! methods and aggregate the fidelity metrics, a miniature of the paper's
//! Table I protocol.
//!
//! ```text
//! cargo run --release --example video_inference [blocks] [heads]
//! ```

use paro::prelude::*;
use paro::tensor::rng::derive_seed;

struct Aggregate {
    rel_l2: f64,
    cosine: f64,
    snr_db: f64,
    avg_bits: f64,
    heads: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let blocks: usize = args.get(1).map_or(2, |s| s.parse().unwrap_or(2));
    let heads: usize = args.get(2).map_or(4, |s| s.parse().unwrap_or(4));
    let cfg = ModelConfig::tiny(6, 6, 6);
    println!(
        "Mini video model: {} blocks x {} heads, {} tokens/head, head_dim {}",
        blocks,
        heads,
        cfg.grid.len(),
        cfg.head_dim()
    );

    let methods = [
        AttentionMethod::Fp16,
        AttentionMethod::SageAttention,
        AttentionMethod::SangerSparse { threshold: 1e-3 },
        AttentionMethod::NaiveInt { bits: Bitwidth::B8 },
        AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        AttentionMethod::BlockwiseInt {
            bits: Bitwidth::B4,
            block_edge: 6,
        },
        AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 6,
        },
        AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 6,
            alpha: 0.5,
            output_aware: true,
        },
    ];

    println!(
        "\n{:<18} {:>10} {:>10} {:>10} {:>9}",
        "method", "rel-L2", "cosine", "SNR (dB)", "avg bits"
    );
    for method in &methods {
        let mut agg = Aggregate {
            rel_l2: 0.0,
            cosine: 0.0,
            snr_db: 0.0,
            avg_bits: 0.0,
            heads: 0,
        };
        for b in 0..blocks {
            for h in 0..heads {
                let spec = PatternSpec::for_head(&cfg.grid, b, h);
                let seed = derive_seed(2026, (b * heads + h) as u64);
                let head = synthesize_head(&cfg.grid, cfg.head_dim(), &spec, seed);
                let reference = reference_attention(&head.q, &head.k, &head.v)?;
                let inputs = AttentionInputs::new(head.q, head.k, head.v, cfg.grid)?;
                let run = run_attention(&inputs, method)?;
                agg.rel_l2 += metrics::relative_l2(&reference, &run.output)? as f64;
                agg.cosine += metrics::cosine_similarity(&reference, &run.output)? as f64;
                agg.snr_db += metrics::snr_db(&reference, &run.output)? as f64;
                agg.avg_bits += run.avg_bits as f64;
                agg.heads += 1;
            }
        }
        let n = agg.heads as f64;
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>10.1} {:>9.2}",
            method.name(),
            agg.rel_l2 / n,
            agg.cosine / n,
            agg.snr_db / n,
            agg.avg_bits / n
        );
    }
    // Per-pattern breakdown for the flagship method: which head types are
    // hardest to quantize?
    println!("\nPARO MP per-pattern breakdown:");
    let mp = AttentionMethod::ParoMixed {
        budget: 4.8,
        block_edge: 6,
        alpha: 0.5,
        output_aware: true,
    };
    let mut per_kind: std::collections::BTreeMap<&str, (f64, usize)> =
        std::collections::BTreeMap::new();
    for b in 0..blocks {
        for h in 0..heads {
            let spec = PatternSpec::for_head(&cfg.grid, b, h);
            let seed = derive_seed(2026, (b * heads + h) as u64);
            let head = synthesize_head(&cfg.grid, cfg.head_dim(), &spec, seed);
            let reference = reference_attention(&head.q, &head.k, &head.v)?;
            let inputs = AttentionInputs::new(head.q, head.k, head.v, cfg.grid)?;
            let run = run_attention(&inputs, &mp)?;
            let err = metrics::relative_l2(&reference, &run.output)? as f64;
            let e = per_kind.entry(spec.kind.name()).or_insert((0.0, 0));
            e.0 += err;
            e.1 += 1;
        }
    }
    for (kind, (sum, count)) in &per_kind {
        println!(
            "  {:<13} rel-L2 {:.4}  ({count} heads)",
            kind,
            sum / *count as f64
        );
    }
    println!("\nExpected ranking mirrors Table I: PARO MP ~ INT8-class quality,");
    println!("block-wise beats naive, naive INT4 collapses. Diffuse heads (no");
    println!("reorderable structure) are the hardest for block-wise quantization.");
    Ok(())
}
