//! Accelerator explorer: simulate the PARO accelerator and every baseline
//! machine on CogVideoX-2B/5B, printing end-to-end latency, per-category
//! breakdown and energy efficiency.
//!
//! ```text
//! cargo run --release --example accelerator_explorer [2b|5b]
//! ```

use paro::prelude::*;
use paro::sim::cost::CostModel;
use paro::sim::OpCategory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "5b".to_string());
    let cfg = match which.as_str() {
        "2b" => ModelConfig::cogvideox_2b(),
        _ => ModelConfig::cogvideox_5b(),
    };
    let profile = AttentionProfile::paper_mp();
    println!(
        "Model: {} ({} blocks, hidden {}, {} heads, {} tokens, {} steps)",
        cfg.name,
        cfg.blocks,
        cfg.hidden,
        cfg.heads,
        cfg.total_tokens(),
        cfg.steps
    );
    println!(
        "Attention profile: avg {:.2} bits, {:.0}% blocks skipped\n",
        profile.avg_bits(),
        profile.skip_fraction() * 100.0
    );

    let machines: Vec<Box<dyn Machine>> = vec![
        Box::new(SangerMachine::default_budget()),
        Box::new(VitcodMachine::default_budget()),
        Box::new(ParoMachine::new(
            HardwareConfig::paro_asic(),
            ParoOptimizations::all(),
        )),
        Box::new(GpuMachine::a100()),
        Box::new(ParoMachine::new(
            HardwareConfig::paro_align_a100(),
            ParoOptimizations::all(),
        )),
    ];

    let mut reports = Vec::new();
    for machine in &machines {
        reports.push(machine.run_model(&cfg, &profile));
    }
    let sanger_seconds = reports[0].seconds;

    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>10}",
        "machine", "e2e (s)", "vs Sanger", "energy (J)", "TOPS/W"
    );
    for r in &reports {
        println!(
            "{:<18} {:>10.1} {:>11.2}x {:>10.0} {:>10.2}",
            r.machine,
            r.seconds,
            sanger_seconds / r.seconds,
            r.energy_joules,
            r.tops_per_watt()
        );
    }

    println!("\nPer-category latency breakdown (one transformer block):");
    for r in &reports {
        let shares = r.category_shares();
        let get = |c: OpCategory| shares.get(&c).copied().unwrap_or(0.0) * 100.0;
        println!(
            "{:<18} linear {:>5.1}%  qk_t {:>5.1}%  softmax {:>5.1}%  attn_v {:>5.1}%  reorder {:>5.1}%  predict {:>5.1}%",
            r.machine,
            get(OpCategory::Linear),
            get(OpCategory::QkT),
            get(OpCategory::Softmax),
            get(OpCategory::AttnV),
            get(OpCategory::Reorder),
            get(OpCategory::Prediction),
        );
    }

    println!("\nPARO ASIC cost model (Table II, TSMC 12 nm @ 1 GHz):");
    let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
    for c in cm.components() {
        println!(
            "  {:<20} {:<22} {:>6.2} mm2 ({:>4.1}%)  {:>5.2} W ({:>4.1}%)",
            c.name,
            c.config,
            c.area_mm2,
            c.area_mm2 / cm.total_area_mm2() * 100.0,
            c.power_w,
            c.power_w / cm.total_power_w() * 100.0
        );
    }
    println!(
        "  {:<20} {:<22} {:>6.2} mm2 (100%)  {:>5.2} W (100%)",
        "Total",
        "TSMC 12nm",
        cm.total_area_mm2(),
        cm.total_power_w()
    );
    Ok(())
}
