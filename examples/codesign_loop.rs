//! The full hardware-software co-design loop, end to end:
//!
//! 1. **Calibrate** (software, offline): collect attention maps from
//!    synthetic heads, select reorder plans, allocate mixed-precision bits
//!    under a 4.80-bit budget.
//! 2. **Profile**: turn the real bit allocation into an attention-precision
//!    profile.
//! 3. **Simulate** (hardware): run the PARO machine on CogVideoX with that
//!    profile and compare against uniform INT8 — the latency the
//!    algorithm's allocation actually buys.
//! 4. **Verify**: re-run the quantized attention with the frozen
//!    calibration and confirm quality.
//!
//! ```text
//! cargo run --release --example codesign_loop
//! ```

use paro::core::calibration::calibrate_head;
use paro::core::pipeline::{attention_map, run_attention_calibrated};
use paro::prelude::*;
use paro::tensor::rng::derive_seed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let block = BlockGrid::square(6)?;
    let budget = 4.8f32;
    println!("== 1. offline calibration (software) ==");

    // Calibrate a handful of heads with diverse patterns; pool their bit
    // allocations into the machine-level profile.
    let kinds = [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::default_window(&grid),
    ];
    let mut all_bits = Vec::new();
    let mut calibrations = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        let maps: Vec<_> = (0..3)
            .map(|s| {
                let head = synthesize_head(
                    &grid,
                    32,
                    &PatternSpec::new(*kind),
                    derive_seed(50 + i as u64, s),
                );
                attention_map(&head.q, &head.k).unwrap()
            })
            .collect();
        let cal = calibrate_head(&maps, &grid, block, Bitwidth::B4, budget, 0.5)?;
        println!(
            "  head[{kind}]: plan '{}', avg {:.2} bits, blocks 0/2/4/8b = {:?}",
            cal.order,
            cal.allocation.avg_bits,
            cal.allocation.histogram()
        );
        all_bits.extend(cal.allocation.bits.iter().copied());
        calibrations.push((*kind, cal));
    }

    println!("\n== 2. profile from the pooled allocation ==");
    let profile = AttentionProfile::from_bits(&all_bits)?;
    println!(
        "  avg {:.2} bits | shares 0b {:.0}%, 2b {:.0}%, 4b {:.0}%, 8b {:.0}% | PE speedup {:.2}x over INT8",
        profile.avg_bits(),
        profile.share(Bitwidth::B0) * 100.0,
        profile.share(Bitwidth::B2) * 100.0,
        profile.share(Bitwidth::B4) * 100.0,
        profile.share(Bitwidth::B8) * 100.0,
        1.0 / profile.inverse_throughput().max(1e-9),
    );

    println!("\n== 3. hardware simulation with the real profile ==");
    let cfg = ModelConfig::cogvideox_5b();
    // The exact per-block assignment drives the dispatcher (not just the
    // aggregate shares).
    let machine = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .with_block_bits(all_bits.clone());
    let with_alloc = machine.run_model(&cfg, &profile);
    let with_int8 = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&cfg, &AttentionProfile::uniform(Bitwidth::B8));
    println!(
        "  {}: {:.1} s with the calibrated allocation vs {:.1} s at uniform INT8 ({:.2}x from mixed precision)",
        cfg.name,
        with_alloc.seconds,
        with_int8.seconds,
        with_int8.seconds / with_alloc.seconds
    );

    println!("\n== 4. frozen-calibration inference quality ==");
    for (kind, cal) in &calibrations {
        // Unseen head of the same pattern.
        let head = synthesize_head(&grid, 32, &PatternSpec::new(*kind), derive_seed(999, 1));
        let reference = reference_attention(&head.q, &head.k, &head.v)?;
        let inputs = AttentionInputs::new(head.q, head.k, head.v, grid)?;
        let run = run_attention_calibrated(&inputs, cal, true)?;
        println!(
            "  head[{kind}]: rel-L2 {:.4}, cosine {:.4}, map sparsity {:.0}%",
            metrics::relative_l2(&reference, &run.output)?,
            metrics::cosine_similarity(&reference, &run.output)?,
            run.map_sparsity * 100.0
        );
    }
    println!("\nThe loop closes: the software allocation drives the hardware profile,");
    println!("and the frozen configuration preserves quality on unseen inputs.");
    Ok(())
}
