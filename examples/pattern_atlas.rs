//! Pattern atlas: render every synthetic attention pattern before and
//! after PARO's reorder (the paper's Fig. 8 visualization).
//!
//! ```text
//! cargo run --release --example pattern_atlas
//! ```
//!
//! Also writes PGM images of each map pair into `target/pattern_atlas/`.

use paro::core::pipeline::attention_map;
use paro::core::reorder::{reorder_map, select_plan, ReorderPlan};
use paro::prelude::*;
use paro::tensor::render;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let out_dir = std::path::Path::new("target/pattern_atlas");
    fs::create_dir_all(out_dir)?;

    let kinds = [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::default_window(&grid),
        PatternKind::Diffuse,
    ];
    for (i, kind) in kinds.iter().enumerate() {
        let spec = PatternSpec::new(*kind);
        let head = synthesize_head(&grid, 32, &spec, 100 + i as u64);
        let map = attention_map(&head.q, &head.k)?;

        // Offline plan selection at INT4 with 6x6 blocks.
        let block = BlockGrid::square(6)?;
        let sel = select_plan(&map, &grid, block, Bitwidth::B4)?;
        let plan = ReorderPlan::new(&grid, sel.order);
        let reordered = reorder_map(&map, &plan)?;

        println!("== pattern '{kind}' -> selected order '{}' ==", sel.order);
        println!("candidate errors:");
        for (order, err) in &sel.candidate_errors {
            let marker = if *order == sel.order {
                " <-- selected"
            } else {
                ""
            };
            println!("  {order}: {err:.5}{marker}");
        }
        println!("\nbefore reorder:                      after reorder:");
        let before = render::ascii_heatmap(&map, 36)?;
        let after = render::ascii_heatmap(&reordered, 36)?;
        for (l, r) in before.lines().zip(after.lines()) {
            println!("{l}   {r}");
        }
        println!();

        fs::write(
            out_dir.join(format!("{}_before.pgm", kind.name())),
            render::pgm_bytes(&map, 216)?,
        )?;
        fs::write(
            out_dir.join(format!("{}_after.pgm", kind.name())),
            render::pgm_bytes(&reordered, 216)?,
        )?;
    }
    println!("PGM images written to {}", out_dir.display());
    Ok(())
}
