//! DDIM "video generation" demo: sample a latent video from the synthetic
//! DiT with full-precision and PARO-quantized attention, and compare the
//! two trajectories — the closest analog of the paper's Fig. 7 that runs
//! without the real model.
//!
//! ```text
//! cargo run --release --example ddim_video [steps] [seed]
//! ```

use paro::core::diffusion::DdimSampler;
use paro::core::exec::ForwardOptions;
use paro::model::dit::SyntheticDit;
use paro::prelude::*;
use paro::tensor::render;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    let cfg = ModelConfig::tiny(4, 4, 4);
    let dit = SyntheticDit::build(&cfg, 21);
    let sampler = DdimSampler::new(steps);
    println!(
        "Sampling a {}x{}x{} latent video over {} DDIM steps (seed {seed})",
        cfg.grid.frames(),
        cfg.grid.height(),
        cfg.grid.width(),
        steps
    );

    println!("\n- full-precision reference ...");
    let reference = sampler.sample(&dit, &ForwardOptions::reference(), seed)?;
    println!("- PARO MP 4.8-bit attention + W8A8 linears ...");
    let quantized = sampler.sample(&dit, &ForwardOptions::paro(4.8, 4), seed)?;

    let div = quantized.divergence_from(&reference)?;
    println!("\nper-step divergence from the reference trajectory:");
    for (i, d) in div.iter().enumerate() {
        let bar_len = (d * 200.0).round() as usize;
        println!("  step {i:>2}: {d:.4} {}", "#".repeat(bar_len.min(60)));
    }
    let final_cos = metrics::cosine_similarity(reference.final_latent(), quantized.final_latent())?;
    println!("\nfinal-latent cosine similarity: {final_cos:.4}");

    // Render both final latents frame-by-frame as heatmap strips.
    let out_dir = std::path::Path::new("target/ddim_video");
    fs::create_dir_all(out_dir)?;
    let frames = cfg.grid.frames();
    let feat = reference.final_latent().len() / frames;
    for (name, traj) in [("reference", &reference), ("paro_mp", &quantized)] {
        let strip = traj.final_latent().reshape(&[frames, feat])?;
        fs::write(
            out_dir.join(format!("{name}.pgm")),
            render::pgm_bytes(&strip, 512)?,
        )?;
    }
    println!("final latents written to {}", out_dir.display());
    Ok(())
}
