//! Quickstart: quantize one attention head with PARO and inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 3D token grid (8 frames x 8 x 8 spatial) and one synthetic
    // attention head with a temporal-diagonal pattern: each token attends
    // to the same spatial position across frames, as the paper observes in
    // CogVideoX.
    let cfg = ModelConfig::tiny(8, 8, 8);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&cfg.grid, cfg.head_dim(), &spec, 42);
    println!(
        "Synthesized head: {} tokens (grid {}x{}x{}), head_dim {}",
        cfg.grid.len(),
        cfg.grid.frames(),
        cfg.grid.height(),
        cfg.grid.width(),
        cfg.head_dim()
    );

    // Full-precision reference output.
    let reference = reference_attention(&head.q, &head.k, &head.v)?;
    let inputs = AttentionInputs::new(head.q, head.k, head.v, cfg.grid)?;

    // Compare the paper's Table I methods on this head.
    println!(
        "\n{:<18} {:>12} {:>12} {:>10}",
        "method", "rel-L2 err", "cosine sim", "avg bits"
    );
    for method in [
        AttentionMethod::Fp16,
        AttentionMethod::SageAttention,
        AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        AttentionMethod::BlockwiseInt {
            bits: Bitwidth::B4,
            block_edge: 8,
        },
        AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 8,
        },
        AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 8,
            alpha: 0.5,
            output_aware: true,
        },
    ] {
        let run = run_attention(&inputs, &method)?;
        let err = metrics::relative_l2(&reference, &run.output)?;
        let cos = metrics::cosine_similarity(&reference, &run.output)?;
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>10.2}",
            method.name(),
            err,
            cos,
            run.avg_bits
        );
        if let Some(alloc) = &run.allocation {
            let h = alloc.histogram();
            println!(
                "  mixed-precision blocks: {} x 0bit, {} x 2bit, {} x 4bit, {} x 8bit",
                h[0], h[1], h[2], h[3]
            );
        }
        if let Some(plan) = &run.plan {
            println!("  reorder plan: axis order '{}'", plan.order());
        }
    }
    println!("\nPARO MP at ~4.8 bits should match INT8-class fidelity while");
    println!("naive row-wise INT4 collapses — the paper's Table I story.");
    Ok(())
}
