//! Cross-crate integration: mathematical equivalence guarantees of the
//! PARO pipeline (paper Fig. 3) on realistically diverse heads.

use paro::core::pipeline::attention_map;
use paro::core::reorder::{reorder_map, select_plan, ReorderPlan};
use paro::prelude::*;
use paro::tensor::rng::derive_seed;

fn head_for(grid: &TokenGrid, block: usize, head: usize) -> paro::model::patterns::HeadSynthesis {
    let spec = PatternSpec::for_head(grid, block, head);
    synthesize_head(
        grid,
        32,
        &spec,
        derive_seed(77, (block * 100 + head) as u64),
    )
}

#[test]
fn reorder_roundtrip_exact_for_every_order_and_pattern() {
    let grid = TokenGrid::new(5, 4, 3);
    for block in 0..2 {
        for h in 0..6 {
            let head = head_for(&grid, block, h);
            for order in AxisOrder::ALL {
                let plan = ReorderPlan::new(&grid, order);
                let q = plan.apply(&head.q).unwrap();
                assert_eq!(plan.invert(&q).unwrap(), head.q);
            }
        }
    }
}

#[test]
fn full_precision_attention_is_reorder_invariant() {
    // softmax(PQ (PK)ᵀ)·PV then P⁻¹ equals softmax(QKᵀ)·V up to float
    // associativity, for every order.
    let grid = TokenGrid::new(4, 4, 4);
    let head = head_for(&grid, 1, 2);
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
    for order in AxisOrder::ALL {
        let plan = ReorderPlan::new(&grid, order);
        let q = plan.apply(&head.q).unwrap();
        let k = plan.apply(&head.k).unwrap();
        let v = plan.apply(&head.v).unwrap();
        let o = attention_map(&q, &k).unwrap().matmul(&v).unwrap();
        let restored = plan.invert(&o).unwrap();
        let err = metrics::relative_l2(&reference, &restored).unwrap();
        assert!(err < 1e-4, "order {order}: {err}");
    }
}

#[test]
fn selected_plan_never_worse_than_identity() {
    // The offline search includes the identity order, so the selected
    // plan's block-quantization error can never exceed the unreordered one.
    let grid = TokenGrid::new(4, 4, 4);
    let block = BlockGrid::square(8).unwrap();
    for h in 0..8 {
        let head = head_for(&grid, 0, h);
        let map = attention_map(&head.q, &head.k).unwrap();
        let sel = select_plan(&map, &grid, block, Bitwidth::B4).unwrap();
        let identity_err = sel
            .candidate_errors
            .iter()
            .find(|(o, _)| *o == AxisOrder::Fhw)
            .map(|&(_, e)| e)
            .unwrap();
        assert!(sel.error <= identity_err + 1e-7, "head {h}");
    }
}

#[test]
fn paro_output_stays_in_canonical_order() {
    // The pipeline's output must be inverse-reordered: compare its
    // token-0 row against the reference's token-0 row rather than any
    // permuted row.
    let grid = TokenGrid::new(4, 4, 4);
    let head = head_for(&grid, 2, 1);
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
    let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
    let run = run_attention(
        &inputs,
        &AttentionMethod::ParoInt {
            bits: Bitwidth::B8,
            block_edge: 4,
        },
    )
    .unwrap();
    // Row-by-row cosine with the reference should be uniformly high; a
    // forgotten inverse reorder would scramble rows and break this.
    for t in 0..grid.len() {
        let r = reference.block(t, 0, 1, reference.shape()[1]).unwrap();
        let o = run.output.block(t, 0, 1, run.output.shape()[1]).unwrap();
        let cos = metrics::cosine_similarity(&r, &o).unwrap();
        assert!(cos > 0.95, "token {t}: cosine {cos}");
    }
}

#[test]
fn reorder_map_commutes_with_block_quantization_error() {
    // Quantizing the reordered map block-wise must give a (weakly) lower
    // error than quantizing the original map block-wise, for heads whose
    // pattern the reorder unifies.
    let grid = TokenGrid::new(4, 4, 4);
    for kind in [PatternKind::Temporal, PatternKind::SpatialCol] {
        let spec = PatternSpec::new(kind);
        let head = synthesize_head(&grid, 32, &spec, 5);
        let map = attention_map(&head.q, &head.k).unwrap();
        let block = BlockGrid::square(4).unwrap();
        let plan = ReorderPlan::new(&grid, kind.preferred_order());
        let reordered = reorder_map(&map, &plan).unwrap();
        let (q_plain, _) =
            paro::quant::fake_quant_2d(&map, Grouping::Block(block), Bitwidth::B4).unwrap();
        let (q_reord, _) =
            paro::quant::fake_quant_2d(&reordered, Grouping::Block(block), Bitwidth::B4).unwrap();
        let e_plain = metrics::relative_l2(&map, &q_plain).unwrap();
        let e_reord = metrics::relative_l2(&reordered, &q_reord).unwrap();
        assert!(
            e_reord < e_plain,
            "{kind}: reordered err {e_reord} vs plain {e_plain}"
        );
    }
}
