//! Randomized cross-crate integration: arbitrary small model shapes pushed
//! through the full stack, asserting structural invariants everywhere.

use paro::core::pipeline::attention_map;
use paro::core::reorder::select_plan;
use paro::prelude::*;
use paro::sim::traffic::{block_bytes, TrafficConfig};
use proptest::prelude::*;

fn small_grid() -> impl Strategy<Value = TokenGrid> {
    (2usize..=4, 2usize..=4, 2usize..=4).prop_map(|(f, h, w)| TokenGrid::new(f, h, w))
}

fn method() -> impl Strategy<Value = AttentionMethod> {
    prop::sample::select(vec![
        AttentionMethod::Fp16,
        AttentionMethod::SageAttention,
        AttentionMethod::SageAttentionV2,
        AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        AttentionMethod::BlockwiseInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 4,
            alpha: 0.5,
            output_aware: true,
        },
    ])
}

fn kind() -> impl Strategy<Value = PatternKind> {
    prop::sample::select(vec![
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::Diffuse,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_method_on_any_grid_is_well_formed(
        grid in small_grid(), m in method(), k in kind(), seed in 0u64..10_000
    ) {
        let head = synthesize_head(&grid, 16, &PatternSpec::new(k), seed);
        let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
        let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
        let run = run_attention(&inputs, &m).unwrap();
        // Output well-formed.
        prop_assert_eq!(run.output.shape(), &[grid.len(), 16][..]);
        prop_assert!(run.output.as_slice().iter().all(|v| v.is_finite()));
        // Any quantized output stays within a loose error envelope of the
        // reference (nothing explodes).
        let err = metrics::relative_l2(&reference, &run.output).unwrap();
        prop_assert!(err < 1.0, "{}: err {err}", m.name());
        // Statistics consistent with the method.
        prop_assert!((0.0..=1.0).contains(&run.map_sparsity));
        if let AttentionMethod::ParoMixed { budget, .. } = m {
            prop_assert!(run.avg_bits <= budget + 1e-3);
            prop_assert!(run.allocation.is_some());
        }
        prop_assert_eq!(run.plan.is_some(), m.uses_reorder());
    }

    #[test]
    fn plan_selection_total_on_any_patterned_grid(
        grid in small_grid(), k in kind(), seed in 0u64..10_000
    ) {
        let head = synthesize_head(&grid, 16, &PatternSpec::new(k), seed);
        let map = attention_map(&head.q, &head.k).unwrap();
        let edge = grid.frames().min(grid.height()).min(grid.width()).max(2);
        let sel = select_plan(&map, &grid, BlockGrid::square(edge).unwrap(), Bitwidth::B4).unwrap();
        prop_assert_eq!(sel.candidate_errors.len(), 6);
        prop_assert!(sel.candidate_errors.iter().all(|(_, e)| e.is_finite() && *e >= 0.0));
        let min = sel.candidate_errors.iter().map(|&(_, e)| e).fold(f32::INFINITY, f32::min);
        prop_assert_eq!(sel.error, min);
    }

    #[test]
    fn machine_invariants_on_random_configs(
        blocks in 1usize..6, heads_pow in 0usize..3, steps in 1usize..4
    ) {
        // Random (small) model shapes through every machine: latency and
        // energy are finite, positive, and scale linearly with steps.
        let mut cfg = ModelConfig::tiny(4, 4, 4);
        cfg.blocks = blocks;
        cfg.heads = 1 << heads_pow;
        cfg.steps = steps;
        let p = AttentionProfile::paper_mp();
        let machines: Vec<Box<dyn Machine>> = vec![
            Box::new(ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())),
            Box::new(SangerMachine::default_budget()),
            Box::new(VitcodMachine::default_budget()),
            Box::new(GpuMachine::a100()),
        ];
        for m in &machines {
            let r1 = m.run_model(&cfg, &p);
            prop_assert!(r1.seconds > 0.0 && r1.seconds.is_finite(), "{}", m.name());
            prop_assert!(r1.energy_joules > 0.0 && r1.energy_joules.is_finite());
            let mut cfg2 = cfg.clone();
            cfg2.steps = steps * 2;
            let r2 = m.run_model(&cfg2, &p);
            prop_assert!(
                (r2.seconds / r1.seconds - 2.0).abs() < 1e-6,
                "{}: steps must scale latency linearly", m.name()
            );
        }
    }

    #[test]
    fn traffic_formulas_total_on_random_configs(
        f in 2usize..5, h in 2usize..5, w in 2usize..5
    ) {
        let cfg = ModelConfig::tiny(f, h, w);
        let hw = HardwareConfig::paro_asic();
        let tc = TrafficConfig::paro(&AttentionProfile::paper_mp());
        let bytes = block_bytes(&hw, &cfg, &tc, true);
        prop_assert!(bytes > 0.0 && bytes.is_finite());
        // Weights alone give a lower bound: 12 d² INT8 bytes.
        let weight_floor = 12.0 * (cfg.hidden as f64).powi(2);
        prop_assert!(bytes >= weight_floor);
    }
}
