//! Cross-crate integration: the Table I quality ordering on a population
//! of diverse synthetic heads (the statistical claim of the paper).

use paro::prelude::*;
use paro::tensor::rng::derive_seed;

/// Mean relative-L2 error of a method over a population of heads covering
/// every pattern kind.
fn population_error(method: &AttentionMethod, seeds: u64) -> f32 {
    let grid = TokenGrid::new(4, 4, 4);
    let kinds = [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::default_window(&grid),
    ];
    let mut total = 0.0f32;
    let mut count = 0usize;
    for (i, kind) in kinds.iter().enumerate() {
        for s in 0..seeds {
            let spec = PatternSpec::new(*kind);
            let head = synthesize_head(&grid, 32, &spec, derive_seed(9000 + i as u64, s));
            let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
            let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
            let run = run_attention(&inputs, method).unwrap();
            total += metrics::relative_l2(&reference, &run.output).unwrap();
            count += 1;
        }
    }
    total / count as f32
}

#[test]
fn table1_int4_ordering() {
    // Naive INT4 >> block-wise INT4 > PARO INT4 (lower is better).
    let naive = population_error(&AttentionMethod::NaiveInt { bits: Bitwidth::B4 }, 3);
    let blockwise = population_error(
        &AttentionMethod::BlockwiseInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        3,
    );
    let paro = population_error(
        &AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        3,
    );
    assert!(
        paro < blockwise && blockwise < naive,
        "expected PARO {paro} < blockwise {blockwise} < naive {naive}"
    );
    // And the naive INT4 collapse is dramatic, as Table I shows
    // (VQA 52.86 -> 16.79).
    assert!(
        naive > paro * 2.0,
        "naive INT4 ({naive}) should be far worse than PARO INT4 ({paro})"
    );
}

#[test]
fn paro_mp_matches_int8_class_quality() {
    let mp = population_error(
        &AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 4,
            alpha: 0.5,
            output_aware: false,
        },
        3,
    );
    let int8 = population_error(
        &AttentionMethod::ParoInt {
            bits: Bitwidth::B8,
            block_edge: 4,
        },
        3,
    );
    let int4 = population_error(
        &AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        3,
    );
    assert!(
        mp < int4,
        "PARO MP ({mp}) must beat PARO INT4 ({int4}) at similar average bits"
    );
    assert!(
        mp < int8 * 4.0 + 0.02,
        "PARO MP ({mp}) should be in the INT8 class ({int8})"
    );
}

#[test]
fn output_aware_qkt_is_perceptually_lossless() {
    // The paper: LDZ-truncated QKᵀ "produced no perceptible differences".
    let exact = population_error(
        &AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 4,
            alpha: 0.5,
            output_aware: false,
        },
        2,
    );
    let aware = population_error(
        &AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 4,
            alpha: 0.5,
            output_aware: true,
        },
        2,
    );
    assert!(
        (aware - exact).abs() < 0.08,
        "output-aware {aware} vs exact {exact}: difference should be small"
    );
}

#[test]
fn sage_attention_and_fp16_are_best() {
    let fp16 = population_error(&AttentionMethod::Fp16, 2);
    let sage = population_error(&AttentionMethod::SageAttention, 2);
    let naive8 = population_error(&AttentionMethod::NaiveInt { bits: Bitwidth::B8 }, 2);
    assert_eq!(fp16, 0.0);
    assert!(sage < naive8, "sage {sage} should beat naive INT8 {naive8}");
}

#[test]
fn mixed_precision_budget_monotonicity() {
    // More budget, better quality.
    let mut prev = f32::INFINITY;
    for budget in [2.0f32, 4.0, 6.0, 8.0] {
        let err = population_error(
            &AttentionMethod::ParoMixed {
                budget,
                block_edge: 4,
                alpha: 0.5,
                output_aware: false,
            },
            2,
        );
        assert!(
            err <= prev * 1.05 + 1e-4,
            "budget {budget}: error {err} vs previous {prev}"
        );
        prev = err;
    }
}
