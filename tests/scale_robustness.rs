//! Scale robustness: DESIGN.md §2 claims quantization-accuracy conclusions
//! transfer from the reduced experiment scale to CogVideoX scale because
//! the patterns are generated at the same *relative* locality. These tests
//! provide the evidence: the Table I ordering holds across token-grid
//! sizes, head dimensions, and pattern sharpness.

use paro::prelude::*;
use paro::tensor::rng::derive_seed;

/// Relative-L2 error of a method on one head.
fn err_for(
    method: &AttentionMethod,
    grid: &TokenGrid,
    head_dim: usize,
    spec: &PatternSpec,
    seed: u64,
) -> f32 {
    let head = synthesize_head(grid, head_dim, spec, seed);
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
    let inputs = AttentionInputs::new(head.q, head.k, head.v, *grid).unwrap();
    let run = run_attention(&inputs, method).unwrap();
    metrics::relative_l2(&reference, &run.output).unwrap()
}

/// Averages over seeds; returns (naive4, paro4, paro_mp).
fn ordering_at(grid: &TokenGrid, head_dim: usize, block_edge: usize) -> (f32, f32, f32) {
    let kinds = [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
    ];
    let mut naive = 0.0;
    let mut paro4 = 0.0;
    let mut mp = 0.0;
    let mut count = 0;
    for (i, kind) in kinds.iter().enumerate() {
        for s in 0..2u64 {
            let spec = PatternSpec::new(*kind);
            let seed = derive_seed(3000 + i as u64, s);
            naive += err_for(
                &AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
                grid,
                head_dim,
                &spec,
                seed,
            );
            paro4 += err_for(
                &AttentionMethod::ParoInt {
                    bits: Bitwidth::B4,
                    block_edge,
                },
                grid,
                head_dim,
                &spec,
                seed,
            );
            mp += err_for(
                &AttentionMethod::ParoMixed {
                    budget: 4.8,
                    block_edge,
                    alpha: 0.5,
                    output_aware: false,
                },
                grid,
                head_dim,
                &spec,
                seed,
            );
            count += 1;
        }
    }
    let n = count as f32;
    (naive / n, paro4 / n, mp / n)
}

#[test]
fn ordering_holds_across_grid_scales() {
    // Same relative locality, three absolute scales.
    for (grid, edge) in [
        (TokenGrid::new(3, 3, 3), 3),
        (TokenGrid::new(4, 4, 4), 4),
        (TokenGrid::new(6, 6, 6), 6),
    ] {
        let (naive, paro4, mp) = ordering_at(&grid, 32, edge);
        assert!(
            mp < paro4 && paro4 < naive,
            "grid {}x{}x{}: mp {mp} < paro4 {paro4} < naive {naive} violated",
            grid.frames(),
            grid.height(),
            grid.width()
        );
    }
}

#[test]
fn ordering_holds_across_head_dims() {
    let grid = TokenGrid::new(4, 4, 4);
    for head_dim in [16usize, 32, 64] {
        let (naive, paro4, mp) = ordering_at(&grid, head_dim, 4);
        assert!(
            mp < paro4 && paro4 < naive,
            "head_dim {head_dim}: mp {mp} < paro4 {paro4} < naive {naive} violated"
        );
    }
}

#[test]
fn ordering_holds_across_sharpness() {
    // From mild to strong pattern concentration, the reorder keeps paying.
    let grid = TokenGrid::new(4, 4, 4);
    for sharpness in [3.0f32, 5.0, 7.0] {
        let mut spec = PatternSpec::new(PatternKind::Temporal);
        spec.sharpness = sharpness;
        let naive = err_for(
            &AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
            &grid,
            32,
            &spec,
            9,
        );
        let paro = err_for(
            &AttentionMethod::ParoInt {
                bits: Bitwidth::B4,
                block_edge: 4,
            },
            &grid,
            32,
            &spec,
            9,
        );
        assert!(
            paro < naive,
            "sharpness {sharpness}: paro {paro} should beat naive {naive}"
        );
    }
}

#[test]
fn error_magnitudes_do_not_explode_with_scale() {
    // The absolute error level stays in the same band as the grid grows —
    // the reduced-scale numbers are representative, not a small-n artifact.
    let small = ordering_at(&TokenGrid::new(3, 3, 3), 32, 3).2;
    let large = ordering_at(&TokenGrid::new(6, 6, 6), 32, 6).2;
    assert!(
        large < small * 4.0 + 0.02 && small < large * 4.0 + 0.02,
        "PARO MP error should be scale-stable: {small} vs {large}"
    );
}
