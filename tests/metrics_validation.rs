//! Validation of the Table I metric substitution: for the proxies to
//! stand in for FVD/CLIPSIM/VQA/Flicker, they must (a) rank controlled
//! corruption levels consistently, (b) agree with each other on method
//! ranking, and (c) be deterministic. These tests are the evidence behind
//! DESIGN.md §2's claim that "output-error proxies preserve the ranking".

use paro::prelude::*;
use paro::tensor::rng::seeded;
use rand::distributions::Uniform;
use rand::Rng;

fn reference_output() -> Tensor {
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 3);
    reference_attention(&head.q, &head.k, &head.v).unwrap()
}

/// Adds zero-mean noise with the given relative magnitude.
fn corrupt(reference: &Tensor, level: f32, seed: u64) -> Tensor {
    let scale = reference.norm() / (reference.len() as f32).sqrt();
    let mut rng = seeded(seed);
    let dist = Uniform::new(-1.0f32, 1.0);
    let noise: Vec<f32> = (0..reference.len())
        .map(|_| level * scale * rng.sample(dist))
        .collect();
    let noise_t = Tensor::from_vec(reference.shape(), noise).unwrap();
    reference.add(&noise_t).unwrap()
}

#[test]
fn every_proxy_is_monotone_in_corruption() {
    let reference = reference_output();
    let levels = [0.0f32, 0.01, 0.05, 0.2, 0.8];
    let outputs: Vec<Tensor> = levels.iter().map(|&l| corrupt(&reference, l, 7)).collect();
    // FVD-proxy (relative L2): increasing.
    let fvd: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::relative_l2(&reference, o).unwrap())
        .collect();
    for w in fvd.windows(2) {
        assert!(w[0] <= w[1] + 1e-6, "FVD-proxy not monotone: {fvd:?}");
    }
    // CLIPSIM-proxy (cosine): decreasing.
    let cos: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::cosine_similarity(&reference, o).unwrap())
        .collect();
    for w in cos.windows(2) {
        assert!(w[0] >= w[1] - 1e-6, "CLIPSIM-proxy not monotone: {cos:?}");
    }
    // VQA-proxy (SNR dB): decreasing.
    let snr: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::snr_db(&reference, o).unwrap())
        .collect();
    for w in snr.windows(2) {
        assert!(w[0] >= w[1] - 1e-4, "VQA-proxy not monotone: {snr:?}");
    }
}

#[test]
fn proxies_agree_on_method_ranking() {
    // All proxies must produce the same ordering of the headline methods —
    // if they disagreed, the substitution would be metric-shopping.
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 11);
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
    let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
    let methods = [
        AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        AttentionMethod::ParoInt {
            bits: Bitwidth::B8,
            block_edge: 4,
        },
    ];
    let outputs: Vec<Tensor> = methods
        .iter()
        .map(|m| run_attention(&inputs, m).unwrap().output)
        .collect();
    // Expected order worst -> best: naive INT4, PARO INT4, PARO INT8.
    let fvd: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::relative_l2(&reference, o).unwrap())
        .collect();
    assert!(fvd[0] > fvd[1] && fvd[1] > fvd[2], "FVD ranking: {fvd:?}");
    let cos: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::cosine_similarity(&reference, o).unwrap())
        .collect();
    assert!(
        cos[0] < cos[1] && cos[1] < cos[2],
        "cosine ranking: {cos:?}"
    );
    let snr: Vec<f32> = outputs
        .iter()
        .map(|o| metrics::snr_db(&reference, o).unwrap())
        .collect();
    assert!(snr[0] < snr[1] && snr[1] < snr[2], "SNR ranking: {snr:?}");
}

#[test]
fn temporal_proxies_distinguish_noise_structure() {
    // CLIP-Temp / Flicker target *temporal* artifacts specifically: they
    // must separate frame-coherent corruption from frame-incoherent
    // corruption of the same total magnitude, which scalar error metrics
    // cannot.
    let frames = 8;
    let feat = 64;
    let reference = Tensor::from_fn(&[frames, feat], |i| (i[1] as f32 * 0.17).sin() + 2.0);
    // Same per-element magnitude; one coherent across frames, one not.
    let coherent = Tensor::from_fn(&[frames, feat], |i| {
        reference.at(&[i[0], i[1]]) + 0.05 * ((i[1] * 13 % 7) as f32 - 3.0)
    });
    let incoherent = Tensor::from_fn(&[frames, feat], |i| {
        reference.at(&[i[0], i[1]]) + 0.05 * (((i[0] * 31 + i[1] * 13) % 7) as f32 - 3.0)
    });
    let scalar_coherent = metrics::relative_l2(&reference, &coherent).unwrap();
    let scalar_incoherent = metrics::relative_l2(&reference, &incoherent).unwrap();
    // Scalar error barely distinguishes them...
    assert!((scalar_coherent - scalar_incoherent).abs() < 0.35 * scalar_coherent);
    // ...but temporal consistency penalizes the incoherent one more.
    let t_coherent = metrics::temporal_consistency(&reference, &coherent).unwrap();
    let t_incoherent = metrics::temporal_consistency(&reference, &incoherent).unwrap();
    assert!(
        t_incoherent < t_coherent,
        "temporal proxy must prefer frame-coherent corruption: {t_coherent} vs {t_incoherent}"
    );
}

#[test]
fn proxies_are_deterministic() {
    let reference = reference_output();
    let a = corrupt(&reference, 0.1, 5);
    let e1 = metrics::relative_l2(&reference, &a).unwrap();
    let e2 = metrics::relative_l2(&reference, &a).unwrap();
    assert_eq!(e1, e2);
    let b = corrupt(&reference, 0.1, 5);
    assert_eq!(a, b, "corruption itself must be seed-deterministic");
}
