//! Cross-crate integration: the full synthetic-DiT path — pattern-bearing
//! weights, quantized forward passes, offline calibration, frozen-plan
//! inference, and DDIM error dynamics — wired together end to end.

use paro::core::calibration::{calibrate_head, plan_stability};
use paro::core::diffusion::DdimSampler;
use paro::core::exec::{forward, rms_norm, ForwardOptions};
use paro::core::pipeline::{attention_map, run_attention_calibrated, AttentionInputs};
use paro::model::dit::SyntheticDit;
use paro::prelude::*;
use paro::tensor::rng::seeded;
use rand::distributions::Uniform;

fn dit() -> SyntheticDit {
    SyntheticDit::build(&ModelConfig::tiny(4, 4, 4), 31)
}

fn content(cfg: &ModelConfig, seed: u64) -> Tensor {
    Tensor::random(
        &[cfg.grid.len(), cfg.hidden],
        &Uniform::new(-0.5f32, 0.5),
        &mut seeded(seed),
    )
}

#[test]
fn quantized_forward_quality_ordering() {
    let dit = dit();
    let x = content(dit.config(), 4);
    let (reference, _) = forward(&dit, &x, &ForwardOptions::reference()).unwrap();
    let mut errs = Vec::new();
    for (name, opts) in [
        (
            "naive-int4",
            ForwardOptions {
                method: AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
        (
            "paro-int4",
            ForwardOptions {
                method: AttentionMethod::ParoInt {
                    bits: Bitwidth::B4,
                    block_edge: 4,
                },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
        ("paro-mp", ForwardOptions::paro(4.8, 4)),
    ] {
        let (out, _) = forward(&dit, &x, &opts).unwrap();
        errs.push((name, metrics::relative_l2(&reference, &out).unwrap()));
    }
    // PARO MP < PARO INT4 < naive INT4, through a real multi-block forward.
    assert!(errs[2].1 < errs[1].1, "{errs:?}");
    assert!(errs[1].1 < errs[0].1, "{errs:?}");
}

#[test]
fn calibrate_on_dit_then_run_frozen() {
    // The deployment loop: collect calibration maps from DiT forward
    // passes, freeze per-head configs, run frozen at inference on new
    // content, and verify quality.
    let dit = dit();
    let cfg = dit.config().clone();
    let hd = cfg.head_dim();
    let block = 0usize;
    let head = 1usize;

    // Calibration maps from 3 content samples.
    let maps: Vec<Tensor> = (0..3)
        .map(|s| {
            let x = rms_norm(&content(&cfg, 100 + s).add(dit.positional()).unwrap());
            let w = &dit.blocks()[block];
            let q = x.matmul(&w.w_q).unwrap();
            let k = x.matmul(&w.w_k).unwrap();
            attention_map(
                &q.block(0, head * hd, cfg.grid.len(), hd).unwrap(),
                &k.block(0, head * hd, cfg.grid.len(), hd).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let grid = cfg.grid;
    let cal = calibrate_head(
        &maps,
        &grid,
        BlockGrid::square(4).unwrap(),
        Bitwidth::B4,
        4.8,
        0.5,
    )
    .unwrap();
    assert!(cal.allocation.avg_bits <= 4.8 + 1e-4);

    // Stability of the per-sample selections behind that calibration.
    let stab = plan_stability(&maps, &grid, BlockGrid::square(4).unwrap(), Bitwidth::B4).unwrap();
    assert!(
        stab.mean_regret < 0.3,
        "frozen-plan regret {} too high",
        stab.mean_regret
    );

    // Frozen inference on unseen content.
    let x = rms_norm(&content(&cfg, 999).add(dit.positional()).unwrap());
    let w = &dit.blocks()[block];
    let q = x.matmul(&w.w_q).unwrap();
    let k = x.matmul(&w.w_k).unwrap();
    let v = x.matmul(&w.w_v).unwrap();
    let qs = q.block(0, head * hd, grid.len(), hd).unwrap();
    let ks = k.block(0, head * hd, grid.len(), hd).unwrap();
    let vs = v.block(0, head * hd, grid.len(), hd).unwrap();
    let reference = reference_attention(&qs, &ks, &vs).unwrap();
    let inputs = AttentionInputs::new(qs, ks, vs, grid).unwrap();
    let run = run_attention_calibrated(&inputs, &cal, true).unwrap();
    let err = metrics::relative_l2(&reference, &run.output).unwrap();
    assert!(
        err < 0.25,
        "frozen calibrated inference on unseen content: err {err}"
    );
}

#[test]
fn ddim_trajectories_rank_methods() {
    let dit = dit();
    let sampler = DdimSampler::new(5);
    let reference = sampler
        .sample(&dit, &ForwardOptions::reference(), 8)
        .unwrap();
    let paro = sampler
        .sample(&dit, &ForwardOptions::paro(4.8, 4), 8)
        .unwrap();
    let naive = sampler
        .sample(
            &dit,
            &ForwardOptions {
                method: AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
            8,
        )
        .unwrap();
    let d_paro = *paro.divergence_from(&reference).unwrap().last().unwrap();
    let d_naive = *naive.divergence_from(&reference).unwrap().last().unwrap();
    assert!(d_paro < d_naive, "paro {d_paro} vs naive {d_naive}");
    // And the final sample stays usable.
    let cos = metrics::cosine_similarity(reference.final_latent(), paro.final_latent()).unwrap();
    assert!(cos > 0.95, "final-latent cosine {cos}");
}

#[test]
fn forward_stats_expose_per_head_plans() {
    let dit = dit();
    let x = content(dit.config(), 6);
    let opts = ForwardOptions {
        method: AttentionMethod::ParoInt {
            bits: Bitwidth::B4,
            block_edge: 4,
        },
        linear_w8a8: false,
        linear_bits: Bitwidth::B8,
    };
    let (_, stats) = forward(&dit, &x, &opts).unwrap();
    assert_eq!(stats.plans.len(), dit.config().blocks);
    for block_plans in &stats.plans {
        assert_eq!(block_plans.len(), dit.config().heads);
        assert!(block_plans.iter().all(|p| p.is_some()));
    }
    assert_eq!(stats.avg_bits, 4.0);
}
