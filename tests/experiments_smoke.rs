//! Smoke tests: every experiment harness path used by the bench binaries
//! runs end to end at reduced scale and produces the paper-shaped output.

use paro::core::analysis;
use paro::core::pipeline::attention_map;
use paro::core::reorder::{select_plan, ReorderPlan};
use paro::prelude::*;
use paro::sim::OpCategory;
use paro::tensor::render;

#[test]
fn table1_roster_runs_and_ranks() {
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 11);
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();
    let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
    let mut rows = Vec::new();
    for method in AttentionMethod::table1_roster() {
        let run = run_attention(&inputs, &method).unwrap();
        let err = metrics::relative_l2(&reference, &run.output).unwrap();
        rows.push((method.name(), err));
    }
    assert_eq!(rows.len(), 10);
    let err_of = |name: &str| rows.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(err_of("FP16"), 0.0);
    assert!(err_of("PARO INT4") < err_of("Naive INT4"));
    assert!(err_of("PARO MP") < err_of("PARO INT4"));
}

#[test]
fn fig6a_all_machines_report() {
    let p = AttentionProfile::paper_mp();
    let cfg = ModelConfig::cogvideox_2b();
    let machines: Vec<Box<dyn Machine>> = vec![
        Box::new(SangerMachine::default_budget()),
        Box::new(VitcodMachine::default_budget()),
        Box::new(ParoMachine::new(
            HardwareConfig::paro_asic(),
            ParoOptimizations::all(),
        )),
        Box::new(GpuMachine::a100()),
        Box::new(ParoMachine::new(
            HardwareConfig::paro_align_a100(),
            ParoOptimizations::all(),
        )),
    ];
    let seconds: Vec<f64> = machines
        .iter()
        .map(|m| m.run_model(&cfg, &p).seconds)
        .collect();
    assert!(seconds.iter().all(|&s| s > 0.0 && s.is_finite()));
    // Normalized-to-Sanger ordering (Fig. 6(a)): Sanger slowest.
    assert!(seconds[0] > seconds[1]); // ViTCoD beats Sanger
    assert!(seconds[1] > seconds[2]); // PARO beats ViTCoD
}

#[test]
fn fig6b_ladder_runs() {
    let p = AttentionProfile::paper_mp();
    let cfg = ModelConfig::cogvideox_2b();
    let ladder = ParoOptimizations::ablation_ladder();
    assert_eq!(ladder.len(), 4);
    let mut prev = f64::INFINITY;
    for (_, opts) in ladder {
        let s = ParoMachine::new(HardwareConfig::paro_asic(), opts)
            .run_model(&cfg, &p)
            .seconds;
        assert!(s < prev);
        prev = s;
    }
}

#[test]
fn fig8_rendering_works() {
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::SpatialCol);
    let head = synthesize_head(&grid, 32, &spec, 21);
    let map = attention_map(&head.q, &head.k).unwrap();
    let sel = select_plan(&map, &grid, BlockGrid::square(4).unwrap(), Bitwidth::B4).unwrap();
    let plan = ReorderPlan::new(&grid, sel.order);
    let reordered = paro::core::reorder::reorder_map(&map, &plan).unwrap();
    let art = render::ascii_heatmap(&reordered, 32).unwrap();
    assert!(art.lines().count() > 8);
    let pgm = render::pgm_bytes(&reordered, 64).unwrap();
    assert!(pgm.starts_with(b"P5"));
    // The reorder must concentrate mass near the diagonal.
    let before = analysis::diagonal_band_mass(&map, 8).unwrap();
    let after = analysis::diagonal_band_mass(&reordered, 8).unwrap();
    assert!(after > before);
}

#[test]
fn reorder_overhead_experiment() {
    let p = AttentionProfile::paper_mp();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let report = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &p);
        let share = report
            .category_shares()
            .get(&OpCategory::Reorder)
            .copied()
            .unwrap_or(0.0);
        // Paper: 1.26% (2B), 1.07% (5B).
        assert!(
            share > 0.0 && share < 0.05,
            "{}: reorder share {share}",
            cfg.name
        );
    }
}

#[test]
fn analysis_experiment_shape() {
    // The Fig. 1 analysis: patterned rows have outliers; reorder shrinks
    // block ranges.
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 31);
    let map = attention_map(&head.q, &head.k).unwrap();
    let stats = analysis::row_outlier_stats(&map).unwrap();
    assert!(stats.mean_peak_to_mean > 3.0);
    let block = BlockGrid::square(4).unwrap();
    let ident = analysis::compare_groupings(&map, &ReorderPlan::identity(&grid), block).unwrap();
    let good = analysis::compare_groupings(
        &map,
        &ReorderPlan::new(&grid, PatternKind::Temporal.preferred_order()),
        block,
    )
    .unwrap();
    assert!(good.mean_block_range < ident.mean_block_range);
}
