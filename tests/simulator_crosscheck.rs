//! Cross-crate integration: the cycle simulator against analytic bounds,
//! and algorithm-produced allocations driving the performance model.

use paro::model::workload;
use paro::prelude::*;
use paro::sim::cost::CostModel;

#[test]
fn paro_compute_cycles_bounded_by_peak() {
    // End-to-end latency can never beat the compute roofline: nominal MACs
    // at peak INT8 rate with the best possible (4x) mode speedup.
    let cfg = ModelConfig::cogvideox_5b();
    let hw = HardwareConfig::paro_asic();
    let report = ParoMachine::new(hw.clone(), ParoOptimizations::all())
        .run_model(&cfg, &AttentionProfile::paper_mp());
    let min_cycles = workload::model_macs(&cfg) as f64 / (hw.int8_macs_per_cycle as f64 * 4.0);
    assert!(
        report.cycles > min_cycles,
        "simulated cycles {} below the physical floor {}",
        report.cycles,
        min_cycles
    );
}

#[test]
fn latency_scales_with_model_size() {
    // 5B has ~2.1x the block count x MACs of 2B; latency must scale
    // accordingly for every machine.
    let p = AttentionProfile::paper_mp();
    let machines: Vec<Box<dyn Machine>> = vec![
        Box::new(ParoMachine::new(
            HardwareConfig::paro_asic(),
            ParoOptimizations::all(),
        )),
        Box::new(SangerMachine::default_budget()),
        Box::new(VitcodMachine::default_budget()),
        Box::new(GpuMachine::a100()),
    ];
    let macs_ratio = workload::model_macs(&ModelConfig::cogvideox_5b()) as f64
        / workload::model_macs(&ModelConfig::cogvideox_2b()) as f64;
    for m in &machines {
        let s2 = m.run_model(&ModelConfig::cogvideox_2b(), &p).seconds;
        let s5 = m.run_model(&ModelConfig::cogvideox_5b(), &p).seconds;
        let ratio = s5 / s2;
        assert!(
            ratio > 1.0 && ratio < macs_ratio * 1.5,
            "{}: 5B/2B latency ratio {ratio:.2} vs MAC ratio {macs_ratio:.2}",
            m.name()
        );
    }
}

#[test]
fn real_allocation_feeds_the_simulator() {
    // Produce a BitAllocation with the actual PARO algorithm on a synthetic
    // head, convert it to an AttentionProfile, and simulate with it — the
    // full co-design loop.
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 3);
    let inputs = AttentionInputs::new(head.q, head.k, head.v, grid).unwrap();
    let run = run_attention(
        &inputs,
        &AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 4,
            alpha: 0.5,
            output_aware: true,
        },
    )
    .unwrap();
    let alloc = run.allocation.expect("mixed precision allocates");
    let profile = AttentionProfile::from_bits(&alloc.bits).unwrap();
    assert!(profile.avg_bits() <= 4.8 + 1e-3);

    let cfg = ModelConfig::cogvideox_2b();
    let with_real = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&cfg, &profile);
    let with_int8 = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&cfg, &AttentionProfile::uniform(Bitwidth::B8));
    assert!(
        with_real.seconds < with_int8.seconds,
        "a real sub-8-bit allocation must beat uniform INT8: {} vs {}",
        with_real.seconds,
        with_int8.seconds
    );
}

#[test]
fn energy_efficiency_shape() {
    // Paper Sec. V-B: PARO achieves 3.46/3.61 TOPS/W, 4.86/6.43x the A100.
    let p = AttentionProfile::paper_mp();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let paro = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &p);
        let a100 = GpuMachine::a100().run_model(&cfg, &p);
        let ratio = paro.tops_per_watt() / a100.tops_per_watt();
        assert!(
            ratio > 2.0,
            "{}: PARO should be several x more energy-efficient than A100, got {ratio:.2}",
            cfg.name
        );
        assert!(
            (1.0..20.0).contains(&paro.tops_per_watt()),
            "{}: PARO TOPS/W {:.2} out of plausible band",
            cfg.name,
            paro.tops_per_watt()
        );
    }
}

#[test]
fn table2_cost_model_consistency() {
    let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
    // Totals match the published Table II.
    assert!((cm.total_area_mm2() - 8.17).abs() < 0.02);
    assert!((cm.total_power_w() - 11.20).abs() < 0.02);
    // The simulated average power cannot exceed the synthesized total by
    // much (dynamic energy model consistency).
    let report = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&ModelConfig::cogvideox_5b(), &AttentionProfile::paper_mp());
    let avg_power = report.energy_joules / report.seconds;
    assert!(
        avg_power < cm.total_power_w() * 3.0,
        "simulated average power {avg_power:.1} W vs synthesized {:.1} W",
        cm.total_power_w()
    );
}

#[test]
fn dram_traffic_accounted() {
    // Weights alone set a floor on traffic: every machine must report
    // memory cycles consistent with at least one weight pass per block.
    let cfg = ModelConfig::cogvideox_2b();
    let report = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&cfg, &AttentionProfile::paper_mp());
    let weight_bytes_per_block = 12.0 * (cfg.hidden as f64).powi(2);
    let hw = HardwareConfig::paro_asic();
    let min_mem_cycles = weight_bytes_per_block / hw.dram_bytes_per_cycle();
    let block_mem: f64 = report.block_records.iter().map(|r| r.memory_cycles).sum();
    assert!(
        block_mem >= min_mem_cycles,
        "block memory cycles {block_mem} below weight-pass floor {min_mem_cycles}"
    );
}
