use crate::kernel::{self, Kernel};
use crate::{Tensor, TensorError};

impl Tensor {
    /// Dense matrix multiplication of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Dispatches to the widest micro-kernel the CPU supports (see
    /// [`crate::kernel`]); all kernels tile the `k` dimension, stream each
    /// left-operand row segment once, and produce bit-identical results.
    ///
    /// Fully-zero left-operand `k`-segments bypass their `b` panel (the
    /// block-sparse fast path), which would drop `0·NaN` and `0·∞`
    /// contributions; when `other` contains non-finite values the bypass is
    /// disabled so the result matches IEEE dense semantics (`0·NaN = NaN`,
    /// propagated into the accumulator).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// and [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_with(other, kernel::active_kernel())
    }

    /// [`Tensor::matmul`] on an explicit [`Kernel`] instead of the
    /// dispatched one. Outputs are bit-identical across kernels; the
    /// equivalence tests and in-process benchmark comparisons use this to
    /// pin SIMD paths against the scalar reference.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::matmul`].
    pub fn matmul_with(&self, other: &Tensor, kern: Kernel) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        // The zero-segment bypass silently turns 0·NaN and 0·∞ into 0; only
        // take it when the right operand is entirely finite.
        let skip_zeros = b.iter().all(|v| v.is_finite());
        let mut out = vec![0.0f32; m * n];
        kernel::matmul_f32(kern, a, b, &mut out, m, k, n, skip_zeros);
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix multiplication with the second operand transposed:
    /// `[m,k] x [n,k]ᵀ -> [m,n]`.
    ///
    /// This is the natural layout for `Q·Kᵀ` (both `Q` and `K` are stored
    /// `[tokens, dim]`): rows of both operands stream contiguously, no
    /// explicit transpose materialization.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 operands and
    /// [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    pub fn matmul_transposed_b(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.shape().to_vec(),
                right: vec![k2, n],
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_matmul() {
        let n = 7;
        let eye = Tensor::from_fn(&[n, n], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let x = Tensor::from_fn(&[n, n], |i| (i[0] * n + i[1]) as f32);
        assert_eq!(eye.matmul(&x).unwrap(), x);
        assert_eq!(x.matmul(&eye).unwrap(), x);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            a.matmul(&v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn zero_times_nonfinite_propagates() {
        // IEEE semantics: 0·NaN = NaN and 0·∞ = NaN must reach the output
        // even though zero left operands normally skip the inner loop.
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![f32::NAN, f32::INFINITY, 2.0, 3.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.at(&[0, 0]).is_nan(), "0·NaN must propagate");
        assert!(c.at(&[0, 1]).is_nan(), "0·∞ must propagate");
        // A fully-zero row against a non-finite column too.
        let z = Tensor::zeros(&[1, 2]);
        assert!(z.matmul(&b).unwrap().at(&[0, 0]).is_nan());
        // Finite inputs still take the skip path and stay exact.
        let bf = Tensor::from_vec(&[2, 2], vec![4.0, 5.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.matmul(&bf).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_transposed_b_matches_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 7], |i| ((i[0] * 7 + i[1]) as f32 * 0.3).sin());
        let b = Tensor::from_fn(&[6, 7], |i| ((i[0] + i[1] * 2) as f32 * 0.2).cos());
        let fast = a.matmul_transposed_b(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        assert_eq!(fast.shape(), &[5, 6]);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        // Shape errors.
        let bad = Tensor::zeros(&[6, 8]);
        assert!(a.matmul_transposed_b(&bad).is_err());
        assert!(Tensor::zeros(&[3]).matmul_transposed_b(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as f32);
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.shape(), &[5, 3]);
        assert_eq!(tt.at(&[4, 2]), t.at(&[2, 4]));
        assert_eq!(tt.transpose2d().unwrap(), t);
    }

    #[test]
    fn matmul_transpose_identity_property() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_fn(&[3, 4], |i| ((i[0] + 1) * (i[1] + 2)) as f32 * 0.1);
        let b = Tensor::from_fn(&[4, 2], |i| ((i[0] * 2 + i[1]) as f32).sin());
        let lhs = a.matmul(&b).unwrap().transpose2d().unwrap();
        let rhs = b
            .transpose2d()
            .unwrap()
            .matmul(&a.transpose2d().unwrap())
            .unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
