//! Fidelity metrics between a reference tensor and an approximation.
//!
//! The PARO paper evaluates generated-video quality with learned metrics
//! (FVD, CLIPSIM, CLIP-Temp, VQA, flickering). This reproduction cannot run
//! those models, so the experiment harness substitutes output-error proxies
//! computed by this module; see `DESIGN.md` §2 for the substitution argument.

use crate::{Tensor, TensorError};

/// Mean squared error between `reference` and `approx`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
///
/// # Example
///
/// ```
/// use paro_tensor::{metrics, Tensor};
/// # fn main() -> Result<(), paro_tensor::TensorError> {
/// let a = Tensor::full(&[4], 1.0);
/// let b = Tensor::full(&[4], 1.5);
/// assert!((metrics::mse(&a, &b)? - 0.25).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn mse(reference: &Tensor, approx: &Tensor) -> Result<f32, TensorError> {
    check_shapes(reference, approx)?;
    let n = reference.len().max(1) as f32;
    Ok(reference
        .as_slice()
        .iter()
        .zip(approx.as_slice())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        / n)
}

/// Relative L2 error `‖ref − approx‖ / ‖ref‖`.
///
/// Returns 0 when both tensors are zero, and `+∞` when only the reference is
/// zero. This is the "FVD-proxy" used by the Table I reproduction: like FVD
/// it is 0 for identical outputs and grows with output corruption.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn relative_l2(reference: &Tensor, approx: &Tensor) -> Result<f32, TensorError> {
    check_shapes(reference, approx)?;
    let diff = reference.sub(approx)?;
    let ref_norm = reference.norm();
    let diff_norm = diff.norm();
    if ref_norm == 0.0 {
        return Ok(if diff_norm == 0.0 { 0.0 } else { f32::INFINITY });
    }
    Ok(diff_norm / ref_norm)
}

/// Cosine similarity between the two tensors viewed as flat vectors.
///
/// Returns 1 for identical directions, 0 for orthogonal ones. Used as the
/// "CLIPSIM-proxy": CLIP text-video similarity degrades monotonically with
/// output corruption, as does this quantity.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn cosine_similarity(reference: &Tensor, approx: &Tensor) -> Result<f32, TensorError> {
    check_shapes(reference, approx)?;
    let dot: f32 = reference
        .as_slice()
        .iter()
        .zip(approx.as_slice())
        .map(|(&a, &b)| a * b)
        .sum();
    let denom = reference.norm() * approx.norm();
    if denom == 0.0 {
        return Ok(if reference.norm() == approx.norm() {
            1.0
        } else {
            0.0
        });
    }
    Ok(dot / denom)
}

/// Signal-to-noise ratio in decibels: `10·log10(‖ref‖² / ‖ref−approx‖²)`.
///
/// Capped at 100 dB for (near-)exact matches so downstream tables stay
/// finite. Used as the "VQA-proxy" after affine mapping in the harness.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn snr_db(reference: &Tensor, approx: &Tensor) -> Result<f32, TensorError> {
    check_shapes(reference, approx)?;
    let signal = reference.norm().powi(2);
    let noise = reference.sub(approx)?.norm().powi(2);
    if noise <= signal * 1e-10 {
        return Ok(100.0);
    }
    if signal == 0.0 {
        return Ok(0.0);
    }
    Ok((10.0 * (signal / noise).log10()).min(100.0))
}

/// Per-frame temporal consistency proxy ("CLIP-Temp-proxy").
///
/// Interprets a `[frames, features]` tensor as per-frame feature vectors and
/// returns the mean cosine similarity between consecutive frames of
/// `approx`, normalized by the same statistic of `reference`, clamped to
/// `[0, 1]`. A quantization scheme that injects frame-varying noise lowers
/// this value, mirroring the CLIP-Temp metric.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ or
/// [`TensorError::RankMismatch`] if the tensors are not rank 2.
pub fn temporal_consistency(reference: &Tensor, approx: &Tensor) -> Result<f32, TensorError> {
    check_shapes(reference, approx)?;
    if reference.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: reference.rank(),
        });
    }
    let ref_c = mean_adjacent_cosine(reference)?;
    let app_c = mean_adjacent_cosine(approx)?;
    if ref_c <= 0.0 {
        return Ok(1.0);
    }
    Ok((app_c / ref_c).clamp(0.0, 1.0))
}

fn mean_adjacent_cosine(t: &Tensor) -> Result<f32, TensorError> {
    let frames = t.shape()[0];
    if frames < 2 {
        return Ok(1.0);
    }
    let mut acc = 0.0f32;
    for f in 0..frames - 1 {
        let a = t.block(f, 0, 1, t.shape()[1])?;
        let b = t.block(f + 1, 0, 1, t.shape()[1])?;
        acc += cosine_similarity(&a, &b)?;
    }
    Ok(acc / (frames - 1) as f32)
}

fn check_shapes(a: &Tensor, b: &Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(dims: &[usize]) -> Tensor {
        Tensor::from_fn(dims, |i| {
            (i.iter().sum::<usize>() as f32 * 0.37).sin() + 1.2
        })
    }

    #[test]
    fn identical_tensors_are_perfect() {
        let t = lin(&[8, 8]);
        assert_eq!(relative_l2(&t, &t).unwrap(), 0.0);
        assert!((cosine_similarity(&t, &t).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(snr_db(&t, &t).unwrap(), 100.0);
        assert_eq!(mse(&t, &t).unwrap(), 0.0);
        assert!((temporal_consistency(&t, &t).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn corruption_monotonicity() {
        // All metrics must rank light corruption better than heavy corruption
        // — that ordering is what makes them valid proxies for Table I.
        let t = lin(&[16, 16]);
        let light = t.map(|x| x + 0.01);
        let heavy = t.map(|x| x + 0.5);
        assert!(relative_l2(&t, &light).unwrap() < relative_l2(&t, &heavy).unwrap());
        assert!(cosine_similarity(&t, &light).unwrap() > cosine_similarity(&t, &heavy).unwrap());
        assert!(snr_db(&t, &light).unwrap() > snr_db(&t, &heavy).unwrap());
        assert!(mse(&t, &light).unwrap() < mse(&t, &heavy).unwrap());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(mse(&a, &b).is_err());
        assert!(relative_l2(&a, &b).is_err());
        assert!(cosine_similarity(&a, &b).is_err());
        assert!(snr_db(&a, &b).is_err());
    }

    #[test]
    fn zero_reference_edge_cases() {
        let z = Tensor::zeros(&[4]);
        let nz = Tensor::full(&[4], 1.0);
        assert_eq!(relative_l2(&z, &z).unwrap(), 0.0);
        assert_eq!(relative_l2(&z, &nz).unwrap(), f32::INFINITY);
        assert_eq!(cosine_similarity(&z, &z).unwrap(), 1.0);
        assert_eq!(cosine_similarity(&z, &nz).unwrap(), 0.0);
    }

    #[test]
    fn orthogonal_vectors_cosine_zero() {
        let a = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        assert!(cosine_similarity(&a, &b).unwrap().abs() < 1e-6);
    }

    #[test]
    fn temporal_consistency_penalizes_frame_noise() {
        let t = Tensor::from_fn(&[6, 16], |i| (i[1] as f32 * 0.2).cos() + 2.0);
        // Alternate-frame sign flips break adjacent-frame similarity.
        let corrupted = Tensor::from_fn(&[6, 16], |i| {
            let v = (i[1] as f32 * 0.2).cos() + 2.0;
            if i[0] % 2 == 0 {
                v
            } else {
                -v
            }
        });
        let good = temporal_consistency(&t, &t).unwrap();
        let bad = temporal_consistency(&t, &corrupted).unwrap();
        assert!(bad < good);
    }

    #[test]
    fn single_frame_consistency_is_one() {
        let t = lin(&[1, 8]);
        assert_eq!(temporal_consistency(&t, &t).unwrap(), 1.0);
    }
}
