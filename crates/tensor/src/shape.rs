use crate::TensorError;
use serde::{Deserialize, Serialize};

/// A tensor shape: the extent of each axis, in row-major order.
///
/// `Shape` owns its dimension list and precomputes nothing; strides are
/// derived on demand because the tensors in this crate are always contiguous
/// and row-major.
///
/// # Example
///
/// ```
/// use paro_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dims; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, one per axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index has the wrong rank or any coordinate is
    /// out of range.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            flat += i * s;
        }
        Some(flat)
    }

    /// Converts a flat row-major offset into a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn multi_index(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.len() {
            return None;
        }
        let strides = self.strides();
        let mut idx = vec![0usize; self.dims.len()];
        for (slot, &s) in idx.iter_mut().zip(&strides) {
            *slot = flat / s;
            flat %= s;
        }
        Some(idx)
    }

    /// Validates that `perm` is a bijection over `0..rank` and returns the
    /// permuted shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a
    /// permutation of `0..rank`.
    pub fn permuted(&self, perm: &[usize]) -> Result<Shape, TensorError> {
        if perm.len() != self.dims.len() {
            return Err(TensorError::InvalidPermutation {
                perm: perm.to_vec(),
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(TensorError::InvalidPermutation {
                    perm: perm.to_vec(),
                });
            }
            seen[p] = true;
        }
        Ok(Shape::new(perm.iter().map(|&p| self.dims[p]).collect()))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert!(Shape::new(vec![]).strides().is_empty());
    }

    #[test]
    fn flat_and_multi_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }

    #[test]
    fn flat_index_rejects_bad_input() {
        let s = Shape::new(vec![2, 2]);
        assert_eq!(s.flat_index(&[0]), None);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.multi_index(4), None);
    }

    #[test]
    fn permuted_shape() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.permuted(&[2, 0, 1]).unwrap().dims(), &[4, 2, 3]);
        assert!(s.permuted(&[0, 0, 1]).is_err());
        assert!(s.permuted(&[0, 1]).is_err());
        assert!(s.permuted(&[0, 1, 3]).is_err());
    }

    #[test]
    fn rank_zero_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.flat_index(&[]), Some(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }
}
