//! Minimal dense tensor substrate for the PARO reproduction.
//!
//! The PARO paper evaluates attention quantization on CogVideoX, a video
//! diffusion transformer. This crate provides the numerical substrate that
//! the rest of the reproduction builds on: a dense row-major [`Tensor`] of
//! `f32` values with the handful of operations 3D-full-attention needs
//! (matrix multiplication, softmax, axis permutation, row gather), plus
//! fidelity metrics and heatmap rendering used by the experiment harness.
//!
//! The crate is deliberately small and dependency-free (only `rand` for
//! initialization): the reproduction must be auditable bottom-up, and the
//! workloads are simulated at reduced scale, so a hand-rolled dense kernel
//! set is both sufficient and transparent.
//!
//! # Example
//!
//! ```
//! use paro_tensor::Tensor;
//!
//! # fn main() -> Result<(), paro_tensor::TensorError> {
//! let q = Tensor::from_fn(&[4, 8], |idx| (idx[0] * 8 + idx[1]) as f32 * 0.01);
//! let k = Tensor::from_fn(&[4, 8], |idx| (idx[0] + idx[1]) as f32 * 0.02);
//! let scores = q.matmul(&k.transpose2d()?)?;
//! let attn = scores.softmax_rows()?;
//! assert_eq!(attn.shape(), &[4, 4]);
//! // Each softmax row sums to 1.
//! for row in 0..4 {
//!     let s: f32 = (0..4).map(|c| attn.at(&[row, c])).sum();
//!     assert!((s - 1.0).abs() < 1e-5);
//! }
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the SIMD micro-kernels in `kernel` opt
// back in with a module-level `allow` — every other module stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod kernel;
mod matmul;
pub mod metrics;
mod ops;
pub mod render;
pub mod rng;
mod shape;
mod tensor;

pub use error::TensorError;
pub use kernel::Kernel;
pub use ops::inverse_permutation;
pub use shape::Shape;
pub use tensor::Tensor;
