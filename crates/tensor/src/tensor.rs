use crate::{Shape, TensorError};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the PARO
/// reproduction. It intentionally supports only what the workloads need:
/// construction, element access, element-wise maps/zips, and the linear
/// algebra in the sibling modules.
///
/// # Example
///
/// ```
/// use paro_tensor::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] + idx[1]) as f32);
/// assert_eq!(t.at(&[1, 2]), 3.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::from(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from existing row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = Shape::from(dims);
        if shape.len() != data.len() {
            return Err(TensorError::ElementCountMismatch {
                requested: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-dimensional index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::from(dims);
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        for flat in 0..len {
            let idx = shape
                .multi_index(flat)
                .expect("flat index in range by construction");
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Creates a tensor with values drawn from `dist` using `rng`.
    pub fn random<D, R>(dims: &[usize], dist: &D, rng: &mut R) -> Self
    where
        D: Distribution<f32>,
        R: Rng + ?Sized,
    {
        let shape = Shape::from(dims);
        let len = shape.len();
        let data = (0..len).map(|_| dist.sample(rng)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape as a dimension slice.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of range. Use
    /// [`Tensor::get`] for a checked variant.
    pub fn at(&self, index: &[usize]) -> f32 {
        let flat = self
            .shape
            .flat_index(index)
            .unwrap_or_else(|| panic!("index {index:?} out of range for shape {}", self.shape));
        self.data[flat]
    }

    /// Checked element access by multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.flat_index(index).map(|flat| self.data[flat])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self
            .shape
            .flat_index(index)
            .unwrap_or_else(|| panic!("index {index:?} out of range for shape {}", self.shape));
        self.data[flat] = value;
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum. See [`Tensor::zip_with`] for error conditions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference. See [`Tensor::zip_with`] for error conditions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Reinterprets the tensor with a new shape holding the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the new shape implies
    /// a different element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::from(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                requested: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Mean of absolute values (0 for an empty tensor).
    pub fn abs_mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|x| x.abs()).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Population variance of all elements (0 for an empty tensor).
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_fn(&[2, 3], |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 12.0);
        assert_eq!(t.get(&[2, 0]), None);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(&[2, 2], vec![1.0; 3]),
            Err(TensorError::ElementCountMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::full(&[2, 2], 3.0);
        let b = Tensor::full(&[2, 2], 1.5);
        assert_eq!(a.add(&b).unwrap().at(&[0, 0]), 4.5);
        assert_eq!(a.sub(&b).unwrap().at(&[1, 1]), 1.5);
        assert_eq!(a.scale(2.0).at(&[0, 1]), 6.0);
        let c = Tensor::full(&[3], 1.0);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        assert_eq!(t.min(), Some(-3.0));
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.abs_mean(), 2.5);
        assert!((t.norm() - (1.0f32 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let t = Tensor::full(&[10], 7.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| (i[0] * 6 + i[1]) as f32);
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.at(&[2, 3]), 11.0);
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn set_and_mut_slice() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 5.0);
        assert_eq!(t.at(&[1, 0]), 5.0);
        t.as_mut_slice()[3] = 9.0;
        assert_eq!(t.at(&[1, 1]), 9.0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dist = rand::distributions::Uniform::new(0.0f32, 1.0);
        let a = Tensor::random(&[8], &dist, &mut StdRng::seed_from_u64(42));
        let b = Tensor::random(&[8], &dist, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
