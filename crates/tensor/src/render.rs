//! Heatmap rendering for attention maps.
//!
//! The paper's Fig. 1 and Fig. 8 visualize attention maps before and after
//! reorder. This module renders a rank-2 tensor as an ASCII heatmap (for
//! terminal output from the experiment binaries) or as a binary PGM image
//! (for inspection with any image viewer).

use crate::{Tensor, TensorError};

/// Characters from faint to intense used by [`ascii_heatmap`].
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a rank-2 tensor as an ASCII heatmap.
///
/// Values are min-max normalized over the whole tensor; each cell becomes
/// one character from a 10-step intensity ramp. `max_edge` bounds the output
/// size: larger tensors are downsampled by max-pooling so dominant structure
/// (e.g. a block-diagonal) stays visible.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2 and
/// [`TensorError::EmptyDimension`] if `max_edge` is zero or the tensor is
/// empty.
///
/// # Example
///
/// ```
/// use paro_tensor::{render, Tensor};
/// # fn main() -> Result<(), paro_tensor::TensorError> {
/// let eye = Tensor::from_fn(&[4, 4], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
/// let art = render::ascii_heatmap(&eye, 4)?;
/// assert_eq!(art.lines().count(), 4);
/// # Ok(())
/// # }
/// ```
pub fn ascii_heatmap(map: &Tensor, max_edge: usize) -> Result<String, TensorError> {
    let pooled = downsample_max(map, max_edge)?;
    let (rows, cols) = (pooled.shape()[0], pooled.shape()[1]);
    let lo = pooled.min().unwrap_or(0.0);
    let hi = pooled.max().unwrap_or(0.0);
    let span = (hi - lo).max(f32::EPSILON);
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let t = (pooled.at(&[r, c]) - lo) / span;
            let idx = ((t * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Renders a rank-2 tensor as a binary PGM (P5) image, min-max normalized to
/// 8-bit grayscale, downsampled to at most `max_edge` per side.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2 and
/// [`TensorError::EmptyDimension`] if `max_edge` is zero or the tensor is
/// empty.
pub fn pgm_bytes(map: &Tensor, max_edge: usize) -> Result<Vec<u8>, TensorError> {
    let pooled = downsample_max(map, max_edge)?;
    let (rows, cols) = (pooled.shape()[0], pooled.shape()[1]);
    let lo = pooled.min().unwrap_or(0.0);
    let hi = pooled.max().unwrap_or(0.0);
    let span = (hi - lo).max(f32::EPSILON);
    let mut out = format!("P5\n{cols} {rows}\n255\n").into_bytes();
    for r in 0..rows {
        for c in 0..cols {
            let t = (pooled.at(&[r, c]) - lo) / span;
            out.push((t * 255.0).round().clamp(0.0, 255.0) as u8);
        }
    }
    Ok(out)
}

/// Max-pools a rank-2 tensor so neither side exceeds `max_edge`.
///
/// Max (not mean) pooling preserves sparse diagonal structure, which is the
/// whole point of rendering attention maps.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2 and
/// [`TensorError::EmptyDimension`] if `max_edge` is zero or the tensor is
/// empty.
pub fn downsample_max(map: &Tensor, max_edge: usize) -> Result<Tensor, TensorError> {
    if map.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: map.rank(),
        });
    }
    if max_edge == 0 || map.is_empty() {
        return Err(TensorError::EmptyDimension);
    }
    let (m, n) = (map.shape()[0], map.shape()[1]);
    if m <= max_edge && n <= max_edge {
        return Ok(map.clone());
    }
    let pr = m.div_ceil(max_edge);
    let pc = n.div_ceil(max_edge);
    let out_r = m.div_ceil(pr);
    let out_c = n.div_ceil(pc);
    let mut out = Tensor::full(&[out_r, out_c], f32::NEG_INFINITY);
    for r in 0..m {
        for c in 0..n {
            let (orr, occ) = (r / pr, c / pc);
            let cur = out.at(&[orr, occ]);
            let v = map.at(&[r, c]);
            if v > cur {
                out.set(&[orr, occ], v);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_shows_in_ascii() {
        let eye = Tensor::from_fn(&[8, 8], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let art = ascii_heatmap(&eye, 8).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        for (r, line) in lines.iter().enumerate() {
            assert_eq!(line.as_bytes()[r], b'@');
        }
    }

    #[test]
    fn downsample_preserves_diagonal_peak() {
        let eye = Tensor::from_fn(&[32, 32], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let pooled = downsample_max(&eye, 8).unwrap();
        assert_eq!(pooled.shape(), &[8, 8]);
        for r in 0..8 {
            assert_eq!(pooled.at(&[r, r]), 1.0);
        }
    }

    #[test]
    fn downsample_non_divisible_sizes() {
        let t = Tensor::from_fn(&[10, 7], |i| (i[0] * 7 + i[1]) as f32);
        let pooled = downsample_max(&t, 4).unwrap();
        assert!(pooled.shape()[0] <= 4 && pooled.shape()[1] <= 4);
        assert_eq!(pooled.max(), t.max());
    }

    #[test]
    fn small_tensor_not_downsampled() {
        let t = Tensor::from_fn(&[3, 3], |i| i[0] as f32);
        assert_eq!(downsample_max(&t, 8).unwrap(), t);
    }

    #[test]
    fn pgm_header_and_size() {
        let t = Tensor::from_fn(&[4, 6], |i| (i[0] + i[1]) as f32);
        let pgm = pgm_bytes(&t, 16).unwrap();
        assert!(pgm.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(pgm.len(), b"P5\n6 4\n255\n".len() + 24);
    }

    #[test]
    fn errors_on_bad_input() {
        let v = Tensor::zeros(&[4]);
        assert!(ascii_heatmap(&v, 4).is_err());
        let t = Tensor::zeros(&[2, 2]);
        assert!(ascii_heatmap(&t, 0).is_err());
    }

    #[test]
    fn constant_map_renders_uniformly() {
        let t = Tensor::full(&[4, 4], 3.0);
        let art = ascii_heatmap(&t, 4).unwrap();
        let ch = art.chars().next().unwrap();
        assert!(art.chars().filter(|c| *c != '\n').all(|c| c == ch));
    }
}
