//! Runtime-dispatched CPU micro-kernels for the f32 hot loops.
//!
//! The PARO accelerator maps mixed-bitwidth blocks onto reconfigurable
//! multipliers; the software analogue on a CPU is per-ISA micro-kernels
//! picked once at startup. This module is the dispatch substrate shared
//! by every hot loop in the workspace: it detects the widest available
//! x86 vector extension (AVX2 > SSE4.1 > scalar), honors the
//! `PARO_KERNEL` environment variable as a downgrade override, and hosts
//! the f32 matmul drivers. The integer kernels in `paro-quant` dispatch
//! on the same [`Kernel`] value so one process always runs one
//! consistent kernel set.
//!
//! # Bit-identity contract
//!
//! Every SIMD driver produces **bit-identical** results to the scalar
//! reference:
//!
//! - integer kernels are exact by construction (i32 adds commute);
//! - the f32 matmul vectorizes the *output-column* axis only, so each
//!   output element accumulates its `k` products in exactly the scalar
//!   order, and the drivers use separate multiply and add intrinsics
//!   (never FMA, which rounds once instead of twice).
//!
//! The equivalence suites (`tensor/tests/matmul_kernels.rs`,
//! `quant/tests/kernel_equivalence.rs`) pin this contract on every
//! kernel the host can run.

// SIMD intrinsics are the one place the workspace needs `unsafe`; every
// block is bounded by explicit slice lengths checked in the safe callers.
#![allow(unsafe_code)]

use std::str::FromStr;
use std::sync::OnceLock;

/// A dispatchable micro-kernel implementation, ordered by preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kernel {
    /// Portable scalar reference — always available, the semantic ground
    /// truth every SIMD path must match bit for bit.
    Scalar,
    /// x86-64 SSE4.1: 4×f32 / 4×i32 lanes (`_mm_mullo_epi32` needs 4.1).
    Sse41,
    /// x86-64 AVX2: 8×f32 / 8×i32 lanes plus variable shifts for the
    /// packed-code unpack.
    Avx2,
}

impl Kernel {
    /// Every kernel this build knows about, in preference order
    /// (scalar first).
    pub const ALL: &'static [Kernel] = &[Kernel::Scalar, Kernel::Sse41, Kernel::Avx2];

    /// Stable lowercase name, as printed in reports and accepted by
    /// `PARO_KERNEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse41 => "sse4.1",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Whether the running CPU can execute this kernel.
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            Kernel::Sse41 => is_x86_feature_detected!("sse4.1"),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            Kernel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => false,
        }
    }

    /// The kernels the running CPU supports, in preference order.
    pub fn supported() -> Vec<Kernel> {
        Kernel::ALL
            .iter()
            .copied()
            .filter(|k| k.is_supported())
            .collect()
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown kernel name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError(pub String);

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel '{}' (use scalar, sse4.1 or avx2)",
            self.0
        )
    }
}

impl std::error::Error for ParseKernelError {}

impl FromStr for Kernel {
    type Err = ParseKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(Kernel::Scalar),
            "sse4.1" | "sse41" | "sse" => Ok(Kernel::Sse41),
            "avx2" => Ok(Kernel::Avx2),
            other => Err(ParseKernelError(other.to_string())),
        }
    }
}

/// The widest kernel the running CPU supports, ignoring any override.
pub fn detected() -> Kernel {
    *Kernel::ALL
        .iter()
        .rev()
        .find(|k| k.is_supported())
        .expect("scalar is always supported")
}

/// What [`active`] resolved and why — for reports that must show whether
/// the run was forced off the detected path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// The kernel every dispatched hot loop runs.
    pub kernel: Kernel,
    /// `true` when `PARO_KERNEL` (or [`force`]) overrode detection.
    pub forced: bool,
}

fn env_dispatch() -> Dispatch {
    let best = detected();
    match std::env::var("PARO_KERNEL") {
        // The override can only *downgrade*: forcing a kernel the CPU
        // lacks would fault on the first intrinsic, so unknown names and
        // unsupported kernels clamp to the detected best.
        Ok(name) => match name.parse::<Kernel>() {
            Ok(k) if k.is_supported() => Dispatch {
                kernel: k.min(best),
                forced: k.min(best) != best,
            },
            Ok(_) | Err(_) => Dispatch {
                kernel: best,
                forced: false,
            },
        },
        Err(_) => Dispatch {
            kernel: best,
            forced: false,
        },
    }
}

/// Process-wide dispatch override installed by [`force`]; 0 = none,
/// otherwise `1 + kernel index`.
static FORCED: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Forces every subsequent [`active`] resolution to `kernel` (pass
/// `None` to restore `PARO_KERNEL`/detection). Benchmarks use this to
/// measure the scalar reference in the same process as the dispatched
/// path; the override is ignored if the CPU cannot run `kernel`.
pub fn force(kernel: Option<Kernel>) {
    let v = match kernel {
        Some(k) if k.is_supported() => 1 + k as u8,
        _ => 0,
    };
    FORCED.store(v, std::sync::atomic::Ordering::SeqCst);
}

/// The dispatch decision for this process: the forced kernel if [`force`]
/// is in effect, else the `PARO_KERNEL`-aware detection result (computed
/// once and cached).
pub fn active() -> Dispatch {
    match FORCED.load(std::sync::atomic::Ordering::SeqCst) {
        0 => {
            static ENV: OnceLock<Dispatch> = OnceLock::new();
            *ENV.get_or_init(env_dispatch)
        }
        v => Dispatch {
            kernel: match v - 1 {
                0 => Kernel::Scalar,
                1 => Kernel::Sse41,
                _ => Kernel::Avx2,
            },
            forced: true,
        },
    }
}

/// The kernel every dispatched hot loop currently runs.
pub fn active_kernel() -> Kernel {
    active().kernel
}

/// k-dimension tile edge of the f32/i32 GEMM drivers. 256 f32 values =
/// 1 KiB per operand row segment: one `A`-row segment plus the streamed
/// `B` panel rows stay L1-resident, and a packed/sparse operand is
/// swept exactly once per tile.
pub const TILE_K: usize = 256;

/// Shared tiled-matmul body: rows of `a` are walked in `TILE_K`
/// segments, a segment that is entirely zero is bypassed (the
/// block-sparse fast path — B0 blocks of a quantized map are stored as
/// zeros), and each surviving `a` element streams one row of `b`
/// through the kernel's axpy. One body, three instantiations — so the
/// scalar reference and the SIMD drivers cannot drift structurally.
macro_rules! matmul_body {
    ($axpy:ident, $a:ident, $b:ident, $out:ident, $m:ident, $k:ident, $n:ident, $skip:ident) => {{
        for i in 0..$m {
            let arow = &$a[i * $k..(i + 1) * $k];
            let orow = &mut $out[i * $n..(i + 1) * $n];
            let mut k0 = 0usize;
            while k0 < $k {
                let kt = TILE_K.min($k - k0);
                let aseg = &arow[k0..k0 + kt];
                // Zero-block bypass: a fully-zero segment contributes
                // exactly zero (b is finite when skip_zeros holds), so
                // its b panel is never touched.
                if $skip && aseg.iter().all(|&v| v == 0.0) {
                    k0 += kt;
                    continue;
                }
                for (p, &av) in aseg.iter().enumerate() {
                    let brow = &$b[(k0 + p) * $n..(k0 + p + 1) * $n];
                    $axpy(orow, brow, av);
                }
                k0 += kt;
            }
        }
    }};
}

#[inline(always)]
fn axpy_scalar(orow: &mut [f32], brow: &[f32], av: f32) {
    for (o, &bv) in orow.iter_mut().zip(brow) {
        *o += av * bv;
    }
}

fn matmul_driver_scalar(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    skip_zeros: bool,
) {
    matmul_body!(axpy_scalar, a, b, out, m, k, n, skip_zeros)
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    use super::{axpy_scalar, TILE_K};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `orow[j] += av · brow[j]`, 4 f32 lanes; separate mul/add so the
    /// rounding matches scalar exactly.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn axpy_sse41(orow: &mut [f32], brow: &[f32], av: f32) {
        let n = orow.len().min(brow.len());
        let va = _mm_set1_ps(av);
        let mut j = 0usize;
        while j + 4 <= n {
            let o = _mm_loadu_ps(orow.as_ptr().add(j));
            let b = _mm_loadu_ps(brow.as_ptr().add(j));
            _mm_storeu_ps(orow.as_mut_ptr().add(j), _mm_add_ps(o, _mm_mul_ps(va, b)));
            j += 4;
        }
        axpy_scalar(&mut orow[j..n], &brow[j..n], av);
    }

    /// `orow[j] += av · brow[j]`, 8 f32 lanes; separate mul/add, no FMA.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_avx2(orow: &mut [f32], brow: &[f32], av: f32) {
        let n = orow.len().min(brow.len());
        let va = _mm256_set1_ps(av);
        let mut j = 0usize;
        while j + 8 <= n {
            let o = _mm256_loadu_ps(orow.as_ptr().add(j));
            let b = _mm256_loadu_ps(brow.as_ptr().add(j));
            _mm256_storeu_ps(
                orow.as_mut_ptr().add(j),
                _mm256_add_ps(o, _mm256_mul_ps(va, b)),
            );
            j += 8;
        }
        axpy_scalar(&mut orow[j..n], &brow[j..n], av);
    }

    /// # Safety
    /// Caller must ensure the CPU supports SSE4.1.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn matmul_driver_sse41(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        skip_zeros: bool,
    ) {
        matmul_body!(axpy_sse41, a, b, out, m, k, n, skip_zeros)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_driver_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        skip_zeros: bool,
    ) {
        matmul_body!(axpy_avx2, a, b, out, m, k, n, skip_zeros)
    }
}

/// Tiled `out[m,n] += a[m,k] · b[k,n]` dispatched to `kernel`.
///
/// `skip_zeros` must be `false` when `b` contains non-finite values so
/// IEEE `0·NaN = NaN` propagation survives; the caller checks this once.
///
/// Accumulation order per output element is identical for every kernel
/// (the SIMD paths vectorize only the `n` axis, multiply and add
/// separately), so outputs are bit-identical across kernels.
#[allow(clippy::too_many_arguments)]
pub fn matmul_f32(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    skip_zeros: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match kernel {
        Kernel::Scalar => matmul_driver_scalar(a, b, out, m, k, n, skip_zeros),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Sse41 => {
            debug_assert!(Kernel::Sse41.is_supported());
            // SAFETY: callers only pass kernels `is_supported` admits.
            unsafe { x86::matmul_driver_sse41(a, b, out, m, k, n, skip_zeros) }
        }
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => {
            debug_assert!(Kernel::Avx2.is_supported());
            // SAFETY: callers only pass kernels `is_supported` admits.
            unsafe { x86::matmul_driver_avx2(a, b, out, m, k, n, skip_zeros) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => matmul_driver_scalar(a, b, out, m, k, n, skip_zeros),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_roundtrip() {
        for &k in Kernel::ALL {
            assert_eq!(k.as_str().parse::<Kernel>().unwrap(), k);
        }
        assert_eq!("SSE41".parse::<Kernel>().unwrap(), Kernel::Sse41);
        assert!("neon".parse::<Kernel>().is_err());
        let err = "neon".parse::<Kernel>().unwrap_err();
        assert!(err.to_string().contains("neon"));
    }

    #[test]
    fn scalar_is_always_supported_and_detected_is_best() {
        assert!(Kernel::Scalar.is_supported());
        let best = detected();
        assert!(best.is_supported());
        for &k in Kernel::ALL {
            if k > best {
                assert!(!k.is_supported(), "{k} wider than detected best {best}");
            }
        }
        assert_eq!(Kernel::supported()[0], Kernel::Scalar);
    }

    #[test]
    fn force_overrides_and_restores() {
        force(Some(Kernel::Scalar));
        assert_eq!(active().kernel, Kernel::Scalar);
        assert!(active().forced);
        force(None);
        let d = active();
        assert!(d.kernel.is_supported());
        // Without PARO_KERNEL set, the cached resolution is the detected
        // best (the test environment does not set the variable).
        if std::env::var("PARO_KERNEL").is_err() {
            assert_eq!(d.kernel, detected());
            assert!(!d.forced);
        }
    }

    #[test]
    fn drivers_match_scalar_bit_for_bit() {
        let (m, k, n) = (5, TILE_K + 13, 11);
        let a: Vec<f32> = (0..m * k)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    (i as f32 * 0.37).sin()
                }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut want = vec![0.0f32; m * n];
        matmul_f32(Kernel::Scalar, &a, &b, &mut want, m, k, n, true);
        for kernel in Kernel::supported() {
            let mut got = vec![0.0f32; m * n];
            matmul_f32(kernel, &a, &b, &mut got, m, k, n, true);
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.to_bits(), y.to_bits(), "{kernel}");
            }
        }
    }
}
