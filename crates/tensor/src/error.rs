use std::error::Error;
use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate returns `Result<_, TensorError>`;
/// the variants carry enough shape information to diagnose a failure without
/// re-running the computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must match (element-wise op, metric) do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix multiplication disagree.
    MatmulDimMismatch {
        /// `[m, k]` of the left operand.
        left: Vec<usize>,
        /// `[k', n]` of the right operand with `k' != k`.
        right: Vec<usize>,
    },
    /// An operation required a specific rank (e.g. 2-D for `transpose2d`).
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// A reshape asked for a different total element count.
    ElementCountMismatch {
        /// Element count implied by the requested shape.
        requested: usize,
        /// Element count actually held by the tensor.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A permutation was not a bijection over `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
    },
    /// A gather/index list referenced a row outside the tensor.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of valid rows along the gathered axis.
        len: usize,
    },
    /// A dimension of zero was supplied where a positive size is required.
    EmptyDimension,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch { left, right } => {
                write!(f, "matmul inner-dimension mismatch: {left:?} x {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::ElementCountMismatch { requested, actual } => write!(
                f,
                "element count mismatch: requested {requested}, tensor holds {actual}"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidPermutation { perm } => {
                write!(f, "invalid axis permutation {perm:?}")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            TensorError::EmptyDimension => write!(f, "dimension of size zero is not allowed"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeMismatch {
                left: vec![2],
                right: vec![3],
            },
            TensorError::MatmulDimMismatch {
                left: vec![2, 3],
                right: vec![4, 5],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 3,
            },
            TensorError::ElementCountMismatch {
                requested: 6,
                actual: 4,
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::InvalidPermutation { perm: vec![0, 0] },
            TensorError::IndexOutOfRange { index: 9, len: 3 },
            TensorError::EmptyDimension,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
