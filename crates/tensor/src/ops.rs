use crate::{Shape, Tensor, TensorError};

impl Tensor {
    /// Row-wise numerically-stable softmax of a rank-2 tensor.
    ///
    /// Each row is shifted by its maximum before exponentiation, so the
    /// result is finite for any finite input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let orow = &mut out[i * n..(i + 1) * n];
            let mut sum = 0.0f32;
            for (o, &x) in orow.iter_mut().zip(row) {
                let e = (x - max).exp();
                *o = e;
                sum += e;
            }
            if sum > 0.0 {
                for o in orow.iter_mut() {
                    *o /= sum;
                }
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Permutes the tensor's axes: `out[i_perm[0], ...] = self[i_0, ...]`.
    ///
    /// `perm[k]` names the source axis that becomes output axis `k`, matching
    /// the convention of `numpy.transpose`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a
    /// permutation of `0..rank`.
    pub fn permute_axes(&self, perm: &[usize]) -> Result<Tensor, TensorError> {
        let out_shape = self.shape_obj().permuted(perm)?;
        let in_strides = self.shape_obj().strides();
        let mut out = vec![0.0f32; self.len()];
        let out_shape_obj = Shape::new(out_shape.dims().to_vec());
        let a = self.as_slice();
        for (flat_out, slot) in out.iter_mut().enumerate() {
            let out_idx = out_shape_obj
                .multi_index(flat_out)
                .expect("in range by construction");
            // output axis k holds source axis perm[k]
            let mut flat_in = 0usize;
            for (k, &p) in perm.iter().enumerate() {
                flat_in += out_idx[k] * in_strides[p];
            }
            *slot = a[flat_in];
        }
        Tensor::from_vec(out_shape.dims(), out)
    }

    /// Gathers rows of a rank-2 tensor: `out[i, :] = self[indices[i], :]`.
    ///
    /// This is the token-reorder primitive: applying a permutation of token
    /// indices to a `[tokens, dim]` embedding matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2, or
    /// [`TensorError::IndexOutOfRange`] if any index exceeds the row count.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let a = self.as_slice();
        let mut out = Vec::with_capacity(indices.len() * n);
        for &src in indices {
            if src >= m {
                return Err(TensorError::IndexOutOfRange { index: src, len: m });
            }
            out.extend_from_slice(&a[src * n..(src + 1) * n]);
        }
        Tensor::from_vec(&[indices.len(), n], out)
    }

    /// Scatters rows of a rank-2 tensor: `out[indices[i], :] = self[i, :]`.
    ///
    /// The inverse of [`Tensor::gather_rows`] when `indices` is a permutation
    /// of `0..rows`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2,
    /// [`TensorError::ElementCountMismatch`] if `indices.len()` differs from
    /// the row count, or [`TensorError::IndexOutOfRange`] for a bad index.
    pub fn scatter_rows(&self, indices: &[usize]) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        if indices.len() != m {
            return Err(TensorError::ElementCountMismatch {
                requested: indices.len(),
                actual: m,
            });
        }
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for (i, &dst) in indices.iter().enumerate() {
            if dst >= m {
                return Err(TensorError::IndexOutOfRange { index: dst, len: m });
            }
            out[dst * n..(dst + 1) * n].copy_from_slice(&a[i * n..(i + 1) * n]);
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Extracts a rectangular block of a rank-2 tensor.
    ///
    /// The block covers rows `row0..row0+rows` and columns `col0..col0+cols`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2 or
    /// [`TensorError::IndexOutOfRange`] if the block exceeds the bounds.
    pub fn block(
        &self,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        if row0 + rows > m {
            return Err(TensorError::IndexOutOfRange {
                index: row0 + rows,
                len: m,
            });
        }
        if col0 + cols > n {
            return Err(TensorError::IndexOutOfRange {
                index: col0 + cols,
                len: n,
            });
        }
        let a = self.as_slice();
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let base = (row0 + r) * n + col0;
            out.extend_from_slice(&a[base..base + cols]);
        }
        Tensor::from_vec(&[rows, cols], out)
    }

    /// Writes a rectangular block into a rank-2 tensor in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either tensor is not rank 2
    /// or [`TensorError::IndexOutOfRange`] if the block exceeds the bounds.
    pub fn set_block(
        &mut self,
        row0: usize,
        col0: usize,
        block: &Tensor,
    ) -> Result<(), TensorError> {
        if self.rank() != 2 || block.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    block.rank()
                },
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let (rows, cols) = (block.shape()[0], block.shape()[1]);
        if row0 + rows > m {
            return Err(TensorError::IndexOutOfRange {
                index: row0 + rows,
                len: m,
            });
        }
        if col0 + cols > n {
            return Err(TensorError::IndexOutOfRange {
                index: col0 + cols,
                len: n,
            });
        }
        let b = block.as_slice().to_vec();
        let a = self.as_mut_slice();
        for r in 0..rows {
            let base = (row0 + r) * n + col0;
            a[base..base + cols].copy_from_slice(&b[r * cols..(r + 1) * cols]);
        }
        Ok(())
    }
}

/// Returns the inverse of a permutation given as an index vector.
///
/// `inverse_permutation(p)[p[i]] == i` for every `i`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..perm.len()`.
///
/// # Example
///
/// ```
/// let p = vec![2, 0, 1];
/// assert_eq!(paro_tensor::inverse_permutation(&p), vec![1, 2, 0]);
/// ```
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len(), "index {p} out of range in permutation");
        assert!(inv[p] == usize::MAX, "duplicate index {p} in permutation");
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_fn(&[3, 5], |i| (i[0] as f32) - (i[1] as f32) * 0.3);
        let s = t.softmax_rows().unwrap();
        for r in 0..3 {
            let sum: f32 = (0..5).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let t = Tensor::from_vec(&[1, 3], vec![1000.0, 1001.0, 999.0]).unwrap();
        let s = t.softmax_rows().unwrap();
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(&[1, 4], vec![0.1, 0.5, -0.2, 0.9]).unwrap();
        let shifted = t.map(|x| x + 123.0);
        let a = t.softmax_rows().unwrap();
        let b = shifted.softmax_rows().unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn permute_axes_matches_manual() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let p = t.permute_axes(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(p.at(&[c, a, b]), t.at(&[a, b, c]));
                }
            }
        }
    }

    #[test]
    fn permute_identity_is_noop() {
        let t = Tensor::from_fn(&[3, 4], |i| (i[0] + i[1]) as f32);
        assert_eq!(t.permute_axes(&[0, 1]).unwrap(), t);
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let t = Tensor::from_fn(&[5, 3], |i| (i[0] * 3 + i[1]) as f32);
        let perm = vec![4, 2, 0, 3, 1];
        let g = t.gather_rows(&perm).unwrap();
        let back = g.scatter_rows(&perm).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn gather_rejects_out_of_range() {
        let t = Tensor::zeros(&[3, 2]);
        assert!(matches!(
            t.gather_rows(&[0, 5]),
            Err(TensorError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn block_extract_and_set() {
        let mut t = Tensor::from_fn(&[4, 4], |i| (i[0] * 4 + i[1]) as f32);
        let b = t.block(1, 2, 2, 2).unwrap();
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        let z = Tensor::full(&[2, 2], -1.0);
        t.set_block(1, 2, &z).unwrap();
        assert_eq!(t.at(&[1, 2]), -1.0);
        assert_eq!(t.at(&[2, 3]), -1.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert!(t.block(3, 3, 2, 2).is_err());
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let p = vec![3, 1, 4, 0, 2];
        let inv = inverse_permutation(&p);
        for (i, &pi) in p.iter().enumerate() {
            assert_eq!(inv[pi], i);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn inverse_permutation_rejects_duplicates() {
        inverse_permutation(&[0, 0, 1]);
    }
}
