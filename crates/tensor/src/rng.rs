//! Deterministic RNG helpers.
//!
//! Every stochastic component of the reproduction (pattern generation,
//! synthetic embeddings) takes an explicit seed so experiments are exactly
//! repeatable; this module centralizes RNG construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic [`StdRng`] from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = paro_tensor::rng::seeded(7);
/// let mut b = paro_tensor::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index.
///
/// Uses the SplitMix64 finalizer so nearby `(seed, stream)` pairs produce
/// uncorrelated child seeds. This lets each attention head / transformer
/// block own an independent deterministic stream.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(99);
        let mut b = seeded(99);
        for _ in 0..16 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
        }
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s = 1234;
        let children: Vec<u64> = (0..64).map(|i| derive_seed(s, i)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), children.len(), "derived seeds must be unique");
    }

    #[test]
    fn derived_seed_is_stable() {
        // Pin the derivation so stored experiment outputs stay reproducible.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
    }
}
