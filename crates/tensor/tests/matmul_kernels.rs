//! Bit-exactness of the f32 matmul micro-kernels against the scalar
//! reference.
//!
//! All kernels tile `k` identically and accumulate in the same order, so
//! outputs must be **bit-identical** — including when the zero-segment
//! bypass fires and when non-finite right-hand values disable it. Test
//! names are prefixed `kernel_` so the CI sanitizer job can select
//! exactly this suite.

use paro_tensor::{kernel::Kernel, Tensor};
use proptest::prelude::*;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn assert_matmul_agrees(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    let want = a.matmul_with(b, Kernel::Scalar).unwrap();
    for kernel in Kernel::supported() {
        let got = a.matmul_with(b, kernel).unwrap();
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "{} diverges from scalar: {} vs {}",
                kernel,
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shapes with `k` spanning the 256-element `TILE_K` boundary;
    /// a slice of the left operand's `k`-segments is zeroed so the
    /// zero-segment bypass fires on some rows and not others.
    #[test]
    fn kernel_matmul_f32_bit_identical_across_kernels(
        m in 1usize..6,
        k in 1usize..300,
        n in 1usize..20,
        zero_rows in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mut s = seed.wrapping_add(0xf32);
        let mut a_data: Vec<f32> = (0..m * k)
            .map(|_| (lcg(&mut s) % 2_000) as f32 / 1_000.0 - 1.0)
            .collect();
        for r in 0..zero_rows.min(m) {
            for x in &mut a_data[r * k..(r + 1) * k] {
                *x = 0.0;
            }
        }
        let a = Tensor::from_vec(&[m, k], a_data).unwrap();
        let b = Tensor::from_fn(&[k, n], |_| (lcg(&mut s) % 2_000) as f32 / 500.0 - 2.0);
        assert_matmul_agrees(&a, &b)?;
    }

    /// Non-finite right-hand values disable the zero-segment bypass; the
    /// dense IEEE result (NaN/∞ propagated through zero products) must
    /// still be bit-identical across kernels.
    #[test]
    fn kernel_matmul_nonfinite_rhs_bit_identical_across_kernels(
        m in 1usize..5,
        k in 1usize..80,
        n in 1usize..12,
        poison in 0usize..4,
        seed in 0u64..1000,
    ) {
        let mut s = seed.wrapping_add(0xbad);
        let a = Tensor::from_fn(&[m, k], |i| if (i[0] + i[1]) % 3 == 0 { 0.0 } else { 1.5 });
        let mut b_data: Vec<f32> = (0..k * n)
            .map(|_| (lcg(&mut s) % 2_000) as f32 / 1_000.0 - 1.0)
            .collect();
        let len = b_data.len();
        b_data[lcg(&mut s) as usize % len] = match poison {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            _ => 0.0,
        };
        let b = Tensor::from_vec(&[k, n], b_data).unwrap();
        assert_matmul_agrees(&a, &b)?;
    }
}

/// Exact SIMD boundary shapes, pinned deterministically: `k` at and
/// around `TILE_K`, `n` at and around each SIMD lane width.
#[test]
fn kernel_matmul_agrees_on_simd_boundaries() {
    let mut s = 7u64;
    for &k in &[1usize, 255, 256, 257] {
        for &n in &[1usize, 3, 4, 5, 7, 8, 9, 16, 17] {
            let a = Tensor::from_fn(&[3, k], |_| (lcg(&mut s) % 100) as f32 / 10.0 - 5.0);
            let b = Tensor::from_fn(&[k, n], |_| (lcg(&mut s) % 100) as f32 / 10.0 - 5.0);
            assert_matmul_agrees(&a, &b).unwrap();
        }
    }
}
