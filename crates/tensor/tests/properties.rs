//! Property-based tests for the tensor substrate.

use paro_tensor::{inverse_permutation, metrics, Tensor};
use proptest::prelude::*;

/// Strategy: a rank-2 tensor with dims in 1..=12 and finite values.
fn tensor2d() -> impl Strategy<Value = Tensor> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-100.0f32..100.0, m * n)
            .prop_map(move |data| Tensor::from_vec(&[m, n], data).expect("len matches"))
    })
}

/// Strategy: a permutation of 0..n.
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<_>>()).prop_shuffle()
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions(t in tensor2d()) {
        let s = t.softmax_rows().unwrap();
        let (m, n) = (s.shape()[0], s.shape()[1]);
        for r in 0..m {
            let mut sum = 0.0f32;
            for c in 0..n {
                let v = s.at(&[r, c]);
                prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involution(t in tensor2d()) {
        prop_assert_eq!(t.transpose2d().unwrap().transpose2d().unwrap(), t);
    }

    #[test]
    fn gather_scatter_roundtrip(t in tensor2d()) {
        let m = t.shape()[0];
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let perm = permutation(m).new_tree(runner).unwrap().current();
        let g = t.gather_rows(&perm).unwrap();
        prop_assert_eq!(g.scatter_rows(&perm).unwrap(), t);
    }

    #[test]
    fn gather_by_inverse_equals_scatter(t in tensor2d()) {
        let m = t.shape()[0];
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let perm = permutation(m).new_tree(runner).unwrap().current();
        let inv = inverse_permutation(&perm);
        let a = t.gather_rows(&perm).unwrap();
        let b = a.gather_rows(&inv).unwrap();
        prop_assert_eq!(b, t);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor2d(), seed in 0u64..1000
    ) {
        // A(B + C) == AB + AC for same-shaped B, C.
        let (_, k) = (a.shape()[0], a.shape()[1]);
        let n = 5;
        let mut rng = paro_tensor::rng::seeded(seed);
        let dist = rand::distributions::Uniform::new(-1.0f32, 1.0);
        let b = Tensor::random(&[k, n], &dist, &mut rng);
        let c = Tensor::random(&[k, n], &dist, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-3 * x.abs().max(y.abs()));
        }
    }

    #[test]
    fn relative_l2_scale_invariant(t in tensor2d(), s in 0.1f32..10.0) {
        // Scaling both tensors leaves the relative error unchanged.
        prop_assume!(t.norm() > 1e-3);
        let approx = t.map(|x| x + 0.1);
        let e1 = metrics::relative_l2(&t, &approx).unwrap();
        let e2 = metrics::relative_l2(&t.scale(s), &approx.scale(s)).unwrap();
        prop_assert!((e1 - e2).abs() < 1e-3 * (1.0 + e1));
    }

    #[test]
    fn cosine_bounded(a in tensor2d()) {
        let b = a.map(|x| x * 0.7 + 0.1);
        let c = metrics::cosine_similarity(&a, &b).unwrap();
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
    }

    #[test]
    fn permute_axes_roundtrip_rank3(
        d0 in 1usize..=5, d1 in 1usize..=5, d2 in 1usize..=5, seed in 0u64..1000
    ) {
        let mut rng = paro_tensor::rng::seeded(seed);
        let dist = rand::distributions::Uniform::new(-1.0f32, 1.0);
        let t = Tensor::random(&[d0, d1, d2], &dist, &mut rng);
        for perm in [[0usize,1,2],[0,2,1],[1,0,2],[1,2,0],[2,0,1],[2,1,0]] {
            let inv = inverse_permutation(&perm);
            let round = t.permute_axes(&perm).unwrap().permute_axes(&inv).unwrap();
            prop_assert_eq!(&round, &t);
        }
    }

    #[test]
    fn block_roundtrip(t in tensor2d()) {
        let (m, n) = (t.shape()[0], t.shape()[1]);
        let b = t.block(0, 0, m, n).unwrap();
        prop_assert_eq!(b, t.clone());
        let mut copy = Tensor::zeros(&[m, n]);
        copy.set_block(0, 0, &t).unwrap();
        prop_assert_eq!(copy, t);
    }
}
