//! Offline vendored stand-in for `criterion`.
//!
//! Provides the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkId`,
//! benchmark groups, `Bencher::iter`, `black_box`) on a simple
//! wall-clock measurement loop: a short warm-up, then `sample_size`
//! timed samples, reporting min/mean/max per benchmark. No statistical
//! analysis, plotting, or baseline storage.

#![forbid(unsafe_code)]
// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver (holds configuration).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by an id within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_bench(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark (a name, optionally with a parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a display label (lets `&str` be used directly).
pub trait IntoBenchmarkId {
    /// The label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a warm-up
    /// call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also seeds caches the way criterion's warm-up phase
        // would).
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnOnce(&mut Bencher)>(label: &str, sample_size: usize, f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "bench {label:<50} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        mean,
        min,
        max,
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
