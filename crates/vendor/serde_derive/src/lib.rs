//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`, since the
//! build environment cannot fetch them). Supports the shapes this
//! workspace actually derives on:
//!
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently),
//! - unit structs,
//! - enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde's JSON representation).
//!
//! Not supported (panics at compile time with a clear message): generic
//! parameters and `#[serde(...)]` attributes.

// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (Value-tree based; see the vendored `serde`
/// crate).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (Value-tree based; see the vendored
/// `serde` crate).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- item model ------------------------------------------------------

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity only).
    Tuple(usize),
    /// No fields.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item {
                name,
                body: Body::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item {
                name,
                body: Body::Enum(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Advances past a type, stopping at a top-level `,` (angle-bracket
/// aware: commas inside `<...>` don't terminate the type).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                // Consume expression tokens until top-level comma.
                skip_type(&tokens, &mut i);
            }
        }
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

// ---- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => {
            // Newtype structs are transparent, like upstream serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__map, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for struct {name}\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"tuple struct length mismatch\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Body::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn})"
                        ));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {vn}\"))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"variant tuple length mismatch\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__fields, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let __fields = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for variant {vn}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                         match __s {{ {}, _ => {{}} }}\n\
                     }}",
                    unit_arms.join(", ")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__map) = __v.as_map() {{\n\
                         if __map.len() == 1 {{\n\
                             let (__tag, __inner) = &__map[0];\n\
                             match __tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}",
                    tagged_arms
                        .iter()
                        .map(|a| format!("{a},"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            };
            format!(
                "{unit_match}\n{tagged_match}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
