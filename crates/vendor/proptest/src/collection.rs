//! Collection strategies: [`vec()`].

use crate::strategy::{SampledTree, Strategy};
use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

/// Sizes accepted by [`vec()`]: a fixed length or a range of lengths.
pub trait IntoSizeRange {
    /// The inclusive (low, high) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason> {
        let len = if self.min == self.max {
            self.min
        } else {
            runner.rng().gen_range(self.min..=self.max)
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_tree(runner)?.0);
        }
        Ok(SampledTree(out))
    }
}
