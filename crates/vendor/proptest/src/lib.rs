//! Offline vendored stand-in for `proptest`.
//!
//! Implements the strategy/combinator subset this workspace's property
//! tests use — ranges, tuples, [`Just`](strategy::Just), `prop_map`,
//! `prop_flat_map`, `prop_shuffle`, [`collection::vec`],
//! [`sample::select`] — driven by the deterministic vendored `rand`
//! generator. Failing cases are reported with the sampled inputs'
//! `Debug` rendering; there is **no shrinking** (upstream proptest
//! shrinks; this shim favors simplicity since tests here are expected to
//! pass).

#![forbid(unsafe_code)]
// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Mirror of upstream's `prop` re-export module (`prop::sample::select`,
/// `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, reporting the sampled
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (it is re-sampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// is expanded to a test that samples the strategies repeatedly and runs
/// the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.cases;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cases {
                __attempts += 1;
                if __attempts > __cases * 20 {
                    panic!("proptest: too many rejected cases in {}", stringify!($name));
                }
                $(
                    let $arg = $crate::strategy::Strategy::new_tree(&$strat, &mut __runner)
                        .expect("strategy sampling failed")
                        .current();
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  case #{} of {}",
                            msg, __done, stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
