//! Test-runner state: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a strategy could not produce a value.
pub type Reason = String;

/// Outcome of one sampled case's body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; re-sample and retry.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// RNG seed for sampling (fixed: runs are deterministic).
    pub seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            seed: 0x5EED,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising a healthy spread of inputs.
        ProptestConfig::with_cases(64)
    }
}

/// Drives strategy sampling for one property.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Builds a runner from a config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// A runner with a fixed seed (mirrors upstream's
    /// `TestRunner::deterministic`).
    pub fn deterministic() -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0xD31E_57C0_DE00_0001),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new(ProptestConfig::default())
    }
}
