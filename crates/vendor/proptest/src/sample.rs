//! Sampling strategies: [`select`].

use crate::strategy::{SampledTree, Strategy};
use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

/// Strategy choosing uniformly from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select(options)
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<T>, Reason> {
        if self.0.is_empty() {
            return Err("select: empty options".to_string());
        }
        let idx = runner.rng().gen_range(0..self.0.len());
        Ok(SampledTree(self.0[idx].clone()))
    }
}
