//! The [`Strategy`] trait and combinators.

use crate::test_runner::{Reason, TestRunner};
use rand::distributions::uniform::{SampleRange, UniformSample};
use rand::Rng;

/// A sampled value holder; upstream proptest's `ValueTree` also supports
/// shrinking, which this shim omits.
pub trait ValueTree {
    /// The value type.
    type Value;
    /// The current (sampled) value.
    fn current(&self) -> Self::Value;
}

/// The concrete tree every shim strategy produces.
pub struct SampledTree<T>(pub(crate) T);

impl<T: Clone> SampledTree<T> {
    /// The sampled value (inherent mirror of [`ValueTree::current`], so
    /// the `proptest!` macro works without the trait in scope).
    pub fn current(&self) -> T {
        self.0.clone()
    }
}

impl<T: Clone> ValueTree for SampledTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Clone;

    /// Samples one value tree using the runner's RNG.
    ///
    /// # Errors
    ///
    /// Returns a [`Reason`] when sampling cannot proceed (e.g. selecting
    /// from an empty list).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason>;

    /// Maps sampled values through `f`.
    fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each sampled value and samples it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes sampled collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _runner: &mut TestRunner) -> Result<SampledTree<T>, Reason> {
        Ok(SampledTree(self.0.clone()))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<O>, Reason> {
        let v = self.inner.new_tree(runner)?.0;
        Ok(SampledTree((self.f)(v)))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<S2::Value>, Reason> {
        let v = self.inner.new_tree(runner)?.0;
        (self.f)(v).new_tree(runner)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable: Clone {
    /// Shuffles in place with the given RNG.
    fn shuffle(&mut self, rng: &mut rand::rngs::StdRng);
}

impl<T: Clone> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut rand::rngs::StdRng) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<S::Value>, Reason> {
        let mut v = self.inner.new_tree(runner)?.0;
        v.shuffle(runner.rng());
        Ok(SampledTree(v))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T: Clone>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value: Clone;
    fn dyn_new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<S::Value>, Reason> {
        self.new_tree(runner)
    }
}

impl<T: Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<T>, Reason> {
        self.0.dyn_new_tree(runner)
    }
}

impl<T: UniformSample + Clone> Strategy for std::ops::Range<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<T>, Reason> {
        Ok(SampledTree(self.clone().sample_single(runner.rng())))
    }
}

impl<T: UniformSample + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<T>, Reason> {
        Ok(SampledTree(self.clone().sample_single(runner.rng())))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason> {
                Ok(SampledTree(($(self.$idx.new_tree(runner)?.0,)+)))
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);
