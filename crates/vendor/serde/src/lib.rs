//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde's surface this workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits (routed through an in-memory [`Value`] tree
//! instead of serde's visitor machinery), derive macros for plain structs
//! and enums, and the [`de::DeserializeOwned`] alias. `serde_json` in
//! `crates/vendor/serde_json` renders and parses the [`Value`] tree.
//!
//! Fidelity notes:
//! - Structs serialize as JSON objects, enums use serde's externally
//!   tagged representation (`"Variant"`, `{"Variant": ...}`).
//! - Non-finite floats serialize as `null`, matching `serde_json`.
//! - `#[serde(...)]` attributes are not supported (the workspace uses
//!   none).

#![forbid(unsafe_code)]
// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory serialization tree — the interchange format between the
/// [`Serialize`] / [`Deserialize`] traits and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric view as `f64` (integers convert losslessly where
    /// possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// A numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// A numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` with the [`DeserializeOwned`](de::DeserializeOwned) alias.
pub mod de {
    /// Owned deserialization — with this shim's non-borrowing data model,
    /// every [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` so `serde::ser::Serialize` paths resolve.
pub mod ser {
    pub use crate::Serialize;
}

/// Looks up a struct field in a deserialized map (used by derived code).
#[doc(hidden)]
pub fn __get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field '{name}'")))
}

// ---- primitive impls -------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::F64(f)
                } else {
                    // serde_json writes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(vec).map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Deserialize::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$( $idx ),+].len();
                if seq.len() != expected {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
