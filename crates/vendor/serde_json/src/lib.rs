//! Offline vendored stand-in for `serde_json`, rendering and parsing the
//! vendored `serde` crate's [`Value`] tree.
//!
//! Floats are written with Rust's shortest-round-trip formatting and
//! parsed with Rust's correctly-rounded `f64` parser, so
//! serialize-then-deserialize is bit-exact for finite floats (the
//! workspace's serde round-trip tests rely on this). Non-finite floats
//! serialize as `null`, matching upstream `serde_json`.

#![forbid(unsafe_code)]
// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Display on f64 is shortest-round-trip.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let s = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Map(vec![
            ("a".into(), Value::I64(-3)),
            ("b".into(), Value::Seq(vec![Value::F64(0.1), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Bool(true)),
        ]);
        let s = to_string(&StoredValue(v.clone())).unwrap();
        let back = parse_value(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s} -> {back}");
        }
        for f in [0.1f32, 1.0 / 3.0, 3.4e38, f32::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    /// Wrapper so the test can serialize a raw Value.
    struct StoredValue(Value);
    impl serde::Serialize for StoredValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
