//! Distributions: [`Standard`], [`Uniform`] and the [`Distribution`]
//! trait, mirroring the subset of `rand::distributions` this workspace
//! uses.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a primitive type: uniform over all
/// values for integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits -> uniform in [0, 1) with full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1) with full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform distribution over a `[low, high)` (or, via
/// [`Uniform::new_inclusive`], `[low, high]`) range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::UniformSample> Uniform<T> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: T, high: T) -> Self {
        assert!(T::lt(&low, &high), "Uniform::new called with empty range");
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Creates a uniform distribution over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(
            T::le(&low, &high),
            "Uniform::new_inclusive called with empty range"
        );
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: uniform::UniformSample> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(&self.low, &self.high, rng)
        } else {
            T::sample_exclusive(&self.low, &self.high, rng)
        }
    }
}

/// Support machinery for uniform sampling over ranges.
pub mod uniform {
    use super::{Distribution, Standard};
    use crate::Rng;

    /// Types that can be sampled uniformly from a range.
    pub trait UniformSample: Sized + Copy {
        /// Strict comparison used for range validation.
        fn lt(a: &Self, b: &Self) -> bool;
        /// Non-strict comparison used for inclusive-range validation.
        fn le(a: &Self, b: &Self) -> bool;
        /// Samples uniformly from `[low, high)`.
        fn sample_exclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_inclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl UniformSample for $t {
                #[inline]
                fn lt(a: &Self, b: &Self) -> bool { a < b }
                #[inline]
                fn le(a: &Self, b: &Self) -> bool { a <= b }
                #[inline]
                fn sample_exclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    let u: $t = Standard.sample(rng);
                    let v = low + (high - low) * u;
                    // Guard against rounding up to `high` exactly.
                    if v >= *high {
                        // Largest value strictly below `high`.
                        <$t>::from_bits(high.to_bits() - 1).max(*low)
                    } else {
                        v
                    }
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    let u: $t = Standard.sample(rng);
                    low + (high - low) * u
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    // Integer sampling widens through u128, so full-domain inclusive
    // ranges (e.g. `i8::MIN..=i8::MAX`, even `u64::MIN..=u64::MAX`) never
    // overflow. The widening multiply maps 64 random bits onto the span
    // with bias < 2^-64 per sample (Lemire's method without rejection).
    macro_rules! uniform_int {
        ($($t:ty as $wide:ty),*) => {$(
            impl UniformSample for $t {
                #[inline]
                fn lt(a: &Self, b: &Self) -> bool { a < b }
                #[inline]
                fn le(a: &Self, b: &Self) -> bool { a <= b }
                #[inline]
                fn sample_exclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    let span = (*high as $wide).wrapping_sub(*low as $wide) as u64;
                    debug_assert!(span > 0);
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((*low as $wide).wrapping_add(off as $wide)) as $t
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    let span1 = ((*high as $wide).wrapping_sub(*low as $wide) as u64 as u128) + 1;
                    let off = ((rng.next_u64() as u128 * span1) >> 64) as u64;
                    ((*low as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )*};
    }
    uniform_int!(
        u8 as u64,
        u16 as u64,
        u32 as u64,
        u64 as u64,
        usize as u64,
        i8 as i64,
        i16 as i64,
        i32 as i64,
        i64 as i64,
        isize as i64
    );

    /// Range types accepted by [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples a single value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(T::lt(&self.start, &self.end), "gen_range: empty range");
            T::sample_exclusive(&self.start, &self.end, rng)
        }
    }

    impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = (*self.start(), *self.end());
            assert!(T::le(&low, &high), "gen_range: empty range");
            T::sample_inclusive(&low, &high, rng)
        }
    }
}
