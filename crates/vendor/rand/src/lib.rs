//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace uses: seedable
//! deterministic generators ([`rngs::StdRng`], [`rngs::SmallRng`]), the
//! [`Rng`] extension methods `gen`, `gen_range` and `sample`, and the
//! [`distributions`] module with [`distributions::Uniform`] and
//! [`distributions::Standard`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12-based `StdRng`, but every
//! consumer in this workspace only relies on determinism and statistical
//! quality, not on a specific stream.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut a = rand::rngs::StdRng::seed_from_u64(7);
//! let mut b = rand::rngs::StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

#![forbid(unsafe_code)]
// Vendored stand-in: keep the shim minimal, not lint-perfect.
#![allow(clippy::all)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Returns a bool with probability `p` of being true.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::Uniform;

    #[test]
    fn deterministic_across_instances() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_change_stream() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f32_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let dist = Uniform::new(-2.0f32, 3.0);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!(x >= f32::EPSILON && x < 1.0);
            let n: usize = rng.gen_range(0..10usize);
            assert!(n < 10);
            let m: u64 = rng.gen_range(5..=6u64);
            assert!((5..=6).contains(&m));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let dist = Uniform::new(0.0f64, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
