//! Concrete generators: [`StdRng`] and [`SmallRng`], both xoshiro256++.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state. Passes BigCrush; more than adequate for the
/// synthetic-data and property-test workloads in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Xoshiro256PlusPlus { s }
    }
}

/// The workspace's standard deterministic generator.
pub type StdRng = Xoshiro256PlusPlus;

/// A small, fast generator — same implementation as [`StdRng`] here.
pub type SmallRng = Xoshiro256PlusPlus;
