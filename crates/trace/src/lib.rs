//! `paro-trace`: low-overhead span tracing for the PARO runtime.
//!
//! The serving engine, the compute pool and the attention pipeline all
//! report *aggregate* counters (see `paro-serve::metrics`); what they
//! cannot show is **where one request spends its time** — reorder vs.
//! calibration vs. `QKᵀ` vs. packed `AttnV` vs. queue wait. This crate is
//! the measurement substrate for that question, built to be embeddable in
//! every runtime crate:
//!
//! - **Zero dependencies.** Records are plain structs; both exporters
//!   (Chrome trace-event JSON and per-stage summaries) are hand-rolled.
//! - **Low overhead.** Recording goes through a thread-local buffer whose
//!   mutex is only ever contended at session drain; an inactive session
//!   costs one relaxed atomic load per span site.
//! - **Compile-out.** Without the `enabled` cargo feature every API call
//!   is an inlined no-op, so instrumented hot loops carry no cost at all.
//!
//! # Model
//!
//! A [`TraceSession`] brackets a recording window; finishing it yields a
//! [`Trace`] of [`SpanRecord`]s. Spans are RAII guards ([`span`]) named by
//! a `&'static str` stage (the canonical stage names live in [`stage`]),
//! nest per thread (`parent` links), and carry a **correlation context**
//! ([`ctx`]) — the serving engine sets it to the request index before any
//! compute runs, and [`paro-core`'s compute
//! pool](../paro_core/pool/index.html) forwards it across thread hops, so
//! one trace shows a request crossing the admission queue into pool
//! workers. Externally-timed intervals (queue waits) are recorded with
//! [`record_range`].
//!
//! # Example
//!
//! ```
//! let session = paro_trace::TraceSession::start();
//! {
//!     let _request = paro_trace::ctx(7);
//!     let _outer = paro_trace::span("pipeline.qkt");
//!     let _inner = paro_trace::span("pipeline.quantize_map");
//! }
//! let trace = session.finish();
//! # #[cfg(feature = "enabled")]
//! # {
//! assert_eq!(trace.records.len(), 2);
//! // Records sort by start time: outer span first, inner linked to it.
//! assert_eq!(trace.records[0].stage, "pipeline.qkt");
//! assert_eq!(trace.records[1].parent, trace.records[0].id);
//! assert!(trace.records.iter().all(|r| r.ctx == 7));
//! // Exporters: Chrome trace-event JSON + per-stage summary.
//! let json = trace.chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! let summary = trace.summary();
//! assert_eq!(summary.len(), 2);
//! # }
//! ```
//!
//! The emitted JSON loads in Perfetto / `about://tracing`; the field
//! contract is documented in `docs/TELEMETRY.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod record;
mod summary;

#[cfg(feature = "enabled")]
mod collector;
#[cfg(not(feature = "enabled"))]
mod noop;

pub use record::{SpanOutcome, SpanRecord, NO_CTX, NO_DETAIL};
pub use summary::{
    format_table, summarize, summarize_by_ctx, summarize_stage_by_detail, CtxSummary,
    DetailSummary, StageSummary,
};

#[cfg(feature = "enabled")]
pub use collector::{
    ctx, current_ctx, is_active, record_range, span, span_detailed, CtxGuard, SpanGuard,
    TraceSession,
};
#[cfg(not(feature = "enabled"))]
pub use noop::{
    ctx, current_ctx, is_active, record_range, span, span_detailed, CtxGuard, SpanGuard,
    TraceSession,
};

/// Whether recording support is compiled into this build (the `enabled`
/// cargo feature). When `false`, every span/event call is a no-op and
/// sessions always return empty traces.
pub const COMPILED_IN: bool = cfg!(feature = "enabled");

/// Canonical stage names emitted by the instrumented PARO crates.
///
/// Instrumentation sites reference these constants so the telemetry
/// contract (`docs/TELEMETRY.md`) has a single source of truth; exporters
/// accept any `&'static str`, so downstream users may add their own.
pub mod stage {
    /// Admission-to-pickup wait of one serve request in the engine queue.
    pub const SERVE_QUEUE_WAIT: &str = "serve.queue_wait";
    /// One serve request's worker service time (calibration resolution +
    /// attention execution).
    pub const SERVE_SERVICE: &str = "serve.service";
    /// Plan-cache miss: offline calibration of one head.
    pub const SERVE_CALIBRATE: &str = "serve.calibrate";
    /// Batch submission loop of `Engine::run_batch`.
    pub const SERVE_ADMIT: &str = "serve.admit";
    /// Submission-order reassembly wait of `Engine::run_batch`.
    pub const SERVE_REASSEMBLE: &str = "serve.reassemble";
    /// Wait of one job in the shared compute-pool queue.
    pub const POOL_QUEUE_WAIT: &str = "pool.queue_wait";
    /// Execution of one job on a compute-pool worker.
    pub const POOL_EXECUTE: &str = "pool.execute";
    /// INT8 quantization of `Q`/`K` (the online pipeline also folds `V`
    /// fake-quant into this span; the calibrated int path reports `V`
    /// separately under [`PIPELINE_QUANTIZE_V`]).
    pub const PIPELINE_QUANTIZE_QKV: &str = "pipeline.quantize_qkv";
    /// Packed per-column integer quantization of `V` (calibrated int
    /// path only — kept distinct from [`PIPELINE_QUANTIZE_QKV`] so the
    /// two workloads don't share one median).
    pub const PIPELINE_QUANTIZE_V: &str = "pipeline.quantize_v";
    /// Online reorder-plan selection (the non-calibrated pipeline).
    pub const PIPELINE_SELECT_PLAN: &str = "pipeline.select_plan";
    /// Token reorder of `Q`/`K`/`V` under the selected plan.
    pub const PIPELINE_REORDER: &str = "pipeline.reorder";
    /// `QKᵀ` score computation + softmax (LDZ-truncated when
    /// output-aware).
    pub const PIPELINE_QKT: &str = "pipeline.qkt";
    /// Block-wise (mixed-precision) quantization of the softmaxed map.
    pub const PIPELINE_QUANTIZE_MAP: &str = "pipeline.quantize_map";
    /// `AttnV` — block-sparse, packed-integer in the deployment path.
    pub const PIPELINE_ATTN_V: &str = "pipeline.attn_v";
    /// Inverse reorder of the attention output.
    pub const PIPELINE_UNREORDER: &str = "pipeline.unreorder";
    /// LDZ panel precompute inside the output-aware `QKᵀ`: one truncated
    /// copy of a block-column's `K` codes per distinct kept bitwidth.
    pub const QKT_LDZ: &str = "qkt.ldz";
    /// The i8×i8→i32 score micro-kernel over one panel group — a
    /// block-column's non-B0 blocks at one bitwidth (one block's MAC is
    /// shorter than a span record, so per-block spans would dominate the
    /// stage) — or the whole map on the exact path; `detail` names the
    /// dispatched kernel.
    pub const QKT_MAC: &str = "qkt.mac";
    /// Zero-point centering ("unpack") of the per-column `V` codes.
    pub const ATTNV_UNPACK: &str = "attnv.unpack";
    /// The per-bitwidth i32 MAC micro-kernel over one packed map block
    /// (one span per non-zero block, so the summary isolates kernel time
    /// from the surrounding dequantization).
    pub const ATTNV_MAC: &str = "attnv.mac";
    /// Per-block dequantization of the i32 accumulators: scale-product
    /// rebuild plus the f32 scatter into the output rows.
    pub const ATTNV_DEQUANT: &str = "attnv.dequant";
    /// Multi-sample offline head calibration (`calibrate_head`).
    pub const CALIBRATE_HEAD: &str = "calibrate.head";
    /// Backoff sleep before one retry of a transiently-faulted request.
    pub const SERVE_RETRY_BACKOFF: &str = "serve.retry_backoff";
    /// Degraded fallback: the reference f32 attention path run after the
    /// packed-int path faulted (marked with the `degraded` outcome).
    pub const SERVE_FALLBACK: &str = "serve.fallback";
    /// One-shot kernel-dispatch resolution: a zero-length span emitted at
    /// session start whose `detail` names the micro-kernel every hot loop
    /// runs (`scalar` / `sse4.1` / `avx2`).
    pub const KERNEL_DISPATCH: &str = "kernel.dispatch";
    /// Reading + structural validation of a plan artifact at engine
    /// startup (and the per-request artifact lookup on a plan-cache
    /// miss).
    pub const PLAN_LOAD: &str = "plan.load";
    /// Deep semantic verification of a loaded plan artifact against the
    /// serving configuration.
    pub const PLAN_VERIFY: &str = "plan.verify";
    /// Admission-to-dispatch wait of one head task in the serving work
    /// graph: the interval between entering a tenant queue and the
    /// weighted-fair scheduler granting the task to a worker.
    pub const SCHED_QUEUE_WAIT: &str = "sched.queue_wait";
    /// One scheduler wave: the busy period between the work graph's
    /// in-flight count leaving zero and returning to zero (continuous
    /// batching), or one admit-drain barrier cycle (drain policy). The
    /// range's context is the wave id.
    pub const SCHED_WAVE: &str = "sched.wave";
    /// Load-shedding decision marker: a zero-length span emitted at
    /// admission when a tenant over quota is degraded to its coarse shed
    /// budget (`detail` = `degrade`) or rejected outright (`detail` =
    /// `reject`).
    pub const SCHED_SHED: &str = "sched.shed";
    /// Plan-health transition marker: a zero-length span emitted by the
    /// staleness watchdog when a plan epoch's health state changes
    /// (`detail` = the new state, `fresh` / `suspect` / `stale`).
    pub const PLAN_HEALTH: &str = "plan.health";
    /// One online recalibration attempt: re-freezing every head plan
    /// from the current calibration source (marked `degraded` when the
    /// attempt faulted and serving continues on the stale epoch).
    pub const PLAN_RECALIBRATE: &str = "plan.recalibrate";
    /// Atomic plan hot-swap: publication of a freshly recalibrated epoch
    /// to new admissions (the span's correlation context is the new
    /// epoch).
    pub const PLAN_SWAP: &str = "plan.swap";

    /// Every canonical stage name, for exporter tests and documentation
    /// checks.
    pub const ALL: &[&str] = &[
        SERVE_QUEUE_WAIT,
        SERVE_SERVICE,
        SERVE_CALIBRATE,
        SERVE_ADMIT,
        SERVE_REASSEMBLE,
        POOL_QUEUE_WAIT,
        POOL_EXECUTE,
        PIPELINE_QUANTIZE_QKV,
        PIPELINE_QUANTIZE_V,
        PIPELINE_SELECT_PLAN,
        PIPELINE_REORDER,
        PIPELINE_QKT,
        PIPELINE_QUANTIZE_MAP,
        PIPELINE_ATTN_V,
        PIPELINE_UNREORDER,
        QKT_LDZ,
        QKT_MAC,
        ATTNV_UNPACK,
        ATTNV_MAC,
        ATTNV_DEQUANT,
        CALIBRATE_HEAD,
        SERVE_RETRY_BACKOFF,
        SERVE_FALLBACK,
        KERNEL_DISPATCH,
        PLAN_LOAD,
        PLAN_VERIFY,
        SCHED_QUEUE_WAIT,
        SCHED_WAVE,
        SCHED_SHED,
        PLAN_HEALTH,
        PLAN_RECALIBRATE,
        PLAN_SWAP,
    ];
}

/// A finished recording: every span captured between
/// [`TraceSession::start`] and [`TraceSession::finish`], sorted by start
/// time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The recorded spans, sorted by `start_ns` (ties by `id`).
    pub records: Vec<SpanRecord>,
    /// Spans dropped because a thread hit its buffer cap during the
    /// session. Non-zero means the summaries undercount.
    pub dropped: u64,
}

impl Trace {
    /// Exports the trace in Chrome trace-event JSON (the format Perfetto
    /// and `about://tracing` load). See `docs/TELEMETRY.md` for the field
    /// contract.
    pub fn chrome_json(&self) -> String {
        chrome::chrome_json(&self.records)
    }

    /// Per-stage aggregate durations (count/total/p50/p95/max), sorted by
    /// total time descending.
    pub fn summary(&self) -> Vec<StageSummary> {
        summarize(&self.records)
    }

    /// Per-context per-stage aggregates: one [`CtxSummary`] per distinct
    /// correlation context (spans without a context are grouped under
    /// [`NO_CTX`]).
    pub fn summary_by_ctx(&self) -> Vec<CtxSummary> {
        summarize_by_ctx(&self.records)
    }
}
