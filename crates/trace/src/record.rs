//! The wire-level record every exporter consumes.

/// Context value for spans recorded outside any [`crate::ctx`] scope.
pub const NO_CTX: u64 = u64::MAX;

/// Detail value for spans recorded without an annotation (the default);
/// exporters omit the field entirely for it.
pub const NO_DETAIL: &str = "";

/// How the work inside a span ended. Defaults to [`SpanOutcome::Ok`];
/// instrumentation marks anything else explicitly (via
/// `SpanGuard::set_outcome`) on its failure/cancellation paths, so traces
/// show *where* requests fail, time out, or degrade — not just where
/// time goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanOutcome {
    /// The spanned work completed normally.
    #[default]
    Ok,
    /// The spanned work returned an error or panicked.
    Failed,
    /// The spanned work was cancelled by a deadline.
    Cancelled,
    /// The spanned work fell back to a degraded (reference f32) path.
    Degraded,
}

impl SpanOutcome {
    /// Stable lowercase name, as emitted in the Chrome export's
    /// `args.outcome`.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Cancelled => "cancelled",
            SpanOutcome::Degraded => "degraded",
        }
    }
}

/// One closed span: a named stage with start/end timestamps, its parent
/// on the recording thread, and the correlation context active when it
/// opened.
///
/// Timestamps are nanoseconds since the session's process-wide monotonic
/// epoch (the first trace use in the process), so records from different
/// threads are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Stage name; canonical values live in [`crate::stage`].
    pub stage: &'static str,
    /// Span open time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span close time, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Correlation context (serve request index in the serving engine),
    /// or [`NO_CTX`].
    pub ctx: u64,
    /// Recording thread, as a small dense index assigned per thread.
    pub thread: u64,
    /// How the spanned work ended (failure/cancel/degrade marking).
    pub outcome: SpanOutcome,
    /// Free-form static annotation (e.g. the dispatched kernel name on
    /// `attnv.mac` / `kernel.dispatch` spans), or [`NO_DETAIL`].
    pub detail: &'static str,
}

impl SpanRecord {
    /// Span duration in nanoseconds (saturating; clocks are monotonic so
    /// this only guards manual construction).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_saturates() {
        let r = SpanRecord {
            id: 1,
            parent: 0,
            stage: "x",
            start_ns: 10,
            end_ns: 4,
            ctx: NO_CTX,
            thread: 0,
            outcome: SpanOutcome::default(),
            detail: NO_DETAIL,
        };
        assert_eq!(r.duration_ns(), 0);
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(SpanOutcome::default(), SpanOutcome::Ok);
        assert_eq!(SpanOutcome::Ok.as_str(), "ok");
        assert_eq!(SpanOutcome::Failed.as_str(), "failed");
        assert_eq!(SpanOutcome::Cancelled.as_str(), "cancelled");
        assert_eq!(SpanOutcome::Degraded.as_str(), "degraded");
    }
}
