//! Chrome trace-event JSON export (the `about://tracing` / Perfetto
//! format), hand-written so the crate stays dependency-free.

use crate::record::{SpanOutcome, SpanRecord, NO_CTX, NO_DETAIL};

/// Minimal JSON string escape for event names; stage names are static
/// strings under our control, so this only guards future additions.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as the trace-event format's
/// `ts`/`dur` fields expect.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Serializes records as complete (`"ph":"X"`) trace events under one
/// process (`pid` 1), one Chrome thread per recording thread.
pub fn chrome_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"paro\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            escape(r.stage),
            us(r.start_ns),
            us(r.duration_ns()),
            r.thread,
            r.id,
            r.parent,
        ));
        if r.ctx != NO_CTX {
            out.push_str(&format!(",\"ctx\":{}", r.ctx));
        }
        // `ok` is the default and carries no information; only mark the
        // exceptional outcomes so clean traces stay byte-identical to
        // pre-outcome exports.
        if r.outcome != SpanOutcome::Ok {
            out.push_str(&format!(",\"outcome\":\"{}\"", r.outcome.as_str()));
        }
        // Same for the detail annotation: unannotated spans stay
        // byte-identical to pre-detail exports.
        if r.detail != NO_DETAIL {
            out.push_str(&format!(",\"detail\":\"{}\"", escape(r.detail)));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn rec(id: u64, stage: &'static str, start: u64, end: u64, ctx: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            stage,
            start_ns: start,
            end_ns: end,
            ctx,
            thread: 3,
            outcome: SpanOutcome::Ok,
            detail: NO_DETAIL,
        }
    }

    fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
        v.as_map()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    #[test]
    fn microsecond_formatting() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(2_000_001), "2000.001");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let json = chrome_json(&[
            rec(1, "pipeline.qkt", 1_000, 4_500, 7),
            rec(2, "pool.execute", 2_000, 3_000, NO_CTX),
        ]);
        let value = serde_json::parse_value(&json).expect("exporter must emit valid JSON");
        let events = field(&value, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents must be an array");
        assert_eq!(events.len(), 2);
        for event in events {
            // The trace-event format requires ph/ts and pid/tid on every
            // event; we emit complete events with a duration.
            assert_eq!(field(event, "ph").and_then(Value::as_str), Some("X"));
            assert!(field(event, "ts").and_then(Value::as_f64).is_some());
            assert!(field(event, "dur").and_then(Value::as_f64).is_some());
            assert!(field(event, "pid").and_then(Value::as_f64).is_some());
            assert!(field(event, "tid").and_then(Value::as_f64).is_some());
            assert!(field(event, "name").and_then(Value::as_str).is_some());
        }
        let first = &events[0];
        assert_eq!(
            field(first, "name").and_then(Value::as_str),
            Some("pipeline.qkt")
        );
        assert_eq!(field(first, "ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(field(first, "dur").and_then(Value::as_f64), Some(3.5));
        let args = field(first, "args").expect("args present");
        assert_eq!(field(args, "ctx").and_then(Value::as_f64), Some(7.0));
        // NO_CTX spans omit the ctx arg entirely; so do ok outcomes and
        // empty details.
        let second_args = field(&events[1], "args").expect("args present");
        assert!(field(second_args, "ctx").is_none());
        assert!(field(second_args, "outcome").is_none());
        assert!(field(second_args, "detail").is_none());
    }

    #[test]
    fn detail_annotations_are_exported() {
        let mut annotated = rec(1, "attnv.mac", 0, 10, 4);
        annotated.detail = "avx2";
        let json = chrome_json(&[annotated, rec(2, "attnv.mac", 10, 20, 4)]);
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let events = field(&value, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        let detail = |i: usize| {
            field(&events[i], "args")
                .and_then(|a| field(a, "detail"))
                .and_then(Value::as_str)
        };
        assert_eq!(detail(0), Some("avx2"));
        assert_eq!(detail(1), None);
    }

    #[test]
    fn non_ok_outcomes_are_exported() {
        let mut failed = rec(1, "serve.service", 0, 10, 4);
        failed.outcome = SpanOutcome::Failed;
        let mut degraded = rec(2, "serve.fallback", 10, 20, 4);
        degraded.outcome = SpanOutcome::Degraded;
        let json = chrome_json(&[failed, degraded, rec(3, "serve.service", 20, 30, 5)]);
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let events = field(&value, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        let outcome = |i: usize| {
            field(&events[i], "args")
                .and_then(|a| field(a, "outcome"))
                .and_then(Value::as_str)
        };
        assert_eq!(outcome(0), Some("failed"));
        assert_eq!(outcome(1), Some("degraded"));
        assert_eq!(outcome(2), None);
    }

    #[test]
    fn empty_trace_still_valid() {
        let json = chrome_json(&[]);
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let events = field(&value, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        assert!(events.is_empty());
    }
}
