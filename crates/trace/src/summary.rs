//! Per-stage aggregation of span records into count/total/percentile
//! rows, plus a fixed-width table renderer for CLI output.

use crate::record::SpanRecord;

/// Aggregate durations of every span sharing one stage name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// The stage name these spans share.
    pub stage: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Median span duration (nearest-rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile span duration (nearest-rank), nanoseconds.
    pub p95_ns: u64,
    /// Longest span duration, nanoseconds.
    pub max_ns: u64,
}

/// Per-stage summaries for one correlation context; see
/// [`summarize_by_ctx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtxSummary {
    /// The correlation context (serve request index), or
    /// [`crate::NO_CTX`] for uncorrelated spans.
    pub ctx: u64,
    /// The context's stage aggregates, sorted by total time descending.
    pub stages: Vec<StageSummary>,
}

/// One detail group's aggregate within a single stage; see
/// [`summarize_stage_by_detail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetailSummary {
    /// The detail string the grouped spans share ([`crate::NO_DETAIL`]
    /// for spans recorded without one).
    pub detail: &'static str,
    /// The group's duration aggregate (the `stage` field repeats the
    /// stage the records were filtered on).
    pub summary: StageSummary,
}

/// Nearest-rank percentile over a sorted slice: the smallest element
/// such that at least `q` of the distribution is at or below it.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize_group(stage: &'static str, mut durations: Vec<u64>) -> StageSummary {
    durations.sort_unstable();
    StageSummary {
        stage,
        count: durations.len() as u64,
        total_ns: durations.iter().sum(),
        p50_ns: percentile(&durations, 0.50),
        p95_ns: percentile(&durations, 0.95),
        max_ns: durations.last().copied().unwrap_or(0),
    }
}

/// Groups records by stage and aggregates durations, sorted by total
/// time descending (ties broken by stage name for determinism).
pub fn summarize(records: &[SpanRecord]) -> Vec<StageSummary> {
    let mut groups: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for r in records {
        match groups.iter_mut().find(|(s, _)| *s == r.stage) {
            Some((_, durations)) => durations.push(r.duration_ns()),
            None => groups.push((r.stage, vec![r.duration_ns()])),
        }
    }
    let mut rows: Vec<StageSummary> = groups
        .into_iter()
        .map(|(stage, durations)| summarize_group(stage, durations))
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.stage.cmp(b.stage)));
    rows
}

/// Aggregates one stage's records grouped by their `detail` string —
/// e.g. `pool.execute` spans split by the owning pool's shard label, the
/// per-shard skew readout `paro shard-bench` reports. Groups sort by
/// detail string ascending (deterministic regardless of durations);
/// records of other stages are ignored.
pub fn summarize_stage_by_detail(
    records: &[SpanRecord],
    stage: &'static str,
) -> Vec<DetailSummary> {
    let mut groups: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for r in records.iter().filter(|r| r.stage == stage) {
        match groups.iter_mut().find(|(d, _)| *d == r.detail) {
            Some((_, durations)) => durations.push(r.duration_ns()),
            None => groups.push((r.detail, vec![r.duration_ns()])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(b.0));
    groups
        .into_iter()
        .map(|(detail, durations)| DetailSummary {
            detail,
            summary: summarize_group(stage, durations),
        })
        .collect()
}

/// Like [`summarize`] but grouped by correlation context first, so one
/// serve request's stage breakdown can be read in isolation. Contexts
/// sort ascending with [`crate::NO_CTX`] last.
pub fn summarize_by_ctx(records: &[SpanRecord]) -> Vec<CtxSummary> {
    let mut contexts: Vec<u64> = records.iter().map(|r| r.ctx).collect();
    contexts.sort_unstable();
    contexts.dedup();
    contexts
        .into_iter()
        .map(|ctx| {
            let subset: Vec<SpanRecord> =
                records.iter().filter(|r| r.ctx == ctx).copied().collect();
            CtxSummary {
                ctx,
                stages: summarize(&subset),
            }
        })
        .collect()
}

/// Renders summary rows as a fixed-width text table with microsecond
/// durations — the format `paro trace` and `paro serve-bench` print.
pub fn format_table(rows: &[StageSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
        "stage", "count", "total_us", "p50_us", "p95_us", "max_us"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.1} {:>10.1} {:>10.1} {:>10.1}\n",
            row.stage,
            row.count,
            row.total_ns as f64 / 1e3,
            row.p50_ns as f64 / 1e3,
            row.p95_ns as f64 / 1e3,
            row.max_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_CTX;

    fn rec(stage: &'static str, start: u64, end: u64, ctx: u64) -> SpanRecord {
        SpanRecord {
            id: start + 1,
            parent: 0,
            stage,
            start_ns: start,
            end_ns: end,
            ctx,
            thread: 1,
            outcome: crate::record::SpanOutcome::Ok,
            detail: crate::record::NO_DETAIL,
        }
    }

    #[test]
    fn summarize_counts_and_percentiles() {
        // Durations 100..=1000 in steps of 100 for "a"; one 50ns "b".
        let mut records: Vec<SpanRecord> =
            (1..=10u64).map(|i| rec("a", 0, i * 100, NO_CTX)).collect();
        records.push(rec("b", 0, 50, NO_CTX));
        let rows = summarize(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, "a"); // larger total first
        assert_eq!(rows[0].count, 10);
        assert_eq!(rows[0].total_ns, 5500);
        assert_eq!(rows[0].p50_ns, 500);
        assert_eq!(rows[0].p95_ns, 1000);
        assert_eq!(rows[0].max_ns, 1000);
        assert_eq!(rows[1].stage, "b");
        assert_eq!(rows[1].p50_ns, 50);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42], 0.50), 42);
        assert_eq!(percentile(&[42], 0.95), 42);
        assert_eq!(percentile(&[], 0.95), 0);
    }

    #[test]
    fn by_ctx_groups_and_orders() {
        let records = vec![
            rec("a", 0, 10, 2),
            rec("a", 0, 20, 1),
            rec("b", 0, 5, NO_CTX),
        ];
        let groups = summarize_by_ctx(&records);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].ctx, 1);
        assert_eq!(groups[1].ctx, 2);
        assert_eq!(groups[2].ctx, NO_CTX);
        assert_eq!(groups[0].stages[0].total_ns, 20);
    }

    fn rec_detailed(stage: &'static str, detail: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            detail,
            ..rec(stage, start, end, NO_CTX)
        }
    }

    #[test]
    fn by_detail_splits_one_stage_and_ignores_others() {
        let records = vec![
            rec_detailed("pool.execute", "shard0", 0, 100),
            rec_detailed("pool.execute", "shard1", 0, 40),
            rec_detailed("pool.execute", "shard0", 0, 300),
            rec_detailed("pipeline.qkt", "shard0", 0, 999),
            rec("pool.execute", 0, 7, NO_CTX),
        ];
        let groups = summarize_stage_by_detail(&records, "pool.execute");
        assert_eq!(groups.len(), 3);
        // Sorted by detail string; NO_DETAIL ("") first.
        assert_eq!(groups[0].detail, crate::record::NO_DETAIL);
        assert_eq!(groups[0].summary.count, 1);
        assert_eq!(groups[1].detail, "shard0");
        assert_eq!(groups[1].summary.count, 2);
        assert_eq!(groups[1].summary.total_ns, 400);
        assert_eq!(groups[1].summary.stage, "pool.execute");
        assert_eq!(groups[2].detail, "shard1");
        assert_eq!(groups[2].summary.total_ns, 40);
    }

    #[test]
    fn by_detail_empty_for_unseen_stage() {
        let records = vec![rec("a", 0, 10, NO_CTX)];
        assert!(summarize_stage_by_detail(&records, "b").is_empty());
    }

    #[test]
    fn table_has_header_and_rows() {
        let rows = summarize(&[rec("pipeline.qkt", 0, 1500, NO_CTX)]);
        let table = format_table(&rows);
        assert!(table.starts_with("stage"));
        assert!(table.contains("pipeline.qkt"));
        assert!(table.contains("1.5"));
    }
}
