//! The real recorder, compiled with the `enabled` feature: thread-local
//! buffers registered in a process-wide collector, drained at session end.

use crate::record::{SpanOutcome, SpanRecord, NO_CTX, NO_DETAIL};
use crate::Trace;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread record cap; spans past it are counted in `Trace::dropped`
/// instead of growing the buffer without bound.
const MAX_RECORDS_PER_THREAD: usize = 1 << 20;

/// Recording is on between `TraceSession::start` and `finish`. Span sites
/// check this with one relaxed load before doing any other work.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// One session at a time: `start` blocks on this gate until the previous
/// session finishes, so two concurrent benchmarks can't interleave traces.
static SESSION_GATE: Mutex<bool> = Mutex::new(false);
static SESSION_FREED: Condvar = Condvar::new();

/// Process-unique span ids; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Dense per-thread ids for the Chrome `tid` field; 0 is never assigned.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic epoch all timestamps are relative to, fixed at the first
/// trace use in the process so cross-thread records are comparable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    Instant::now().saturating_duration_since(epoch()).as_nanos() as u64
}

/// The per-thread sink. Shared with the global registry via `Arc` so a
/// session can drain buffers of threads that have since exited.
struct ThreadBuffer {
    thread: u64,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl ThreadBuffer {
    fn push(&self, record: SpanRecord) {
        let mut records = self.records.lock().unwrap();
        if records.len() >= MAX_RECORDS_PER_THREAD {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            records.push(record);
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct Local {
    buffer: Arc<ThreadBuffer>,
    /// Open spans on this thread, innermost last; tops become parents.
    stack: RefCell<Vec<u64>>,
    /// Correlation context set by [`ctx`]; tracked even while no session
    /// is active so a session started mid-request still sees it.
    ctx: Cell<u64>,
}

thread_local! {
    static LOCAL: Local = {
        let buffer = Arc::new(ThreadBuffer {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        registry().lock().unwrap().push(Arc::clone(&buffer));
        Local {
            buffer,
            stack: RefCell::new(Vec::new()),
            ctx: Cell::new(NO_CTX),
        }
    };
}

/// Returns `true` while a [`TraceSession`] is recording. Use this to skip
/// side work that only exists to feed the trace (e.g. capturing enqueue
/// timestamps for [`record_range`]).
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The correlation context currently set on this thread via [`ctx`], or
/// [`NO_CTX`]. Capture it before handing work to another thread and
/// re-establish it there so spans stay attributed across the hop.
#[inline]
pub fn current_ctx() -> u64 {
    LOCAL.with(|l| l.ctx.get())
}

/// Sets this thread's correlation context for the guard's lifetime
/// (restoring the previous value on drop). The serving engine sets it to
/// the request index before any compute runs.
#[inline]
pub fn ctx(value: u64) -> CtxGuard {
    let prev = LOCAL.with(|l| l.ctx.replace(value));
    CtxGuard { prev }
}

/// RAII guard restoring the previous correlation context; see [`ctx`].
#[must_use = "the context is reset when the guard drops"]
pub struct CtxGuard {
    prev: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| l.ctx.set(self.prev));
    }
}

/// Opens a span for `stage`, closed (and recorded) when the returned
/// guard drops. Nested spans on the same thread link to their parent.
/// Costs one relaxed atomic load when no session is active.
#[inline]
pub fn span(stage: &'static str) -> SpanGuard {
    span_detailed(stage, NO_DETAIL)
}

/// [`span`] with a static annotation recorded alongside the stage name
/// (exported as `args.detail`) — e.g. the dispatched kernel name on
/// `attnv.mac` spans.
#[inline]
pub fn span_detailed(stage: &'static str, detail: &'static str) -> SpanGuard {
    if !is_active() {
        return SpanGuard {
            id: 0,
            parent: 0,
            stage,
            start_ns: 0,
            ctx: NO_CTX,
            outcome: Cell::new(SpanOutcome::Ok),
            detail,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, ctx) = LOCAL.with(|l| {
        let mut stack = l.stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        (parent, l.ctx.get())
    });
    SpanGuard {
        id,
        parent,
        stage,
        start_ns: now_ns(),
        ctx,
        outcome: Cell::new(SpanOutcome::Ok),
        detail,
    }
}

/// RAII span guard returned by [`span`]; records a [`SpanRecord`] on drop.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    stage: &'static str,
    start_ns: u64,
    ctx: u64,
    outcome: Cell<SpanOutcome>,
    detail: &'static str,
}

impl SpanGuard {
    /// Marks how the spanned work ended; recorded when the guard drops.
    /// Instrumentation calls this on failure/cancel/degrade paths only —
    /// the default is [`SpanOutcome::Ok`].
    #[inline]
    pub fn set_outcome(&self, outcome: SpanOutcome) {
        self.outcome.set(outcome);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return; // opened while no session was active
        }
        let end_ns = now_ns();
        LOCAL.with(|l| {
            let mut stack = l.stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
            drop(stack);
            l.buffer.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                stage: self.stage,
                start_ns: self.start_ns,
                end_ns,
                ctx: self.ctx,
                thread: l.buffer.thread,
                outcome: self.outcome.get(),
                detail: self.detail,
            });
        });
    }
}

/// Records an externally-timed interval (e.g. a queue wait measured from
/// an enqueue timestamp) as a root span on the calling thread, attributed
/// to `ctx`. No-op when no session is active; instants predating the
/// trace epoch clamp to it.
pub fn record_range(stage: &'static str, start: Instant, end: Instant, ctx: u64) {
    if !is_active() {
        return;
    }
    let e = epoch();
    let start_ns = start.saturating_duration_since(e).as_nanos() as u64;
    let end_ns = end.saturating_duration_since(e).as_nanos() as u64;
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|l| {
        l.buffer.push(SpanRecord {
            id,
            parent: 0,
            stage,
            start_ns,
            end_ns: end_ns.max(start_ns),
            ctx,
            thread: l.buffer.thread,
            outcome: SpanOutcome::Ok,
            detail: NO_DETAIL,
        });
    });
}

/// An exclusive recording window. `start` blocks until any other session
/// finishes, clears residual records, and turns span sites on; `finish`
/// turns them off and drains every thread's buffer into a [`Trace`].
#[must_use = "finish() returns the recorded trace"]
pub struct TraceSession {
    finished: bool,
}

impl TraceSession {
    /// Begins recording, waiting for any concurrent session to finish
    /// first (sessions are process-exclusive).
    pub fn start() -> Self {
        let mut in_session = SESSION_GATE.lock().unwrap();
        while *in_session {
            in_session = SESSION_FREED.wait(in_session).unwrap();
        }
        *in_session = true;
        drop(in_session);
        epoch();
        // Clear records left by spans that closed after the previous
        // session's drain.
        for buffer in registry().lock().unwrap().iter() {
            buffer.records.lock().unwrap().clear();
            buffer.dropped.store(0, Ordering::Relaxed);
        }
        ACTIVE.store(true, Ordering::SeqCst);
        TraceSession { finished: false }
    }

    /// Stops recording and returns everything captured, sorted by start
    /// time. Spans still open on other threads are not included (they
    /// record on close and are cleared by the next session).
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        ACTIVE.store(false, Ordering::SeqCst);
        let mut records = Vec::new();
        let mut dropped = 0u64;
        for buffer in registry().lock().unwrap().iter() {
            records.append(&mut buffer.records.lock().unwrap());
            dropped += buffer.dropped.swap(0, Ordering::Relaxed);
        }
        records.sort_by_key(|r| (r.start_ns, r.id));
        self.release();
        Trace { records, dropped }
    }

    fn release(&self) {
        *SESSION_GATE.lock().unwrap() = false;
        SESSION_FREED.notify_one();
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.store(false, Ordering::SeqCst);
            self.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The collector is process-global, so concurrently-running tests
    /// would see each other's spans; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn records_nested_spans_with_parent_links() {
        let _x = exclusive();
        let session = TraceSession::start();
        {
            let _outer = span("pipeline.qkt");
            let _inner = span("pipeline.quantize_map");
        }
        let trace = session.finish();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.dropped, 0);
        let outer = trace
            .records
            .iter()
            .find(|r| r.stage == "pipeline.qkt")
            .unwrap();
        let inner = trace
            .records
            .iter()
            .find(|r| r.stage == "pipeline.quantize_map")
            .unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(outer.ctx, NO_CTX);
    }

    #[test]
    fn ctx_scopes_nest_and_restore() {
        let _x = exclusive();
        let session = TraceSession::start();
        {
            let _a = ctx(3);
            assert_eq!(current_ctx(), 3);
            {
                let _b = ctx(4);
                assert_eq!(current_ctx(), 4);
                let _s = span("serve.service");
            }
            assert_eq!(current_ctx(), 3);
        }
        assert_eq!(current_ctx(), NO_CTX);
        let trace = session.finish();
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].ctx, 4);
    }

    #[test]
    fn spans_outside_sessions_record_nothing() {
        let _x = exclusive();
        {
            let _orphan = span("pool.execute");
            assert!(!is_active());
        }
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(trace.records.is_empty());
    }

    #[test]
    fn record_range_is_a_root_span_with_ctx() {
        let _x = exclusive();
        let session = TraceSession::start();
        let start = Instant::now();
        std::thread::sleep(Duration::from_micros(200));
        record_range("serve.queue_wait", start, Instant::now(), 9);
        let trace = session.finish();
        assert_eq!(trace.records.len(), 1);
        let r = &trace.records[0];
        assert_eq!(r.stage, "serve.queue_wait");
        assert_eq!(r.parent, 0);
        assert_eq!(r.ctx, 9);
        assert!(r.duration_ns() >= 200_000, "got {}", r.duration_ns());
    }

    #[test]
    fn collects_across_threads_and_sorts_by_start() {
        let _x = exclusive();
        let session = TraceSession::start();
        let here = span("serve.admit");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _c = ctx(i);
                    let _s = span("pool.execute");
                    std::thread::sleep(Duration::from_micros(50));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(here);
        let trace = session.finish();
        assert_eq!(trace.records.len(), 5);
        let threads: std::collections::HashSet<u64> =
            trace.records.iter().map(|r| r.thread).collect();
        assert!(threads.len() >= 2, "expected multiple recording threads");
        assert!(trace
            .records
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
        let mut ctxs: Vec<u64> = trace
            .records
            .iter()
            .filter(|r| r.stage == "pool.execute")
            .map(|r| r.ctx)
            .collect();
        ctxs.sort_unstable();
        assert_eq!(ctxs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn span_detailed_records_annotation() {
        let _x = exclusive();
        let session = TraceSession::start();
        {
            let _annotated = span_detailed("attnv.mac", "avx2");
            let _plain = span("attnv.mac");
        }
        let trace = session.finish();
        let mut details: Vec<&str> = trace.records.iter().map(|r| r.detail).collect();
        details.sort_unstable();
        assert_eq!(details, vec![NO_DETAIL, "avx2"]);
    }

    #[test]
    fn outcome_marking_is_recorded() {
        let _x = exclusive();
        let session = TraceSession::start();
        {
            let ok = span("serve.service");
            drop(ok);
            let failed = span("serve.service");
            failed.set_outcome(SpanOutcome::Failed);
            drop(failed);
            let degraded = span("serve.fallback");
            degraded.set_outcome(SpanOutcome::Degraded);
        }
        let trace = session.finish();
        let outcomes: Vec<SpanOutcome> = trace.records.iter().map(|r| r.outcome).collect();
        assert_eq!(
            outcomes,
            vec![SpanOutcome::Ok, SpanOutcome::Failed, SpanOutcome::Degraded]
        );
    }

    #[test]
    fn sessions_are_serialized_and_cleared() {
        let _x = exclusive();
        let first = TraceSession::start();
        {
            let _s = span("serve.service");
        }
        let trace = first.finish();
        assert_eq!(trace.records.len(), 1);
        // A new session must not see the previous session's records.
        let second = TraceSession::start();
        let trace = second.finish();
        assert!(trace.records.is_empty());
    }
}
