//! The compiled-out recorder, used when the `enabled` feature is off:
//! the same API surface as the real collector with every call an inlined
//! no-op, so instrumentation sites cost nothing.

use crate::record::{SpanOutcome, NO_CTX};
use crate::Trace;
use std::time::Instant;

/// Always `false` in a compiled-out build; lets callers skip side work
/// (like capturing enqueue timestamps) at zero cost.
#[inline(always)]
pub fn is_active() -> bool {
    false
}

/// Always [`NO_CTX`] in a compiled-out build.
#[inline(always)]
pub fn current_ctx() -> u64 {
    NO_CTX
}

/// No-op context scope; see the `enabled`-feature docs for semantics.
#[inline(always)]
pub fn ctx(_value: u64) -> CtxGuard {
    CtxGuard { _priv: () }
}

/// Inert stand-in for the real context guard.
#[must_use = "the context is reset when the guard drops"]
pub struct CtxGuard {
    _priv: (),
}

/// No-op span; see the `enabled`-feature docs for semantics.
#[inline(always)]
pub fn span(_stage: &'static str) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// No-op annotated span; see the `enabled`-feature docs for semantics.
#[inline(always)]
pub fn span_detailed(_stage: &'static str, _detail: &'static str) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// Inert stand-in for the real span guard.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    _priv: (),
}

impl SpanGuard {
    /// No-op outcome marking; see the `enabled`-feature docs.
    #[inline(always)]
    pub fn set_outcome(&self, _outcome: SpanOutcome) {}
}

/// No-op externally-timed interval; see the `enabled`-feature docs.
#[inline(always)]
pub fn record_range(_stage: &'static str, _start: Instant, _end: Instant, _ctx: u64) {}

/// Inert session: `start` records nothing and `finish` returns an empty
/// [`Trace`].
#[must_use = "finish() returns the recorded trace"]
pub struct TraceSession {
    _priv: (),
}

impl TraceSession {
    /// Returns an inert session (recording is compiled out).
    #[inline(always)]
    pub fn start() -> Self {
        TraceSession { _priv: () }
    }

    /// Returns an empty [`Trace`].
    #[inline(always)]
    pub fn finish(self) -> Trace {
        Trace::default()
    }
}
