//! Criterion bench + ablation: quantization block-edge sweep (DESIGN.md
//! ablation #5) — quality vs block size, and quantization throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::pipeline::attention_map;
use paro::prelude::*;
use paro::quant::fake_quant_2d;

fn bench_block_size(c: &mut Criterion) {
    let grid = TokenGrid::new(6, 6, 6);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 13);
    let inputs =
        AttentionInputs::new(head.q.clone(), head.k.clone(), head.v.clone(), grid).unwrap();
    let reference = reference_attention(&head.q, &head.k, &head.v).unwrap();

    // Ablation: output error at INT4 across block edges.
    for edge in [3usize, 6, 12, 24, 54] {
        let run = run_attention(
            &inputs,
            &AttentionMethod::ParoInt {
                bits: Bitwidth::B4,
                block_edge: edge,
            },
        )
        .unwrap();
        let err = metrics::relative_l2(&reference, &run.output).unwrap();
        eprintln!("[block-size ablation] edge {edge:>3}: PARO INT4 rel-L2 err {err:.4}");
    }

    let map = attention_map(&head.q, &head.k).unwrap();
    let mut group = c.benchmark_group("block_quantization");
    for edge in [6usize, 12, 24] {
        let grid_q = BlockGrid::square(edge).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(edge), &grid_q, |b, g| {
            b.iter(|| fake_quant_2d(&map, Grouping::Block(*g), Bitwidth::B4).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_block_size
}
criterion_main!(benches);
