//! Criterion bench: simulator throughput for each machine model on the
//! Fig. 6(a) workloads (how fast the cycle simulator itself runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::prelude::*;

fn bench_machines(c: &mut Criterion) {
    let profile = AttentionProfile::paper_mp();
    let mut group = c.benchmark_group("end_to_end_simulation");
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let machines: Vec<(String, Box<dyn Machine>)> = vec![
            ("sanger".into(), Box::new(SangerMachine::default_budget())),
            ("vitcod".into(), Box::new(VitcodMachine::default_budget())),
            (
                "paro".into(),
                Box::new(ParoMachine::new(
                    HardwareConfig::paro_asic(),
                    ParoOptimizations::all(),
                )),
            ),
            ("a100".into(), Box::new(GpuMachine::a100())),
        ];
        for (name, machine) in machines {
            group.bench_with_input(BenchmarkId::new(name, &cfg.name), &cfg, |b, cfg| {
                b.iter(|| machine.run_model(cfg, &profile))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_machines
}
criterion_main!(benches);
