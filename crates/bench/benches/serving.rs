//! Criterion bench: serving-engine throughput vs worker-thread count.
//!
//! Drives the `paro-serve` engine with a synthetic CogVideoX-style batch
//! and sweeps the worker count, reporting batch wall-clock per thread
//! configuration. The scaling headline (ISSUE: >=2x at 4 workers over 1)
//! is a property of the host: on a multi-core machine calibration and
//! attention for distinct (block, head) keys run truly in parallel, while
//! on a single-core container (like some CI runners) all worker counts
//! share one hardware thread and the sweep collapses to ~1x. The
//! ablation header prints measured scaling so the host's capability is
//! visible in the bench output either way; output bit-identity across
//! worker counts is asserted by `crates/serve/tests/concurrency.rs`
//! regardless of core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::prelude::*;
use paro::serve::workload::{scaled_config, synthetic_requests, SyntheticSource, WorkloadSpec};
use paro::serve::{Engine, ServeConfig, ServeRequest};
use std::sync::Arc;
use std::time::Instant;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
const REQUESTS: usize = 48;

fn workload(model: &ModelConfig) -> Vec<ServeRequest> {
    let spec = WorkloadSpec {
        model: model.clone(),
        requests: REQUESTS,
        blocks: 2,
        heads: 3,
        seed: 0xbe7c,
    };
    synthetic_requests(&spec)
}

fn engine(model: &ModelConfig, workers: usize) -> Engine {
    let source = Arc::new(SyntheticSource::new(model.clone(), 2, 0xca11b));
    let cfg = ServeConfig {
        workers,
        queue_capacity: 64,
        block_edge: 4,
        ..ServeConfig::default()
    };
    Engine::new(cfg, model.clone(), source).expect("engine config is valid")
}

fn bench_serving(c: &mut Criterion) {
    // Small grid so calibration (the cold path) stays in bench budget.
    let model = scaled_config(&ModelConfig::cogvideox_2b(), 2, 4, 4);
    let requests = workload(&model);

    // Ablation: one warm batch per thread count, printed up front so the
    // host's parallel capability is visible without reading Criterion
    // estimates. Expect ~linear scaling up to the core count.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut base_rps = 0.0;
    for threads in THREAD_SWEEP {
        let eng = engine(&model, threads);
        eng.run_batch(requests.clone()); // warm the plan cache
        let t0 = Instant::now();
        let outcome = eng.run_batch(requests.clone());
        let wall = t0.elapsed().as_secs_f64();
        let rps = outcome.completed() as f64 / wall;
        if threads == 1 {
            base_rps = rps;
        }
        eprintln!(
            "[serving ablation] {threads} worker(s) on {cores} core(s): \
             {rps:.0} req/s ({:.2}x vs 1 worker)",
            rps / base_rps
        );
    }

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for threads in THREAD_SWEEP {
        let eng = engine(&model, threads);
        eng.run_batch(requests.clone()); // warm the plan cache
        group.bench_with_input(BenchmarkId::new("throughput", threads), &threads, |b, _| {
            b.iter(|| eng.run_batch(requests.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
