//! Criterion bench + ablation: exact DP vs greedy bit allocation
//! (DESIGN.md ablation #2). Prints the cost-optimality gap once, then
//! benchmarks both solvers across block counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::allocate::allocate_lagrangian;
use paro::prelude::*;
use paro::tensor::Tensor;

fn table_for(blocks_per_side: usize) -> SensitivityTable {
    let edge = 4;
    let n = blocks_per_side * edge;
    let map = Tensor::from_fn(&[n, n], |i| {
        if i[0] / edge == i[1] / edge {
            0.5 + 0.4 * (((i[0] * 13 + i[1] * 7) % 11) as f32 / 11.0)
        } else {
            0.002 * (((i[0] + i[1] * 3) % 7) as f32)
        }
    });
    SensitivityTable::compute(&map, BlockGrid::square(edge).unwrap(), 0.5).unwrap()
}

fn bench_allocation(c: &mut Criterion) {
    // One-time optimality report.
    let t = table_for(16);
    let dp = allocate_dp(&t, 4.8).unwrap();
    let greedy = allocate_greedy(&t, 4.8).unwrap();
    let lagrangian = allocate_lagrangian(&t, 4.8).unwrap();
    eprintln!(
        "[allocation ablation] {} blocks @ 4.8b: dp cost {:.4}, greedy {:.4} \
         (gap {:.2}%), lagrangian {:.4} (gap {:.2}%)",
        t.len(),
        dp.total_cost,
        greedy.total_cost,
        (greedy.total_cost / dp.total_cost.max(1e-9) - 1.0) * 100.0,
        lagrangian.total_cost,
        (lagrangian.total_cost / dp.total_cost.max(1e-9) - 1.0) * 100.0,
    );

    let mut group = c.benchmark_group("allocation");
    for side in [4usize, 8, 16] {
        let table = table_for(side);
        group.bench_with_input(BenchmarkId::new("dp", table.len()), &table, |b, t| {
            b.iter(|| allocate_dp(t, 4.8).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", table.len()), &table, |b, t| {
            b.iter(|| allocate_greedy(t, 4.8).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("lagrangian", table.len()),
            &table,
            |b, t| b.iter(|| allocate_lagrangian(t, 4.8).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allocation
}
criterion_main!(benches);
