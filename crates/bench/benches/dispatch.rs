//! Criterion bench + ablation: dispatcher policies (DESIGN.md ablation
//! #4) — load-balancing LPT vs static round-robin on mixed-precision
//! block populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::prelude::*;
use paro::quant::Bitwidth;
use paro::sim::dispatch::{block_costs, dispatch, DispatchPolicy};

fn population(profile: &AttentionProfile, blocks: usize) -> Vec<f64> {
    let mut bits = Vec::with_capacity(blocks);
    for b in Bitwidth::ALL {
        let count = (profile.share(b) * blocks as f64).round() as usize;
        bits.extend(std::iter::repeat_n(b, count));
    }
    bits.truncate(blocks);
    while bits.len() < blocks {
        bits.push(Bitwidth::B8);
    }
    block_costs(64.0, &bits)
}

fn bench_dispatch(c: &mut Criterion) {
    // Ablation: utilization of the two policies on the paper profile.
    let costs = population(&AttentionProfile::paper_mp(), 1024);
    for policy in [DispatchPolicy::GreedyLpt, DispatchPolicy::RoundRobin] {
        let out = dispatch(&costs, 32, policy);
        eprintln!(
            "[dispatch ablation] {policy:?}: makespan {:.0} cycles, utilization {:.1}%, \
             {} blocks bypassed",
            out.makespan,
            out.utilization * 100.0,
            out.bypassed
        );
    }

    let mut group = c.benchmark_group("dispatch");
    for blocks in [256usize, 1024, 4096] {
        let costs = population(&AttentionProfile::paper_mp(), blocks);
        group.bench_with_input(BenchmarkId::new("lpt", blocks), &costs, |b, costs| {
            b.iter(|| dispatch(costs, 32, DispatchPolicy::GreedyLpt))
        });
        group.bench_with_input(
            BenchmarkId::new("round_robin", blocks),
            &costs,
            |b, costs| b.iter(|| dispatch(costs, 32, DispatchPolicy::RoundRobin)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dispatch
}
criterion_main!(benches);
