//! Criterion bench: synthetic-DiT forward passes and DDIM steps under
//! different quantization configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::diffusion::DdimSampler;
use paro::core::exec::{forward, ForwardOptions};
use paro::model::dit::SyntheticDit;
use paro::prelude::*;
use paro::tensor::rng::seeded;
use rand::distributions::Uniform;

fn bench_dit(c: &mut Criterion) {
    let cfg = ModelConfig::tiny(4, 4, 4);
    let dit = SyntheticDit::build(&cfg, 1);
    let content = Tensor::random(
        &[cfg.grid.len(), cfg.hidden],
        &Uniform::new(-0.5f32, 0.5),
        &mut seeded(2),
    );

    let mut group = c.benchmark_group("dit");
    for (name, opts) in [
        ("fp32", ForwardOptions::reference()),
        (
            "naive_int4",
            ForwardOptions {
                method: AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
        ("paro_mp", ForwardOptions::paro(4.8, 4)),
    ] {
        group.bench_with_input(BenchmarkId::new("forward", name), &opts, |b, opts| {
            b.iter(|| forward(&dit, &content, opts).unwrap())
        });
    }

    let sampler = DdimSampler::new(2);
    group.bench_function("ddim_2steps_reference", |b| {
        b.iter(|| {
            sampler
                .sample(&dit, &ForwardOptions::reference(), 3)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dit
}
criterion_main!(benches);
