//! Criterion bench: packed-integer execution path vs the fake-quant f32
//! reference.
//!
//! Two levels are measured. At the kernel level, `packed_attn_v` (tile-wise
//! unpack of 2/4/8-bit codes into i32 micro-kernels, 0-bit blocks bypassed)
//! is raced against the float path on the same codes (dequantize the map,
//! then block-sparse `map x V`). At the pipeline level,
//! `run_attention_calibrated_int` is raced against
//! `run_attention_calibrated_reference` on a calibrated head, which is what
//! frozen-calibration serving executes per request.
//!
//! The vendored criterion shim has no `Throughput` support, so packed-byte
//! traffic per head and the MAC bypass fraction are printed as an ablation
//! header before the timing groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::calibration::{calibrate_head, HeadCalibration};
use paro::core::int_pipeline::run_attention_calibrated_int;
use paro::core::pipeline::{attention_map, run_attention_calibrated_reference, AttentionInputs};
use paro::core::sparse::sparse_attn_v;
use paro::prelude::*;
use paro::quant::{packed_attn_v, MixedPrecisionMap, PerColCodes};
use paro::tensor::rng::seeded;
use rand::distributions::Uniform;

/// Builds a calibrated head on a small-but-nontrivial token grid.
fn calibrated_head(seed: u64) -> (AttentionInputs, HeadCalibration) {
    let cfg = ModelConfig::tiny(4, 6, 6);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&cfg.grid, cfg.head_dim(), &spec, seed);
    let inputs = AttentionInputs::new(head.q, head.k, head.v, cfg.grid).unwrap();
    let maps: Vec<_> = (0..2)
        .map(|s| {
            let other = synthesize_head(&cfg.grid, cfg.head_dim(), &spec, 700 + s);
            attention_map(&other.q, &other.k).unwrap()
        })
        .collect();
    let cal = calibrate_head(
        &maps,
        &cfg.grid,
        BlockGrid::square(8).unwrap(),
        Bitwidth::B4,
        4.0,
        0.5,
    )
    .unwrap();
    (inputs, cal)
}

/// Uniform-bitwidth kernel inputs: an `n x n` map packed at `bits` and an
/// `n x d` value matrix packed per-column at 8 bits.
fn kernel_inputs(
    n: usize,
    d: usize,
    edge: usize,
    bits: Bitwidth,
    b0_every: usize,
) -> (
    MixedPrecisionMap,
    PerColCodes,
    Tensor,
    Vec<Bitwidth>,
    BlockGrid,
) {
    let dist = Uniform::new(0.0f32, 1.0);
    let map = Tensor::random(&[n, n], &dist, &mut seeded(11));
    let v = Tensor::random(&[n, d], &Uniform::new(-1.0f32, 1.0), &mut seeded(12));
    let grid = BlockGrid::square(edge).unwrap();
    let alloc: Vec<Bitwidth> = (0..grid.block_count(n, n))
        .map(|i| {
            if b0_every > 0 && i % b0_every == 0 {
                Bitwidth::B0
            } else {
                bits
            }
        })
        .collect();
    let packed = MixedPrecisionMap::quantize(&map, grid, &alloc).unwrap();
    let vq = PerColCodes::quantize(&v, Bitwidth::B8).unwrap();
    (packed, vq, map, alloc, grid)
}

fn bench_int_path(c: &mut Criterion) {
    let (inputs, cal) = calibrated_head(42);

    // Ablation header: packed-byte traffic and MAC bypass per head, the
    // figures the serve-bench JSON baseline also carries.
    let stats = run_attention_calibrated_int(&inputs, &cal, false)
        .unwrap()
        .stats;
    println!(
        "# int-path per-head traffic (n={} tokens)",
        inputs.q().shape()[0]
    );
    println!("#   packed map bytes   : {}", stats.packed_map_bytes);
    println!("#   packed V bytes     : {}", stats.v_payload_bytes);
    println!("#   executed AttnV MACs: {}", stats.executed_macs);
    println!("#   dense AttnV MACs   : {}", stats.dense_macs);
    println!(
        "#   MAC bypass         : {:.1}% ({} blocks skipped)",
        100.0 * stats.skipped_fraction(),
        stats.skipped_blocks
    );

    let mut group = c.benchmark_group("int_path/pipeline");
    group.sample_size(10);
    group.bench_function("packed_int", |b| {
        b.iter(|| run_attention_calibrated_int(&inputs, &cal, false).unwrap())
    });
    group.bench_function("fake_quant_f32", |b| {
        b.iter(|| run_attention_calibrated_reference(&inputs, &cal, false).unwrap())
    });
    group.finish();

    // Kernel level: same codes, integer vs float execution, per bitwidth.
    let (n, d, edge) = (192usize, 32usize, 16usize);
    let mut group = c.benchmark_group("int_path/attn_v");
    group.sample_size(10);
    for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
        let (packed, vq, _, alloc, grid) = kernel_inputs(n, d, edge, bits, 4);
        let fq = packed.dequantize().unwrap();
        let vfq = vq.dequantize();
        let traffic = packed_attn_v(&packed, &vq).unwrap().packed_map_bytes;
        println!("# attn_v n={n} d={d} {bits:?}: packed map traffic {traffic} bytes");
        group.bench_with_input(
            BenchmarkId::new("packed_int", format!("{bits:?}")),
            &bits,
            |b, _| b.iter(|| packed_attn_v(&packed, &vq).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("fake_quant_f32", format!("{bits:?}")),
            &bits,
            |b, _| b.iter(|| sparse_attn_v(&fq, grid, &alloc, &vfq).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_int_path
}
criterion_main!(benches);
