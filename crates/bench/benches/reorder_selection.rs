//! Criterion bench + ablation: offline reorder-plan selection cost and
//! calibration-bitwidth sensitivity (DESIGN.md ablation #1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::pipeline::attention_map;
use paro::core::reorder::{select_plan, select_plan_weighted};
use paro::prelude::*;

fn bench_selection(c: &mut Criterion) {
    // Ablation: does the calibration bitwidth change the selected plan?
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 3);
    let map = attention_map(&head.q, &head.k).unwrap();
    let block = BlockGrid::square(4).unwrap();
    for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
        let sel = select_plan(&map, &grid, block, bits).unwrap();
        eprintln!(
            "[plan-selection ablation] calib {}: selected '{}' (err {:.5})",
            bits, sel.order, sel.error
        );
    }
    // Ablation: plain quantization-error objective vs importance-weighted.
    let plain = select_plan(&map, &grid, block, Bitwidth::B4).unwrap();
    let weighted = select_plan_weighted(&map, &grid, block, Bitwidth::B4).unwrap();
    eprintln!(
        "[objective ablation] plain -> '{}' (err {:.5}); weighted -> '{}' (err {:.5})",
        plain.order, plain.error, weighted.order, weighted.error
    );

    let mut group = c.benchmark_group("reorder_selection");
    for edge in [3usize, 4, 5] {
        let grid = TokenGrid::new(edge, edge, edge);
        let spec = PatternSpec::new(PatternKind::SpatialCol);
        let head = synthesize_head(&grid, 32, &spec, 9);
        let map = attention_map(&head.q, &head.k).unwrap();
        let block = BlockGrid::square(edge).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(grid.len()),
            &(map, grid, block),
            |b, (map, grid, block)| {
                b.iter(|| select_plan(map, grid, *block, Bitwidth::B4).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection
}
criterion_main!(benches);
