//! Criterion bench: runtime of each Table I quantization method on one
//! attention head (the software cost of the quality experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::prelude::*;

fn bench_methods(c: &mut Criterion) {
    let grid = TokenGrid::new(4, 4, 4);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 7);
    let inputs =
        AttentionInputs::new(head.q.clone(), head.k.clone(), head.v.clone(), grid).unwrap();

    let mut group = c.benchmark_group("attention_quality");
    for method in AttentionMethod::table1_roster() {
        // Adapt block edges to the bench grid.
        let method = match method {
            AttentionMethod::BlockwiseInt { bits, .. } => AttentionMethod::BlockwiseInt {
                bits,
                block_edge: 4,
            },
            AttentionMethod::ParoInt { bits, .. } => AttentionMethod::ParoInt {
                bits,
                block_edge: 4,
            },
            AttentionMethod::ParoMixed {
                budget,
                alpha,
                output_aware,
                ..
            } => AttentionMethod::ParoMixed {
                budget,
                block_edge: 4,
                alpha,
                output_aware,
            },
            other => other,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, m| b.iter(|| run_attention(&inputs, m).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_methods
}
criterion_main!(benches);
