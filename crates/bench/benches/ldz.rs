//! Criterion bench + ablation: LDZ truncation throughput and the
//! accuracy/speed trade-off of guard bits (DESIGN.md ablation #3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::core::ldz;

fn bench_ldz(c: &mut Criterion) {
    // Ablation: truncation error at the output bitwidth vs +1 guard bit.
    let values: Vec<i8> = (-128i16..=127).map(|x| x as i8).collect();
    for keep in [2u32, 4] {
        for guard in [0u32, 1] {
            let k = keep + guard;
            let mean_err: f64 = values
                .iter()
                .map(|&v| (v as i32 - ldz::truncate(v, k) as i32).abs() as f64)
                .sum::<f64>()
                / values.len() as f64;
            eprintln!(
                "[ldz ablation] keep {keep}+{guard} guard bits: mean |err| {mean_err:.3} \
                 (speedup factor {:.1}x of the 8-bit path)",
                8.0 / k as f64
            );
        }
    }

    let data: Vec<i8> = (0..4096)
        .map(|i| ((i * 37 + 11) % 255) as u8 as i8)
        .collect();
    let mut group = c.benchmark_group("ldz_truncate");
    for keep in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(keep), &keep, |b, &k| {
            b.iter(|| ldz::truncate_slice(&data, k))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ldz
}
criterion_main!(benches);
