//! Criterion bench: raw substrate kernels — matmul, softmax, row gather,
//! bit packing and integer GEMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paro::quant::{quantized_gemm_i32, Bitwidth, PackedCodes, QuantizedGemmOperand};
use paro::tensor::rng::seeded;
use paro::tensor::Tensor;
use rand::distributions::Uniform;

fn bench_kernels(c: &mut Criterion) {
    let dist = Uniform::new(-1.0f32, 1.0);
    let mut group = c.benchmark_group("kernels");

    for n in [64usize, 256] {
        let a = Tensor::random(&[n, n], &dist, &mut seeded(1));
        let b = Tensor::random(&[n, n], &dist, &mut seeded(2));
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("softmax", n), &n, |bench, _| {
            bench.iter(|| a.softmax_rows().unwrap())
        });
        let perm: Vec<usize> = (0..n).rev().collect();
        group.bench_with_input(BenchmarkId::new("gather_rows", n), &n, |bench, _| {
            bench.iter(|| a.gather_rows(&perm).unwrap())
        });
        let qa = QuantizedGemmOperand::quantize(&a, Bitwidth::B8).unwrap();
        let qb = QuantizedGemmOperand::quantize(&b, Bitwidth::B8).unwrap();
        group.bench_with_input(BenchmarkId::new("int8_gemm", n), &n, |bench, _| {
            bench.iter(|| quantized_gemm_i32(&qa, &qb).unwrap())
        });
    }

    let codes: Vec<u32> = (0..65536).map(|i| (i % 4) as u32).collect();
    group.bench_function("pack_2bit_64k", |b| {
        b.iter(|| PackedCodes::pack(&codes, Bitwidth::B2).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
