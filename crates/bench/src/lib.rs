//! Shared harness utilities for the PARO experiment binaries and
//! Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index); this
//! library holds the pieces they share: the synthetic head population,
//! per-method quality evaluation, and plain-text table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use paro::prelude::*;
use paro::tensor::rng::derive_seed;

/// Quality metrics of one method over a head population — one Table I row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct QualityRow {
    /// Method display name.
    pub method: String,
    /// The Table I "Bitwidth" column.
    pub bitwidth: String,
    /// FVD-proxy: mean relative-L2 output error vs FP16 (lower better).
    pub fvd_proxy: f32,
    /// CLIPSIM-proxy: mean cosine similarity (higher better).
    pub clipsim_proxy: f32,
    /// CLIP-Temp-proxy: temporal consistency ratio (higher better).
    pub clip_temp_proxy: f32,
    /// VQA-proxy: mean SNR in dB (higher better).
    pub vqa_proxy: f32,
    /// Flicker-proxy: 100 x (1 − frame-to-frame error variation), higher
    /// better.
    pub flicker_proxy: f32,
    /// Mean attention-map average bitwidth reported by the pipeline.
    pub avg_bits: f32,
    /// Standard deviation of the FVD-proxy across the population (how much
    /// head-to-head variability hides behind the mean).
    pub fvd_std: f32,
}

/// The standard evaluation population: heads covering every pattern kind
/// the paper observes, with deterministic seeds.
pub fn head_population(
    grid: &TokenGrid,
    head_dim: usize,
    per_kind: u64,
) -> Vec<(PatternKind, paro::model::patterns::HeadSynthesis)> {
    let kinds = [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::default_window(grid),
        PatternKind::Diffuse,
    ];
    let mut out = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        for s in 0..per_kind {
            let spec = PatternSpec::new(*kind);
            out.push((
                *kind,
                synthesize_head(grid, head_dim, &spec, derive_seed(0xBEEF + i as u64, s)),
            ));
        }
    }
    out
}

/// Evaluates one method over a population, producing a [`QualityRow`].
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn evaluate_method(
    method: &AttentionMethod,
    grid: &TokenGrid,
    population: &[(PatternKind, paro::model::patterns::HeadSynthesis)],
) -> Result<QualityRow, CoreError> {
    let mut fvd_samples = Vec::with_capacity(population.len());
    let mut clipsim = 0.0f32;
    let mut temp = 0.0f32;
    let mut vqa = 0.0f32;
    let mut flick = 0.0f32;
    let mut bits = 0.0f32;
    for (_, head) in population {
        let reference = reference_attention(&head.q, &head.k, &head.v)?;
        let inputs = AttentionInputs::new(head.q.clone(), head.k.clone(), head.v.clone(), *grid)?;
        let run = run_attention(&inputs, method)?;
        fvd_samples.push(paro::tensor::metrics::relative_l2(&reference, &run.output)?);
        clipsim += paro::tensor::metrics::cosine_similarity(&reference, &run.output)?;
        // View the output as frames x features for temporal metrics.
        let frames = grid.frames();
        let feat = run.output.len() / frames;
        let ref_frames = reference.reshape(&[frames, feat])?;
        let out_frames = run.output.reshape(&[frames, feat])?;
        temp += paro::tensor::metrics::temporal_consistency(&ref_frames, &out_frames)?;
        vqa += paro::tensor::metrics::snr_db(&reference, &run.output)?;
        flick += flicker_score(&ref_frames, &out_frames)?;
        bits += run.avg_bits;
    }
    let n = population.len() as f32;
    let fvd_mean = fvd_samples.iter().sum::<f32>() / n;
    let fvd_std = (fvd_samples
        .iter()
        .map(|v| (v - fvd_mean) * (v - fvd_mean))
        .sum::<f32>()
        / n)
        .sqrt();
    Ok(QualityRow {
        method: method.name(),
        bitwidth: method.bitwidth_label(),
        fvd_proxy: fvd_mean,
        fvd_std,
        clipsim_proxy: clipsim / n,
        clip_temp_proxy: temp / n,
        vqa_proxy: vqa / n,
        flicker_proxy: flick / n,
        avg_bits: bits / n,
    })
}

/// Flicker proxy: 100 x (1 − std of per-frame error), so frame-uniform
/// corruption (which does not flicker) scores near 100 while frame-varying
/// corruption is penalized — matching the paper's temporal-flickering
/// metric direction.
///
/// # Errors
///
/// Propagates tensor shape errors.
pub fn flicker_score(
    ref_frames: &Tensor,
    out_frames: &Tensor,
) -> Result<f32, paro::tensor::TensorError> {
    let frames = ref_frames.shape()[0];
    let feat = ref_frames.shape()[1];
    let mut errs = Vec::with_capacity(frames);
    for f in 0..frames {
        let r = ref_frames.block(f, 0, 1, feat)?;
        let o = out_frames.block(f, 0, 1, feat)?;
        errs.push(paro::tensor::metrics::relative_l2(&r, &o)?);
    }
    let mean = errs.iter().sum::<f32>() / frames as f32;
    let var = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f32>() / frames as f32;
    Ok((100.0 * (1.0 - var.sqrt())).clamp(0.0, 100.0))
}

/// Prints a plain-text table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes a serializable value as pretty JSON under `target/experiments/`.
///
/// # Errors
///
/// Returns I/O errors from directory creation or writing.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    println!("\n[saved {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_diverse() {
        let grid = TokenGrid::new(4, 4, 4);
        let a = head_population(&grid, 16, 2);
        let b = head_population(&grid, 16, 2);
        assert_eq!(a.len(), 10);
        for ((ka, ha), (kb, hb)) in a.iter().zip(&b) {
            assert_eq!(ka.name(), kb.name());
            assert_eq!(ha.q, hb.q);
        }
    }

    #[test]
    fn evaluate_fp16_is_perfect() {
        let grid = TokenGrid::new(4, 4, 4);
        let pop = head_population(&grid, 16, 1);
        let row = evaluate_method(&AttentionMethod::Fp16, &grid, &pop).unwrap();
        assert_eq!(row.fvd_proxy, 0.0);
        assert!((row.clipsim_proxy - 1.0).abs() < 1e-5);
        assert_eq!(row.vqa_proxy, 100.0);
        assert!(row.flicker_proxy > 99.0);
    }

    #[test]
    fn evaluate_ranks_methods() {
        let grid = TokenGrid::new(4, 4, 4);
        let pop = head_population(&grid, 16, 1);
        let naive4 = evaluate_method(
            &AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
            &grid,
            &pop,
        )
        .unwrap();
        let paro4 = evaluate_method(
            &AttentionMethod::ParoInt {
                bits: Bitwidth::B4,
                block_edge: 4,
            },
            &grid,
            &pop,
        )
        .unwrap();
        assert!(paro4.fvd_proxy < naive4.fvd_proxy);
        assert!(paro4.vqa_proxy > naive4.vqa_proxy);
    }

    #[test]
    fn flicker_penalizes_frame_varying_error() {
        let frames = 6;
        let feat = 32;
        let reference = Tensor::from_fn(&[frames, feat], |i| (i[1] as f32 * 0.1).sin() + 2.0);
        let uniform = reference.map(|x| x * 1.01);
        // Error magnitude grows with the frame index -> nonzero per-frame
        // error variation -> flicker.
        let varying = Tensor::from_fn(&[frames, feat], |i| {
            let v = (i[1] as f32 * 0.1).sin() + 2.0;
            v * (1.0 + 0.02 * i[0] as f32)
        });
        let s_uniform = flicker_score(&reference, &uniform).unwrap();
        let s_varying = flicker_score(&reference, &varying).unwrap();
        assert!(s_uniform > s_varying);
    }
}
