//! Fig. 8 — attention maps before and after reorder.
//!
//! ```text
//! cargo run --release -p paro-bench --bin fig8
//! ```
//!
//! Prints ASCII heatmaps (and writes PGMs) of heads aggregating along
//! different dimensions, showing the unification into a block-diagonal
//! pattern; quantifies the effect through the diagonal-band mass.

use paro::core::analysis::diagonal_band_mass;
use paro::core::pipeline::attention_map;
use paro::core::reorder::{reorder_map, select_plan, ReorderPlan};
use paro::prelude::*;
use paro::tensor::render;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let out_dir = std::path::Path::new("target/experiments/fig8");
    fs::create_dir_all(out_dir)?;
    println!("Fig. 8 reproduction: attention patterns before/after reorder\n");

    // The paper's figure shows a "frame"-aggregating head and a
    // "height"-aggregating head; include the full pattern set.
    for (label, kind) in [
        ("frame aggregation", PatternKind::Temporal),
        ("height aggregation", PatternKind::SpatialCol),
        ("width aggregation", PatternKind::SpatialRow),
        ("local window", PatternKind::default_window(&grid)),
    ] {
        let spec = PatternSpec::new(kind);
        let head = synthesize_head(&grid, 32, &spec, 17);
        let map = attention_map(&head.q, &head.k)?;
        let sel = select_plan(&map, &grid, BlockGrid::square(6)?, Bitwidth::B4)?;
        let plan = ReorderPlan::new(&grid, sel.order);
        let reordered = reorder_map(&map, &plan)?;
        let band = grid.len() / 18;
        let before_mass = diagonal_band_mass(&map, band)?;
        let after_mass = diagonal_band_mass(&reordered, band)?;
        println!(
            "== {label} ({kind}) -> reorder plan '{}' | diagonal-band mass {:.2} -> {:.2} ==",
            sel.order, before_mass, after_mass
        );
        let before = render::ascii_heatmap(&map, 36)?;
        let after = render::ascii_heatmap(&reordered, 36)?;
        println!("{:<40} after reorder:", "before reorder:");
        for (l, r) in before.lines().zip(after.lines()) {
            println!("{l:<40} {r}");
        }
        println!();
        fs::write(
            out_dir.join(format!("{}_before.pgm", kind.name())),
            render::pgm_bytes(&map, 216)?,
        )?;
        fs::write(
            out_dir.join(format!("{}_after.pgm", kind.name())),
            render::pgm_bytes(&reordered, 216)?,
        )?;
    }
    println!("PGM images written to {}", out_dir.display());
    Ok(())
}
