//! Fig. 1 / Sec. III-A analysis: why row-wise quantization fails on
//! patterned attention maps and what the reorder buys.
//!
//! ```text
//! cargo run --release -p paro-bench --bin analysis
//! ```

use paro::core::analysis::{compare_groupings, row_outlier_stats};
use paro::core::pipeline::attention_map;
use paro::core::reorder::{select_plan, ReorderPlan};
use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let block = BlockGrid::square(6)?;
    println!("Attention-map distribution analysis (paper Fig. 1 / Sec. III-A)\n");

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kind in [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
        PatternKind::default_window(&grid),
        PatternKind::Diffuse,
    ] {
        let spec = PatternSpec::new(kind);
        let head = synthesize_head(&grid, 32, &spec, 55);
        let map = attention_map(&head.q, &head.k)?;
        let outliers = row_outlier_stats(&map)?;
        let sel = select_plan(&map, &grid, block, Bitwidth::B4)?;
        let identity = compare_groupings(&map, &ReorderPlan::identity(&grid), block)?;
        let reordered = compare_groupings(&map, &ReorderPlan::new(&grid, sel.order), block)?;
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", outliers.mean_peak_to_mean),
            format!("{:.2}", outliers.top1pct_mass),
            format!("{:.4}", identity.mean_block_range),
            format!("{:.4}", reordered.mean_block_range),
            format!("{:.1}x", reordered.range_reduction),
            sel.order.to_string(),
        ]);
        json.push((kind.name(), outliers, identity, reordered));
    }
    print_table(
        &[
            "pattern",
            "row peak/mean",
            "top-1% mass",
            "block range (canonical)",
            "block range (reordered)",
            "row/block range ratio",
            "plan",
        ],
        &rows,
    );
    println!("\nRow groups contain outliers that inflate the min-max scale (peak/mean");
    println!("far above 1); reordering shrinks within-block ranges, which is exactly");
    println!("the quantization-error reduction PARO exploits.");
    save_json("analysis", &json)?;
    Ok(())
}
