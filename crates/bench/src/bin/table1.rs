//! Table I — algorithm performance of text-to-video attention
//! quantization methods.
//!
//! Paper metrics (FVD-FP16, CLIPSIM, CLIP-Temp, VQA, Flicker) are
//! substituted by output-error proxies (see DESIGN.md §2); the claim being
//! reproduced is the *ranking*: naive INT4 collapses, block-wise recovers,
//! reorder improves further, and PARO-MP at 4.80 bits matches the
//! INT8/FP16 class.
//!
//! ```text
//! cargo run --release -p paro-bench --bin table1 [heads_per_kind]
//! ```

use paro::prelude::*;
use paro_bench::{evaluate_method, head_population, print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let per_kind: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let grid = TokenGrid::new(6, 6, 6);
    let head_dim = 32;
    println!(
        "Table I reproduction: {} tokens/head, head_dim {head_dim}, {} heads per pattern kind",
        grid.len(),
        per_kind
    );
    println!("(metrics are output-error proxies; see DESIGN.md for the substitution)\n");

    let population = head_population(&grid, head_dim, per_kind);
    let mut rows_struct = Vec::new();
    let mut rows = Vec::new();
    for method in AttentionMethod::table1_roster() {
        let method = match method {
            // Adapt block edges to the reduced grid scale.
            AttentionMethod::BlockwiseInt { bits, .. } => AttentionMethod::BlockwiseInt {
                bits,
                block_edge: 6,
            },
            AttentionMethod::ParoInt { bits, .. } => AttentionMethod::ParoInt {
                bits,
                block_edge: 6,
            },
            AttentionMethod::ParoMixed {
                budget,
                alpha,
                output_aware,
                ..
            } => AttentionMethod::ParoMixed {
                budget,
                block_edge: 6,
                alpha,
                output_aware,
            },
            other => other,
        };
        let row = evaluate_method(&method, &grid, &population)?;
        rows.push(vec![
            row.method.clone(),
            row.bitwidth.clone(),
            format!("{:.4} ±{:.4}", row.fvd_proxy, row.fvd_std),
            format!("{:.4}", row.clipsim_proxy),
            format!("{:.4}", row.clip_temp_proxy),
            format!("{:.2}", row.vqa_proxy),
            format!("{:.2}", row.flicker_proxy),
        ]);
        rows_struct.push(row);
    }
    print_table(
        &[
            "Method",
            "Bitwidth",
            "FVD-proxy (↓)",
            "CLIPSIM-proxy (↑)",
            "CLIP-Temp-proxy (↑)",
            "VQA-proxy (↑)",
            "Flicker-proxy (↑)",
        ],
        &rows,
    );

    println!("\nPaper Table I reference rows (for shape comparison):");
    println!("  FP16        FVD 0.00  | Naive INT4 FVD 1.40, VQA 16.79 (collapse)");
    println!("  Block INT4  FVD 0.40  | PARO INT4  FVD 0.28 | PARO MP FVD 0.15 @ 4.80 bits");
    save_json("table1", &rows_struct)?;
    Ok(())
}
