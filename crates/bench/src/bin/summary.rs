//! One-shot summary: runs every table/figure experiment at reduced scale
//! and writes a single markdown report to
//! `target/experiments/SUMMARY.md` — the quick way to check the whole
//! reproduction after a change.
//!
//! ```text
//! cargo run --release -p paro-bench --bin summary
//! ```

use paro::prelude::*;
use paro::sim::cost::CostModel;
use paro::sim::OpCategory;
use paro_bench::{evaluate_method, head_population};
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut md = String::new();
    writeln!(md, "# PARO reproduction — one-shot summary\n")?;

    // ---- Table I ----
    writeln!(md, "## Table I (quality proxies)\n")?;
    writeln!(
        md,
        "| method | bitwidth | FVD-proxy ↓ | CLIPSIM-proxy ↑ | VQA-proxy ↑ |"
    )?;
    writeln!(md, "|---|---|---|---|---|")?;
    let grid = TokenGrid::new(6, 6, 6);
    let population = head_population(&grid, 32, 2);
    for method in AttentionMethod::table1_roster() {
        let method = match method {
            AttentionMethod::BlockwiseInt { bits, .. } => AttentionMethod::BlockwiseInt {
                bits,
                block_edge: 6,
            },
            AttentionMethod::ParoInt { bits, .. } => AttentionMethod::ParoInt {
                bits,
                block_edge: 6,
            },
            AttentionMethod::ParoMixed {
                budget,
                alpha,
                output_aware,
                ..
            } => AttentionMethod::ParoMixed {
                budget,
                block_edge: 6,
                alpha,
                output_aware,
            },
            other => other,
        };
        let row = evaluate_method(&method, &grid, &population)?;
        writeln!(
            md,
            "| {} | {} | {:.4} | {:.4} | {:.1} |",
            row.method, row.bitwidth, row.fvd_proxy, row.clipsim_proxy, row.vqa_proxy
        )?;
    }

    // ---- Table II ----
    writeln!(md, "\n## Table II (cost model)\n")?;
    let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
    writeln!(
        md,
        "Total {:.2} mm², {:.2} W (paper: 8.17 mm², 11.20 W).",
        cm.total_area_mm2(),
        cm.total_power_w()
    )?;

    // ---- Fig 6(a) + 6(b) + overhead + energy ----
    let profile = AttentionProfile::paper_mp();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        writeln!(md, "\n## {} — performance\n", cfg.name)?;
        let machines: Vec<(&str, Box<dyn Machine>)> = vec![
            ("Sanger", Box::new(SangerMachine::default_budget())),
            ("ViTCoD", Box::new(VitcodMachine::default_budget())),
            (
                "PARO",
                Box::new(ParoMachine::new(
                    HardwareConfig::paro_asic(),
                    ParoOptimizations::all(),
                )),
            ),
            ("A100", Box::new(GpuMachine::a100())),
            (
                "PARO-align-A100",
                Box::new(ParoMachine::new(
                    HardwareConfig::paro_align_a100(),
                    ParoOptimizations::all(),
                )),
            ),
        ];
        let reports: Vec<(&str, Report)> = machines
            .iter()
            .map(|(n, m)| (*n, m.run_model(&cfg, &profile)))
            .collect();
        let sanger = reports[0].1.seconds;
        writeln!(md, "| machine | e2e (s) | vs Sanger | TOPS/W |")?;
        writeln!(md, "|---|---|---|---|")?;
        for (name, r) in &reports {
            writeln!(
                md,
                "| {name} | {:.1} | {:.2}x | {:.2} |",
                r.seconds,
                sanger / r.seconds,
                r.tops_per_watt()
            )?;
        }
        // Ablation ladder.
        let base = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::none())
            .run_model(&cfg, &profile)
            .seconds;
        write!(md, "\nFig 6(b) ladder: ")?;
        for (name, opts) in ParoOptimizations::ablation_ladder() {
            let s = ParoMachine::new(HardwareConfig::paro_asic(), opts)
                .run_model(&cfg, &profile)
                .seconds;
            write!(md, "{name} {:.2}x; ", base / s)?;
        }
        writeln!(md)?;
        // Reorder share.
        let paro = &reports[2].1;
        let reorder = paro
            .category_shares()
            .get(&OpCategory::Reorder)
            .copied()
            .unwrap_or(0.0);
        writeln!(
            md,
            "\nReorder overhead: {:.2}% of end-to-end latency.",
            reorder * 100.0
        )?;
    }

    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("SUMMARY.md");
    std::fs::write(&path, &md)?;
    println!("{md}");
    println!("[written to {}]", path.display());
    Ok(())
}
