//! Energy efficiency (paper Sec. V-B): TOPS/W of PARO vs the A100.
//!
//! Paper: PARO achieves 3.46/3.61 TOPS/W on CogVideoX-2B/5B, which is
//! 4.86/6.43x the A100.
//!
//! ```text
//! cargo run --release -p paro-bench --bin energy
//! ```

use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = AttentionProfile::paper_mp();
    println!("Energy-efficiency reproduction (effective TOPS counted on nominal ops)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (cfg, paper_tops_w, paper_ratio) in [
        (ModelConfig::cogvideox_2b(), 3.46, 4.86),
        (ModelConfig::cogvideox_5b(), 3.61, 6.43),
    ] {
        let paro = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &profile);
        let a100 = GpuMachine::a100().run_model(&cfg, &profile);
        let ratio = paro.tops_per_watt() / a100.tops_per_watt();
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.2}", paro.tops_per_watt()),
            format!("{paper_tops_w:.2}"),
            format!("{:.2}", a100.tops_per_watt()),
            format!("{ratio:.2}x"),
            format!("{paper_ratio:.2}x"),
        ]);
        json.push((
            cfg.name.clone(),
            paro.tops_per_watt(),
            a100.tops_per_watt(),
            ratio,
        ));
        println!(
            "{}: PARO avg power {:.1} W over {:.0} s; A100 avg power {:.0} W over {:.0} s",
            cfg.name,
            paro.energy_joules / paro.seconds,
            paro.seconds,
            a100.energy_joules / a100.seconds,
            a100.seconds
        );
    }
    println!();
    print_table(
        &[
            "model",
            "PARO TOPS/W",
            "paper",
            "A100 TOPS/W",
            "ratio (ours)",
            "ratio (paper)",
        ],
        &rows,
    );
    save_json("energy", &json)?;
    Ok(())
}
