//! Hardware design-space sweep around the PARO operating point
//! (extension experiment; not in the paper, motivated by its resource-
//! alignment methodology).
//!
//! ```text
//! cargo run --release -p paro-bench --bin sweep [2b|5b]
//! ```

use paro::prelude::*;
use paro::sim::sweeps::{sweep, SweepAxis};
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "5b".to_string());
    let cfg = match which.as_str() {
        "2b" => ModelConfig::cogvideox_2b(),
        _ => ModelConfig::cogvideox_5b(),
    };
    let profile = AttentionProfile::paper_mp();
    let base = HardwareConfig::paro_asic();
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    println!(
        "Design-space sweep on {} (baseline: 32x32x32 PEs, 51.2 GB/s, 2048 lanes)\n",
        cfg.name
    );
    let mut json = Vec::new();
    for axis in [
        SweepAxis::PeMacs,
        SweepAxis::DramBandwidth,
        SweepAxis::VectorLanes,
        SweepAxis::SramBytes,
    ] {
        let points = sweep(axis, &base, &factors, &cfg, &profile);
        println!("== {} ==", axis.label());
        let rows: Vec<Vec<String>> = factors
            .iter()
            .zip(&points)
            .map(|(f, p)| {
                vec![
                    format!("{f}x"),
                    format!("{:.4e}", p.value),
                    format!("{:.1}", p.seconds),
                    format!("{:.2}x", p.speedup_vs_base),
                ]
            })
            .collect();
        print_table(&["factor", "value", "e2e (s)", "speedup"], &rows);
        println!();
        json.push((axis.label(), points));
    }
    println!("Reading: PARO at its paper operating point is compute-bound, so PE");
    println!("scaling pays off until the vector unit / DRAM take over.");
    save_json("sweep", &json)?;
    Ok(())
}
