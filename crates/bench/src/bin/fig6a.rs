//! Fig. 6(a) — end-to-end speedup on CogVideoX-2B/5B, normalized to
//! Sanger.
//!
//! Paper series: PARO 10.61/12.04x vs Sanger and 6.38/7.05x vs ViTCoD;
//! the A100 sits above PARO (more resources); PARO-align-A100 is
//! 1.68/2.71x faster than the A100.
//!
//! ```text
//! cargo run --release -p paro-bench --bin fig6a
//! ```

use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = AttentionProfile::paper_mp();
    println!(
        "Fig. 6(a) reproduction: end-to-end performance normalized to Sanger\n\
         (attention profile: avg {:.2} bits, {:.0}% skipped blocks)\n",
        profile.avg_bits(),
        profile.skip_fraction() * 100.0
    );

    let mut json = Vec::new();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let machines: Vec<Box<dyn Machine>> = vec![
            Box::new(SangerMachine::default_budget()),
            Box::new(VitcodMachine::default_budget()),
            Box::new(ParoMachine::new(
                HardwareConfig::paro_asic(),
                ParoOptimizations::all(),
            )),
            Box::new(GpuMachine::a100()),
            Box::new(ParoMachine::new(
                HardwareConfig::paro_align_a100(),
                ParoOptimizations::all(),
            )),
        ];
        let reports: Vec<Report> = machines
            .iter()
            .map(|m| m.run_model(&cfg, &profile))
            .collect();
        let sanger = reports[0].seconds;
        println!("== {} ==", cfg.name);
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    format!("{:.1}", r.seconds),
                    format!("{:.2}x", sanger / r.seconds),
                ]
            })
            .collect();
        print_table(&["machine", "e2e (s)", "norm. to Sanger"], &rows);
        let paro = reports[2].seconds;
        let vitcod = reports[1].seconds;
        let a100 = reports[3].seconds;
        let align = reports[4].seconds;
        println!(
            "\n  PARO vs Sanger  {:.2}x   (paper: {})",
            sanger / paro,
            if cfg.name.contains("2B") {
                "10.61x"
            } else {
                "12.04x"
            }
        );
        println!(
            "  PARO vs ViTCoD  {:.2}x   (paper: {})",
            vitcod / paro,
            if cfg.name.contains("2B") {
                "6.38x"
            } else {
                "7.05x"
            }
        );
        println!(
            "  PARO-align-A100 vs A100  {:.2}x   (paper: {})\n",
            a100 / align,
            if cfg.name.contains("2B") {
                "1.68x"
            } else {
                "2.71x"
            }
        );
        json.push((cfg.name.clone(), reports));
    }
    save_json("fig6a", &json)?;
    Ok(())
}
