//! Reorder overhead (paper Sec. V-B): the online QKVO reorder as a share
//! of end-to-end latency.
//!
//! Paper: 1.26% (CogVideoX-2B) and 1.07% (CogVideoX-5B).
//!
//! ```text
//! cargo run --release -p paro-bench --bin overhead
//! ```

use paro::prelude::*;
use paro::sim::OpCategory;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = AttentionProfile::paper_mp();
    println!("Reorder overhead reproduction\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (cfg, paper) in [
        (ModelConfig::cogvideox_2b(), 1.26),
        (ModelConfig::cogvideox_5b(), 1.07),
    ] {
        let report = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &profile);
        let share = report
            .category_shares()
            .get(&OpCategory::Reorder)
            .copied()
            .unwrap_or(0.0)
            * 100.0;
        // The data-size argument from the paper: QKVO vs attention map.
        let n = cfg.total_tokens() as f64;
        let qkvo = 4.0 * n * cfg.hidden as f64;
        let attn_map = n * n * cfg.heads as f64;
        rows.push(vec![
            cfg.name.clone(),
            format!("{share:.2}%"),
            format!("{paper:.2}%"),
            format!("{:.2}%", qkvo / attn_map * 100.0),
        ]);
        json.push((cfg.name.clone(), share));
    }
    print_table(
        &[
            "model",
            "reorder share (ours)",
            "reorder share (paper)",
            "QKVO / attention-map size",
        ],
        &rows,
    );
    println!("\nThe overhead is negligible because the reordered data (QKVO) is a");
    println!("sub-percent fraction of the attention map the block computes against.");
    save_json("overhead", &json)?;
    Ok(())
}
