//! End-to-end diffusion error dynamics (extension of Table I): how
//! attention-quantization error accumulates across DDIM steps through the
//! synthetic DiT.
//!
//! ```text
//! cargo run --release -p paro-bench --bin diffusion [steps]
//! ```

use paro::core::diffusion::DdimSampler;
use paro::core::exec::ForwardOptions;
use paro::model::dit::SyntheticDit;
use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = ModelConfig::tiny(4, 4, 4);
    let dit = SyntheticDit::build(&cfg, 3);
    let sampler = DdimSampler::new(steps);
    println!(
        "DDIM error dynamics: {} steps, {} blocks x {} heads, {} tokens\n",
        steps,
        cfg.blocks,
        cfg.heads,
        cfg.grid.len()
    );

    let reference = sampler.sample(&dit, &ForwardOptions::reference(), 1)?;
    let configs = [
        (
            "Naive INT4",
            ForwardOptions {
                method: AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
        (
            "PARO INT4",
            ForwardOptions {
                method: AttentionMethod::ParoInt {
                    bits: Bitwidth::B4,
                    block_edge: 4,
                },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
        ("PARO MP 4.8b", ForwardOptions::paro(4.8, 4)),
        (
            "PARO INT8",
            ForwardOptions {
                method: AttentionMethod::ParoInt {
                    bits: Bitwidth::B8,
                    block_edge: 4,
                },
                linear_w8a8: true,
                linear_bits: Bitwidth::B8,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, opts) in &configs {
        let traj = sampler.sample(&dit, opts, 1)?;
        let div = traj.divergence_from(&reference)?;
        let last = *div.last().expect("non-empty");
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", div[div.len() / 2]),
            format!("{last:.4}"),
            div.iter()
                .map(|d| format!("{d:.3}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
        json.push((name.to_string(), div));
    }
    print_table(
        &[
            "method",
            "mid-trajectory div",
            "final divergence",
            "per-step divergence",
        ],
        &rows,
    );
    println!("\nPARO MP tracks the reference trajectory; naive INT4 drifts most.");
    save_json("diffusion", &json)?;
    Ok(())
}
