//! Pattern-stability experiment (paper Sec. III-A claim): reorder plans
//! selected offline remain valid across diffusion timesteps and input
//! noise, because the attention patterns are positional, not
//! content-driven.
//!
//! Runs the synthetic DiT over a DDIM trajectory, re-selects plans at
//! several timesteps and across seeds, and reports agreement.
//!
//! ```text
//! cargo run --release -p paro-bench --bin stability
//! ```

use paro::core::calibration::plan_stability;
use paro::core::diffusion::DdimSampler;
use paro::core::exec::ForwardOptions;
use paro::core::pipeline::attention_map;
use paro::model::dit::SyntheticDit;
use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig::tiny(4, 4, 4);
    let dit = SyntheticDit::build(&cfg, 7);
    let sampler = DdimSampler::new(6);
    println!(
        "Plan stability across {} DDIM timesteps and 3 noise seeds ({} blocks x {} heads)\n",
        sampler.steps(),
        cfg.blocks,
        cfg.heads
    );

    // Collect per-head attention maps at several timesteps/seeds by
    // running the reference trajectory and recomputing Q/K per block.
    let hd = cfg.head_dim();
    let block_grid = BlockGrid::square(4)?;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for b in 0..cfg.blocks {
        for h in 0..cfg.heads {
            let mut maps = Vec::new();
            for seed in 0..3u64 {
                let traj = sampler.sample(&dit, &ForwardOptions::reference(), seed)?;
                // Probe at early, middle and late latents.
                for &step in &[0usize, sampler.steps() / 2, sampler.steps()] {
                    let z = &traj.latents[step];
                    // One forward through the blocks up to `b` to get this
                    // block's inputs; cheaper: recompute projections on the
                    // normalized latent directly (patterns are positional,
                    // so the probe is representative).
                    let x = paro::core::exec::rms_norm(&z.add(dit.positional())?);
                    let weights = &dit.blocks()[b];
                    let q = x.matmul(&weights.w_q)?;
                    let k = x.matmul(&weights.w_k)?;
                    let qs = q.block(0, h * hd, cfg.grid.len(), hd)?;
                    let ks = k.block(0, h * hd, cfg.grid.len(), hd)?;
                    maps.push(attention_map(&qs, &ks)?);
                }
            }
            let report = plan_stability(&maps, &cfg.grid, block_grid, Bitwidth::B4)?;
            rows.push(vec![
                format!("block {b} head {h}"),
                dit.head_pattern(b, h).name().to_string(),
                report.consensus.to_string(),
                format!("{:.0}%", report.agreement * 100.0),
                format!("{:.0}%", report.functional_agreement * 100.0),
                format!("{:.1}%", report.mean_regret * 100.0),
            ]);
            json.push((b, h, report));
        }
    }
    print_table(
        &[
            "head",
            "planted pattern",
            "consensus plan",
            "exact agreement",
            "functional agreement",
            "frozen-plan regret",
        ],
        &rows,
    );
    let mean_func: f32 = json
        .iter()
        .map(|(_, _, r)| r.functional_agreement)
        .sum::<f32>()
        / json.len() as f32;
    let mean_regret: f32 =
        json.iter().map(|(_, _, r)| r.mean_regret).sum::<f32>() / json.len() as f32;
    println!(
        "\nMean functional agreement {:.0}%; mean frozen-plan regret {:.1}%.",
        mean_func * 100.0,
        mean_regret * 100.0
    );
    println!(
        "Low regret is the soundness criterion for offline selection: even when \
         the per-sample argmin flips between near-tied orders, freezing the \
         consensus plan costs almost no quantization error."
    );
    save_json("stability", &json)?;
    Ok(())
}
