//! Baseline-assumption sensitivity: how robust are the Fig. 6(a)
//! conclusions to the calibrated Sanger/ViTCoD dataflow parameters?
//!
//! The baseline cycle models embed assumptions (kept fraction at quality
//! parity, load-balance efficiency, staging bytes) calibrated to land near
//! the paper's reported speedups. This experiment sweeps each assumption
//! across a generous range and reports the resulting PARO speedup — the
//! honest way to present a simulator-vs-simulator comparison.
//!
//! ```text
//! cargo run --release -p paro-bench --bin baseline_sensitivity
//! ```

use paro::prelude::*;
use paro::sim::machines::{SangerConfig, VitcodConfig};
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig::cogvideox_5b();
    let profile = AttentionProfile::paper_mp();
    let paro_seconds = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
        .run_model(&cfg, &profile)
        .seconds;
    println!(
        "Baseline-assumption sensitivity on {} (PARO fixed at {:.0} s)\n",
        cfg.name, paro_seconds
    );

    // --- Sanger: kept fraction sweep ---
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kept in [0.4, 0.55, 0.70, 0.85, 1.0] {
        let sanger = SangerMachine::default_budget().with_config(SangerConfig {
            kept_fraction: kept,
            ..SangerConfig::default()
        });
        let s = sanger.run_model(&cfg, &profile).seconds;
        rows.push(vec![
            format!("{kept:.2}"),
            format!("{s:.0}"),
            format!("{:.2}x", s / paro_seconds),
        ]);
        json.push(("sanger_kept", kept, s / paro_seconds));
    }
    println!("== Sanger kept fraction (default 0.70; paper-implied speedup 12.04x) ==");
    print_table(&["kept fraction", "Sanger e2e (s)", "PARO speedup"], &rows);

    // --- Sanger: efficiency sweep ---
    let mut rows = Vec::new();
    for eff in [0.5, 0.7, 0.9] {
        let sanger = SangerMachine::default_budget().with_config(SangerConfig {
            sparse_efficiency: eff,
            ..SangerConfig::default()
        });
        let s = sanger.run_model(&cfg, &profile).seconds;
        rows.push(vec![
            format!("{eff:.2}"),
            format!("{s:.0}"),
            format!("{:.2}x", s / paro_seconds),
        ]);
        json.push(("sanger_eff", eff, s / paro_seconds));
    }
    println!("\n== Sanger load-balance efficiency (default 0.70) ==");
    print_table(&["efficiency", "Sanger e2e (s)", "PARO speedup"], &rows);

    // --- ViTCoD: kept fraction sweep ---
    let mut rows = Vec::new();
    for kept in [0.3, 0.45, 0.60, 0.75, 0.9] {
        let vitcod = VitcodMachine::default_budget().with_config(VitcodConfig {
            kept_fraction: kept,
            ..VitcodConfig::default()
        });
        let s = vitcod.run_model(&cfg, &profile).seconds;
        rows.push(vec![
            format!("{kept:.2}"),
            format!("{s:.0}"),
            format!("{:.2}x", s / paro_seconds),
        ]);
        json.push(("vitcod_kept", kept, s / paro_seconds));
    }
    println!("\n== ViTCoD kept fraction (default 0.60; paper-implied speedup 7.05x) ==");
    print_table(&["kept fraction", "ViTCoD e2e (s)", "PARO speedup"], &rows);

    // --- ViTCoD: staging bytes sweep ---
    let mut rows = Vec::new();
    for bytes in [1.0, 1.45, 2.0] {
        let vitcod = VitcodMachine::default_budget().with_config(VitcodConfig {
            stage_bytes_per_entry: bytes,
            ..VitcodConfig::default()
        });
        let s = vitcod.run_model(&cfg, &profile).seconds;
        rows.push(vec![
            format!("{bytes:.2}"),
            format!("{s:.0}"),
            format!("{:.2}x", s / paro_seconds),
        ]);
        json.push(("vitcod_stage_bytes", bytes, s / paro_seconds));
    }
    println!("\n== ViTCoD staging bytes per kept entry (default 1.45) ==");
    print_table(&["bytes/entry", "ViTCoD e2e (s)", "PARO speedup"], &rows);

    println!(
        "\nConclusion robustness: even at the most favorable baseline assumptions\n\
         (lowest kept fraction, best efficiency, cheapest staging), PARO keeps a\n\
         multi-x advantage — the win comes from never staging the map off-chip\n\
         and from mixed-precision compute, not from any single tuned constant."
    );
    save_json("baseline_sensitivity", &json)?;
    Ok(())
}
