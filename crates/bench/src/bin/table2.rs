//! Table II — area and power breakdown of PARO (TSMC 12 nm @ 1 GHz).
//!
//! ```text
//! cargo run --release -p paro-bench --bin table2
//! ```

use paro::prelude::*;
use paro::sim::cost::CostModel;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
    println!("Table II reproduction: area and power breakdown of PARO\n");
    let mut rows = Vec::new();
    for c in cm.components() {
        rows.push(vec![
            c.name.clone(),
            c.config.clone(),
            format!(
                "{:.2} ({:.1}%)",
                c.area_mm2,
                c.area_mm2 / cm.total_area_mm2() * 100.0
            ),
            format!(
                "{:.2} ({:.1}%)",
                c.power_w,
                c.power_w / cm.total_power_w() * 100.0
            ),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        "TSMC 12nm".to_string(),
        format!("{:.2} (100%)", cm.total_area_mm2()),
        format!("{:.2} (100%)", cm.total_power_w()),
    ]);
    print_table(&["Component", "Config", "Area (mm2)", "Power (W)"], &rows);
    println!("\nPaper Table II: total 8.17 mm2, 11.20 W.");
    save_json("table2", &cm.components().to_vec())?;
    Ok(())
}
