//! Attention-map storage footprint (paper Sec. I): "the attention map
//! size for CogVideoX-5B requires 56.50 GB" per transformer block at FP16,
//! and PARO's mixed precision compresses it to an average 4.80 bits.
//!
//! Computes exact packed sizes with the real bit-packing machinery
//! (per-block codes + parameters) at CogVideoX scale, and verifies the
//! formula against a physically packed map at reduced scale.
//!
//! ```text
//! cargo run --release -p paro-bench --bin storage
//! ```

use paro::prelude::*;
use paro::quant::{MixedPrecisionMap, PackedCodes};
use paro_bench::{print_table, save_json};

const GIB: f64 = (1u64 << 30) as f64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Attention-map storage per transformer block\n");
    let profile = AttentionProfile::paper_mp();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let n = cfg.total_tokens() as f64;
        let elems = n * n * cfg.heads as f64;
        let fp16 = elems * 2.0 / GIB;
        let int8 = elems * 1.0 / GIB;
        let mixed = elems * profile.storage_bits() / 8.0 / GIB;
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.0}M ({} heads)", elems / 1e6, cfg.heads),
            format!("{fp16:.2} GiB"),
            format!("{int8:.2} GiB"),
            format!("{mixed:.2} GiB"),
            format!("{:.2}x", fp16 / mixed),
        ]);
        json.push((cfg.name.clone(), fp16, int8, mixed));
    }
    print_table(
        &[
            "model",
            "map elements",
            "FP16",
            "INT8",
            "PARO MP (4.80b)",
            "compression",
        ],
        &rows,
    );
    println!(
        "\nReconciliation with the paper: Sec. I reports 56.50 GB for CogVideoX-5B —\n\
         exactly 2x our 28.25 GiB single-copy FP16 figure, i.e. the paper counts\n\
         both n^2-sized tensors of the attention computation (the pre-softmax\n\
         scores AND the post-softmax map), confirming our 17,776-token grid\n\
         reconstruction. The 4.80-bit mixed map is 3.33x smaller per copy.\n"
    );

    // Physical verification at reduced scale: pack a real quantized map and
    // compare the measured bytes to the formula.
    let grid = TokenGrid::new(6, 6, 6);
    let spec = PatternSpec::new(PatternKind::Temporal);
    let head = synthesize_head(&grid, 32, &spec, 5);
    let map = paro::core::pipeline::attention_map(&head.q, &head.k)?;
    let block = BlockGrid::square(6)?;
    let table = paro::core::sensitivity::SensitivityTable::compute(&map, block, 0.5)?;
    let alloc = paro::core::allocate::allocate_greedy(&table, 4.8)?;
    let packed = MixedPrecisionMap::quantize(&map, block, &alloc.bits)?;
    let n = grid.len();
    let formula_code_bytes: usize = alloc
        .bits
        .iter()
        .zip(0..alloc.bits.len())
        .map(|(b, i)| {
            let (gr, gc) = block.grid_dims(n, n);
            let (bi, bj) = (i / gc, i % gc);
            let (_, _, h, w) = block.block_bounds(bi, bj, n, n);
            let _ = gr;
            PackedCodes::bytes_for(h * w, *b)
        })
        .sum();
    println!(
        "physical check at {n} tokens: packed map {} B (codes {} B + params), \
         effective {:.2} bits/elem vs allocation avg {:.2} bits/block",
        packed.footprint_bytes(),
        formula_code_bytes,
        packed.effective_bits(),
        alloc.avg_bits
    );
    assert!(packed.footprint_bytes() >= formula_code_bytes);
    save_json("storage", &json)?;
    Ok(())
}
