//! Fig. 7 — qualitative comparison of generated videos per method.
//!
//! The paper shows generated frames; this reproduction cannot generate
//! video, so the qualitative comparison is substituted by (a) per-method
//! per-frame output-corruption statistics and (b) rendered heatmaps of the
//! attention outputs, written as PGM images — the per-method visual
//! difference the paper's figure conveys.
//!
//! ```text
//! cargo run --release -p paro-bench --bin fig7
//! ```

use paro::prelude::*;
use paro::tensor::render;
use paro_bench::{head_population, print_table};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let population = head_population(&grid, 32, 1);
    let (_, head) = &population[0]; // the temporal head as the "video"
    let reference = reference_attention(&head.q, &head.k, &head.v)?;
    let out_dir = std::path::Path::new("target/experiments/fig7");
    fs::create_dir_all(out_dir)?;

    let methods = [
        ("fp16", AttentionMethod::Fp16),
        (
            "naive_int4",
            AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        ),
        (
            "paro_int4",
            AttentionMethod::ParoInt {
                bits: Bitwidth::B4,
                block_edge: 6,
            },
        ),
        (
            "paro_mp",
            AttentionMethod::ParoMixed {
                budget: 4.8,
                block_edge: 6,
                alpha: 0.5,
                output_aware: true,
            },
        ),
    ];

    println!("Fig. 7 reproduction: per-frame output corruption by method\n");
    let frames = grid.frames();
    let feat = reference.len() / frames;
    let mut rows = Vec::new();
    for (slug, method) in &methods {
        let inputs = AttentionInputs::new(head.q.clone(), head.k.clone(), head.v.clone(), grid)?;
        let run = run_attention(&inputs, method)?;
        let ref_frames = reference.reshape(&[frames, feat])?;
        let out_frames = run.output.reshape(&[frames, feat])?;
        let mut per_frame = Vec::new();
        for f in 0..frames {
            let r = ref_frames.block(f, 0, 1, feat)?;
            let o = out_frames.block(f, 0, 1, feat)?;
            per_frame.push(metrics::relative_l2(&r, &o)?);
        }
        let worst = per_frame.iter().cloned().fold(0.0f32, f32::max);
        let mean = per_frame.iter().sum::<f32>() / frames as f32;
        rows.push(vec![
            method.name(),
            format!("{mean:.4}"),
            format!("{worst:.4}"),
            per_frame
                .iter()
                .map(|e| format!("{e:.3}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
        // Render the output as a heatmap "frame strip".
        fs::write(
            out_dir.join(format!("{slug}.pgm")),
            render::pgm_bytes(&out_frames, 256)?,
        )?;
    }
    print_table(
        &[
            "method",
            "mean frame err",
            "worst frame err",
            "per-frame errors",
        ],
        &rows,
    );
    println!(
        "\nOutput heatmaps written to {} — PARO MP should be visually \
         indistinguishable from FP16 while naive INT4 is visibly corrupted.",
        out_dir.display()
    );
    Ok(())
}
