//! Fig. 6(b) — ablation of PARO's optimizations on the same hardware.
//!
//! Paper series (2B/5B, cumulative speedup over naive FP16):
//! +W8A8 linear 1.07/1.11x, +4.80-bit attention quantization 2.33/2.38x,
//! +output-bitwidth-aware PEs 3.06/3.00x.
//!
//! ```text
//! cargo run --release -p paro-bench --bin fig6b
//! ```

use paro::prelude::*;
use paro_bench::{print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = AttentionProfile::paper_mp();
    println!("Fig. 6(b) reproduction: optimization ablation on PARO hardware\n");
    let paper = [[1.0, 1.0], [1.07, 1.11], [2.33, 2.38], [3.06, 3.00]];
    let mut json = Vec::new();
    for (ci, cfg) in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()]
        .iter()
        .enumerate()
    {
        println!("== {} ==", cfg.name);
        let base = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::none())
            .run_model(cfg, &profile)
            .seconds;
        let mut rows = Vec::new();
        for (si, (name, opts)) in ParoOptimizations::ablation_ladder().into_iter().enumerate() {
            let report =
                ParoMachine::new(HardwareConfig::paro_asic(), opts).run_model(cfg, &profile);
            let speedup = base / report.seconds;
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", report.seconds),
                format!("{:.2}x", speedup),
                format!("{:.2}x", paper[si][ci]),
            ]);
            json.push((cfg.name.clone(), name.to_string(), speedup));
        }
        print_table(
            &[
                "configuration",
                "e2e (s)",
                "speedup (ours)",
                "speedup (paper)",
            ],
            &rows,
        );
        println!();
    }
    save_json("fig6b", &json)?;
    Ok(())
}
