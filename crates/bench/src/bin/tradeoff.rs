//! Hyperparameter trade-off curves for PARO-MP (extension experiments):
//!
//! 1. **Budget sweep** — quality vs average-bitwidth budget, the implicit
//!    curve behind the paper's choice of 4.80 bits.
//! 2. **α sweep** — quality vs the sensitivity balance between block
//!    importance and quantization difficulty (paper Sec. III-B introduces
//!    α but does not ablate it).
//!
//! ```text
//! cargo run --release -p paro-bench --bin tradeoff
//! ```

use paro::prelude::*;
use paro_bench::{evaluate_method, head_population, print_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TokenGrid::new(6, 6, 6);
    let population = head_population(&grid, 32, 2);

    println!("== budget sweep (alpha = 0.5) ==\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for budget in [1.0f32, 2.0, 3.0, 4.0, 4.8, 6.0, 8.0] {
        let method = AttentionMethod::ParoMixed {
            budget,
            block_edge: 6,
            alpha: 0.5,
            output_aware: false,
        };
        let row = evaluate_method(&method, &grid, &population)?;
        rows.push(vec![
            format!("{budget:.1}"),
            format!("{:.2}", row.avg_bits),
            format!("{:.4}", row.fvd_proxy),
            format!("{:.2}", row.vqa_proxy),
        ]);
        json.push(("budget", budget, row));
    }
    print_table(
        &[
            "budget (bits)",
            "achieved bits",
            "FVD-proxy ↓",
            "VQA-proxy ↑",
        ],
        &rows,
    );
    println!(
        "\nThe knee sits in the 4-5 bit range — the paper's 4.80-bit operating\n\
         point buys near-INT8 quality at ~60% of the INT8 compute.\n"
    );

    println!("== alpha sweep (budget = 4.8) ==\n");
    let mut rows = Vec::new();
    for alpha in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
        let method = AttentionMethod::ParoMixed {
            budget: 4.8,
            block_edge: 6,
            alpha,
            output_aware: false,
        };
        let row = evaluate_method(&method, &grid, &population)?;
        rows.push(vec![
            format!("{alpha:.2}"),
            format!("{:.4}", row.fvd_proxy),
            format!("{:.4}", row.clipsim_proxy),
            format!("{:.2}", row.vqa_proxy),
        ]);
        json.push(("alpha", alpha, row));
    }
    print_table(
        &["alpha", "FVD-proxy ↓", "CLIPSIM-proxy ↑", "VQA-proxy ↑"],
        &rows,
    );
    println!(
        "\nalpha = 0 allocates purely by quantization difficulty; quality is flat\n\
         for alpha in [0, 0.75]. alpha = 1 is DEGENERATE by construction: the\n\
         paper's S = (Σx)^a · ||x − x_q||^(1−a) loses all bitwidth dependence at\n\
         a = 1 (pure importance scores the same at every b), so the allocator has\n\
         no signal and the budget goes unspent. The paper's formula therefore\n\
         requires a < 1; its balanced choice sits safely in the flat region."
    );
    save_json("tradeoff", &json)?;
    Ok(())
}
