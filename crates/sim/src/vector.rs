use crate::HardwareConfig;
use serde::{Deserialize, Serialize};

/// The floating-point vector unit (paper Fig. 4(a)).
///
/// Handles everything outside fixed-point matrix multiplication: softmax
/// (exp / add / div), FP16 dequantization of integer accumulation results,
/// and floating-point accumulation. Throughput is a configurable number of
/// elementwise operations per cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorUnit {
    ops_per_cycle: f64,
}

/// Elementwise operations softmax spends per attention-map element:
/// max-scan, exponential, sum-scan, divide.
pub const SOFTMAX_OPS_PER_ELEM: f64 = 4.0;

/// Elementwise operations to dequantize one integer GEMM output element
/// (scale multiply + FP accumulate).
pub const DEQUANT_OPS_PER_ELEM: f64 = 2.0;

impl VectorUnit {
    /// Builds the vector-unit timing model from a hardware envelope.
    pub fn new(hw: &HardwareConfig) -> Self {
        VectorUnit {
            ops_per_cycle: hw.vector_ops_per_cycle as f64,
        }
    }

    /// Elementwise operations per cycle.
    pub fn ops_per_cycle(&self) -> f64 {
        self.ops_per_cycle
    }

    /// Cycles for a generic elementwise pass over `elems` elements with
    /// `ops_per_elem` operations each.
    pub fn elementwise_cycles(&self, elems: f64, ops_per_elem: f64) -> f64 {
        (elems * ops_per_elem / self.ops_per_cycle).max(0.0)
    }

    /// Cycles for softmax over `elems` attention-map elements, with a
    /// fraction of elements skipped (0-bit blocks are bypassed before
    /// exponentiation; their contribution to the normalizer is zero by
    /// construction of the 0-bit allocation).
    pub fn softmax_cycles(&self, elems: f64, skip_fraction: f64) -> f64 {
        let active = elems * (1.0 - skip_fraction.clamp(0.0, 1.0));
        self.elementwise_cycles(active, SOFTMAX_OPS_PER_ELEM)
    }

    /// Cycles to dequantize an integer GEMM output of `elems` elements.
    pub fn dequant_cycles(&self, elems: f64) -> f64 {
        self.elementwise_cycles(elems, DEQUANT_OPS_PER_ELEM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> VectorUnit {
        VectorUnit::new(&HardwareConfig::paro_asic())
    }

    #[test]
    fn softmax_cycles_scale_with_elements() {
        let v = unit();
        let c1 = v.softmax_cycles(1.0e6, 0.0);
        let c2 = v.softmax_cycles(2.0e6, 0.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
        assert!((c1 - 1.0e6 * 4.0 / 2048.0).abs() < 1e-6);
    }

    #[test]
    fn skip_fraction_reduces_softmax() {
        let v = unit();
        let full = v.softmax_cycles(1.0e6, 0.0);
        let half = v.softmax_cycles(1.0e6, 0.5);
        assert!((half - full * 0.5).abs() < 1e-6);
        // Clamped.
        assert_eq!(v.softmax_cycles(1.0e6, 2.0), 0.0);
    }

    #[test]
    fn dequant_cheaper_than_softmax() {
        let v = unit();
        assert!(v.dequant_cycles(1.0e6) < v.softmax_cycles(1.0e6, 0.0));
    }

    #[test]
    fn zero_elements_zero_cycles() {
        let v = unit();
        assert_eq!(v.softmax_cycles(0.0, 0.0), 0.0);
        assert_eq!(v.dequant_cycles(0.0), 0.0);
    }
}
