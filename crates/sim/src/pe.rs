use crate::HardwareConfig;
use paro_model::workload::GemmShape;
use paro_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// The multiplication mode of a mixed-precision PE (paper Fig. 4(b)).
///
/// Each PE consists of four 2b×8b fixed-point multipliers and can execute
/// one 8b×8b, two 4b×8b, or four 2b×8b multiplications per cycle. FP16 is
/// modeled as consuming two INT8 issue slots (the equal-area assumption
/// behind the paper's resource-aligned comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeMode {
    /// FP16 × FP16 (half the INT8 rate).
    Fp16,
    /// 8-bit × 8-bit: one multiplication per PE per cycle.
    Int8x8,
    /// 4-bit × 8-bit: two multiplications per PE per cycle.
    Int4x8,
    /// 2-bit × 8-bit: four multiplications per PE per cycle.
    Int2x8,
    /// 0-bit block: skipped entirely by the dispatcher.
    Skip,
}

impl PeMode {
    /// Multiplications per PE per cycle relative to the INT8 baseline.
    pub fn throughput_factor(&self) -> f64 {
        match self {
            PeMode::Fp16 => 0.5,
            PeMode::Int8x8 => 1.0,
            PeMode::Int4x8 => 2.0,
            PeMode::Int2x8 => 4.0,
            PeMode::Skip => f64::INFINITY,
        }
    }

    /// The PE mode serving an attention-map block of the given bitwidth
    /// (the operand the low-bit side of the multiplier consumes).
    pub fn for_bitwidth(bits: Bitwidth) -> PeMode {
        match bits {
            Bitwidth::B0 => PeMode::Skip,
            Bitwidth::B2 => PeMode::Int2x8,
            Bitwidth::B4 => PeMode::Int4x8,
            Bitwidth::B8 => PeMode::Int8x8,
        }
    }
}

/// The PE-array timing model: converts GEMM shapes to compute cycles under
/// a PE mode, with tiling edge effects.
///
/// # Example
///
/// ```
/// use paro_model::workload::GemmShape;
/// use paro_sim::{HardwareConfig, PeArray, PeMode};
/// let pe = PeArray::new(&HardwareConfig::paro_asic());
/// let shape = GemmShape::new(256, 64, 256);
/// let c8 = pe.gemm_cycles(shape, PeMode::Int8x8);
/// let c2 = pe.gemm_cycles(shape, PeMode::Int2x8);
/// // Four 2b x 8b multiplications per PE per cycle.
/// assert!((c8 / c2 - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    macs_per_cycle_int8: u64,
    /// Tile edge used for shape padding (the physical array is organized as
    /// `edge x edge` PEs with an `edge`-deep reduction; shapes are padded to
    /// tile multiples, wasting edge fractions exactly as real arrays do).
    tile_edge: usize,
}

impl PeArray {
    /// Builds the timing model from a hardware envelope. The tile edge is
    /// the cube root of the MAC budget (32 for the default 32x32x32 array).
    pub fn new(hw: &HardwareConfig) -> Self {
        let tile_edge = (hw.int8_macs_per_cycle as f64).cbrt().round().max(1.0) as usize;
        PeArray {
            macs_per_cycle_int8: hw.int8_macs_per_cycle,
            tile_edge,
        }
    }

    /// Peak INT8 MACs per cycle.
    pub fn macs_per_cycle_int8(&self) -> u64 {
        self.macs_per_cycle_int8
    }

    /// The padding tile edge.
    pub fn tile_edge(&self) -> usize {
        self.tile_edge
    }

    /// Pads a dimension up to the tile edge.
    fn pad(&self, x: usize) -> u64 {
        let e = self.tile_edge as u64;
        (x as u64).div_ceil(e) * e
    }

    /// Compute cycles for a full GEMM in a uniform mode.
    ///
    /// Shapes are padded to tile multiples before dividing by the array's
    /// effective MAC rate, modeling edge under-utilization.
    pub fn gemm_cycles(&self, shape: GemmShape, mode: PeMode) -> f64 {
        if mode == PeMode::Skip {
            return 0.0;
        }
        let padded = self.pad(shape.m) * self.pad(shape.k) * self.pad(shape.n);
        padded as f64 / (self.macs_per_cycle_int8 as f64 * mode.throughput_factor())
    }

    /// Compute cycles for a GEMM whose MAC count is an explicit fraction of
    /// a full shape (sparse baselines), with a load-balance efficiency in
    /// `(0, 1]`.
    pub fn sparse_gemm_cycles(
        &self,
        shape: GemmShape,
        kept_fraction: f64,
        efficiency: f64,
        mode: PeMode,
    ) -> f64 {
        if mode == PeMode::Skip {
            return 0.0;
        }
        let eff = efficiency.clamp(1e-6, 1.0);
        self.gemm_cycles(shape, mode) * kept_fraction.clamp(0.0, 1.0) / eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> PeArray {
        PeArray::new(&HardwareConfig::paro_asic())
    }

    #[test]
    fn mode_factors_match_paper() {
        assert_eq!(PeMode::Int8x8.throughput_factor(), 1.0);
        assert_eq!(PeMode::Int4x8.throughput_factor(), 2.0);
        assert_eq!(PeMode::Int2x8.throughput_factor(), 4.0);
        assert_eq!(PeMode::Fp16.throughput_factor(), 0.5);
    }

    #[test]
    fn mode_for_bitwidth() {
        assert_eq!(PeMode::for_bitwidth(Bitwidth::B0), PeMode::Skip);
        assert_eq!(PeMode::for_bitwidth(Bitwidth::B2), PeMode::Int2x8);
        assert_eq!(PeMode::for_bitwidth(Bitwidth::B4), PeMode::Int4x8);
        assert_eq!(PeMode::for_bitwidth(Bitwidth::B8), PeMode::Int8x8);
    }

    #[test]
    fn tile_edge_from_budget() {
        assert_eq!(array().tile_edge(), 32);
    }

    #[test]
    fn aligned_gemm_hits_peak() {
        let a = array();
        let shape = GemmShape::new(512, 512, 512);
        let cycles = a.gemm_cycles(shape, PeMode::Int8x8);
        assert!((cycles - shape.macs() as f64 / 32768.0).abs() < 1e-6);
    }

    #[test]
    fn unaligned_gemm_pays_padding() {
        let a = array();
        let exact = a.gemm_cycles(GemmShape::new(64, 64, 64), PeMode::Int8x8);
        let ragged = a.gemm_cycles(GemmShape::new(65, 64, 64), PeMode::Int8x8);
        assert!(ragged > exact, "padding should cost cycles");
        assert!((ragged / exact - 96.0 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn lower_bits_scale_cycles() {
        let a = array();
        let shape = GemmShape::new(256, 64, 256);
        let c8 = a.gemm_cycles(shape, PeMode::Int8x8);
        let c4 = a.gemm_cycles(shape, PeMode::Int4x8);
        let c2 = a.gemm_cycles(shape, PeMode::Int2x8);
        let cf = a.gemm_cycles(shape, PeMode::Fp16);
        assert!((c8 / c4 - 2.0).abs() < 1e-9);
        assert!((c8 / c2 - 4.0).abs() < 1e-9);
        assert!((cf / c8 - 2.0).abs() < 1e-9);
        assert_eq!(a.gemm_cycles(shape, PeMode::Skip), 0.0);
    }

    #[test]
    fn sparse_cycles_scale_with_kept_fraction() {
        let a = array();
        let shape = GemmShape::new(256, 64, 256);
        let dense = a.gemm_cycles(shape, PeMode::Int8x8);
        let half = a.sparse_gemm_cycles(shape, 0.5, 1.0, PeMode::Int8x8);
        assert!((half - dense * 0.5).abs() < 1e-6);
        // Poor load balance inflates cycles.
        let imbalanced = a.sparse_gemm_cycles(shape, 0.5, 0.5, PeMode::Int8x8);
        assert!((imbalanced - dense).abs() < 1e-6);
        // Fractions clamp.
        assert!(a.sparse_gemm_cycles(shape, 2.0, 1.0, PeMode::Int8x8) <= dense + 1e-6);
    }
}
