//! On-chip buffer planning: which tensors of the attention dataflow live
//! in the 1.5 MB SRAM, and when the plan stops fitting.
//!
//! The PARO dataflow processes the attention map as row panels
//! (`tile_edge` query rows x all key columns) that must stay on-chip
//! between `QKᵀ`, softmax and `AttnV`. This module builds the explicit
//! buffer allocation for that dataflow and reports whether it fits — the
//! capacity cliff that makes attention-map quantization so valuable on
//! this architecture (an FP16 panel at 17.8k tokens does not fit; an INT8
//! or mixed-precision panel does).

use crate::{HardwareConfig, SimError};
use paro_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// One named buffer region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferRegion {
    /// Region name (e.g. `"map row panel"`).
    pub name: String,
    /// Bytes reserved, including double-buffer copies.
    pub bytes: u64,
}

/// A buffer allocation against a fixed SRAM capacity.
///
/// # Example
///
/// ```
/// use paro_model::ModelConfig;
/// use paro_sim::buffer::paro_attention_plan;
/// use paro_sim::HardwareConfig;
/// let hw = HardwareConfig::paro_asic();
/// let cfg = ModelConfig::cogvideox_5b();
/// // The paper's capacity cliff: FP16 map panels overflow the 1.5 MB SRAM,
/// // INT8 and 4.8-bit panels fit.
/// assert!(paro_attention_plan(&hw, &cfg, 16.0).is_err());
/// assert!(paro_attention_plan(&hw, &cfg, 4.8).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPlan {
    capacity: u64,
    regions: Vec<BufferRegion>,
}

impl BufferPlan {
    /// Creates an empty plan over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BufferPlan {
            capacity,
            regions: Vec::new(),
        }
    }

    /// Reserves a region; `copies = 2` for double-buffered regions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadHardwareConfig`] naming the region when the
    /// reservation exceeds the remaining capacity.
    pub fn reserve(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        copies: u64,
    ) -> Result<(), SimError> {
        let name = name.into();
        let total = bytes * copies;
        if self.used() + total > self.capacity {
            return Err(SimError::BadProfile {
                reason: format!(
                    "buffer plan overflow: region '{name}' needs {total} B, only {} B free",
                    self.free()
                ),
            });
        }
        self.regions.push(BufferRegion { name, bytes: total });
        Ok(())
    }

    /// Total bytes reserved.
    pub fn used(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// SRAM capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The reserved regions.
    pub fn regions(&self) -> &[BufferRegion] {
        &self.regions
    }
}

/// Builds the PARO attention row-panel buffer plan for a model at a map
/// precision, or reports the overflow.
///
/// Regions:
/// - `Q` tile: `tile_edge x head_dim` INT8, double buffered.
/// - `K`/`V` streaming tiles: `tile_edge x head_dim` INT8 each, double
///   buffered.
/// - map row panel: `tile_edge x n_tokens` at the map's storage bits,
///   double buffered (QKᵀ writes one copy while AttnV consumes the other).
/// - output accumulator: `tile_edge x head_dim` FP32 partials.
///
/// # Errors
///
/// Returns the overflow error of the first region that does not fit.
pub fn paro_attention_plan(
    hw: &HardwareConfig,
    cfg: &ModelConfig,
    map_bits_per_elem: f64,
) -> Result<BufferPlan, SimError> {
    let tile_edge = (hw.int8_macs_per_cycle as f64).cbrt().round().max(1.0) as u64;
    let n = cfg.total_tokens() as u64;
    let hd = cfg.head_dim() as u64;
    let mut plan = BufferPlan::new(hw.sram_bytes);
    plan.reserve("q tile (int8)", tile_edge * hd, 2)?;
    plan.reserve("k tile (int8)", tile_edge * hd, 2)?;
    plan.reserve("v tile (int8)", tile_edge * hd, 2)?;
    let panel_bytes = (tile_edge as f64 * n as f64 * map_bits_per_elem / 8.0).ceil() as u64;
    plan.reserve("map row panel", panel_bytes, 2)?;
    plan.reserve("output accumulator (fp32)", tile_edge * hd * 4, 1)?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paro_quant::Bitwidth;

    #[test]
    fn reserve_and_overflow() {
        let mut plan = BufferPlan::new(1000);
        plan.reserve("a", 300, 2).unwrap();
        assert_eq!(plan.used(), 600);
        assert_eq!(plan.free(), 400);
        assert!(plan.reserve("b", 300, 2).is_err());
        plan.reserve("c", 400, 1).unwrap();
        assert_eq!(plan.free(), 0);
    }

    #[test]
    fn fp16_panel_does_not_fit_but_int8_does() {
        // The capacity cliff of the paper's dataflow, stated explicitly.
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::cogvideox_5b();
        assert!(
            paro_attention_plan(&hw, &cfg, 16.0).is_err(),
            "FP16 map panels must overflow the 1.5 MB SRAM"
        );
        let int8 = paro_attention_plan(&hw, &cfg, 8.0).expect("INT8 panels fit");
        assert!(int8.used() <= hw.sram_bytes);
        let mixed = paro_attention_plan(&hw, &cfg, 4.8).expect("mixed panels fit");
        assert!(mixed.used() < int8.used());
    }

    #[test]
    fn plan_matches_machine_spill_condition() {
        // The ParoMachine charges a spill exactly when this plan overflows:
        // cross-check the two formulations on both precisions.
        use crate::machines::{Machine, ParoMachine, ParoOptimizations};
        use crate::AttentionProfile;
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::cogvideox_2b();
        // Quantized (fits): the QkT record must be compute-bound.
        let quant = ParoMachine::new(hw.clone(), ParoOptimizations::all())
            .run_model(&cfg, &AttentionProfile::paper_mp());
        let qkt = quant
            .block_records
            .iter()
            .find(|r| r.name == "QkT")
            .unwrap();
        assert!(qkt.compute_cycles >= qkt.memory_cycles);
        assert!(paro_attention_plan(&hw, &cfg, 4.8).is_ok());
        // FP16 (overflows): the QkT record becomes memory-bound.
        let fp16 = ParoMachine::new(hw.clone(), ParoOptimizations::none())
            .run_model(&cfg, &AttentionProfile::uniform(Bitwidth::B8));
        let qkt = fp16.block_records.iter().find(|r| r.name == "QkT").unwrap();
        assert!(qkt.memory_cycles > qkt.compute_cycles);
        assert!(paro_attention_plan(&hw, &cfg, 16.0).is_err());
    }

    #[test]
    fn small_models_always_fit() {
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::tiny(4, 4, 4);
        let plan = paro_attention_plan(&hw, &cfg, 16.0).unwrap();
        assert!(plan.used() < hw.sram_bytes / 10);
        assert_eq!(plan.regions().len(), 5);
    }
}
