use std::error::Error;
use std::fmt;

/// Error type for the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A hardware configuration value is invalid (zero frequency, zero
    /// bandwidth, etc.).
    BadHardwareConfig {
        /// Which field is invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An attention precision profile does not describe a distribution.
    BadProfile {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A bit-budget tuning problem is malformed (no heads, a head with no
    /// candidate budgets, or a non-finite/non-positive latency target).
    BadTuneInput {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadHardwareConfig { field, value } => {
                write!(f, "invalid hardware configuration: {field} = {value}")
            }
            SimError::BadProfile { reason } => write!(f, "invalid attention profile: {reason}"),
            SimError::BadTuneInput { reason } => {
                write!(f, "invalid bit-budget tuning input: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::BadHardwareConfig {
            field: "freq_ghz",
            value: 0.0
        }
        .to_string()
        .is_empty());
        assert!(!SimError::BadProfile {
            reason: "negative share".to_string()
        }
        .to_string()
        .is_empty());
    }
}
