//! Sim-driven per-head bit-budget autotuning.
//!
//! Calibration freezes the best allocation *for a given budget*; this
//! module searches over the budget itself. Given, per head, a set of
//! candidate operating points (one frozen allocation per trial budget,
//! each with a measured fidelity cost), it picks a per-head assignment
//! whose predicted latency meets a service-level objective while giving
//! up as little fidelity as possible.
//!
//! Latency is predicted with a roofline model seeded from **measured**
//! stage costs (the `BENCH_*.json` artifacts produced by `paro
//! perf-bench`): an achieved MAC rate, an achieved packed-map streaming
//! bandwidth and a fixed per-head overhead. The search is greedy over
//! downgrade moves — start every head at its highest-fidelity candidate
//! and repeatedly apply the downgrade with the best time-saved per
//! fidelity-lost ratio until the SLO holds. Budgets come from a small
//! discrete palette (the paper's `{2, 4, 8}`-bit averages), so greedy is
//! within a hair of exhaustive while staying O(moves · heads · options).

use crate::profile::AttentionProfile;
use crate::SimError;
use serde::{Deserialize, Serialize};

/// A roofline latency model seeded with measured per-stage throughputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Achieved `AttnV` MAC rate at 8 bits, MACs/second (from a measured
    /// `attn_v.macs_per_sec`).
    pub macs_per_sec: f64,
    /// Achieved packed attention-map streaming bandwidth, bytes/second.
    pub packed_map_bytes_per_sec: f64,
    /// Fixed per-head overhead in microseconds (reorder, unreorder,
    /// unpack — the stages precision does not change).
    pub fixed_us: f64,
    /// Tokens per head (`n`; the map is `n × n`).
    pub tokens: usize,
    /// Head dimension (`d`; `AttnV` is `n × n × d` MACs dense).
    pub head_dim: usize,
}

impl RooflineModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::BadTuneInput`] for non-positive or non-finite rates,
    /// a negative overhead, or zero dimensions.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |reason: String| Err(SimError::BadTuneInput { reason });
        if !(self.macs_per_sec.is_finite() && self.macs_per_sec > 0.0) {
            return bad(format!("macs_per_sec = {}", self.macs_per_sec));
        }
        if !(self.packed_map_bytes_per_sec.is_finite() && self.packed_map_bytes_per_sec > 0.0) {
            return bad(format!(
                "packed_map_bytes_per_sec = {}",
                self.packed_map_bytes_per_sec
            ));
        }
        if !(self.fixed_us.is_finite() && self.fixed_us >= 0.0) {
            return bad(format!("fixed_us = {}", self.fixed_us));
        }
        if self.tokens == 0 || self.head_dim == 0 {
            return bad(format!(
                "tokens = {}, head_dim = {}",
                self.tokens, self.head_dim
            ));
        }
        Ok(())
    }

    /// Predicted service time of one head under a precision profile, in
    /// microseconds: fixed overhead plus the compute/memory roofline
    /// (whichever bound is tighter dominates; compute scales with the
    /// profile's PE-array inverse throughput, memory with its stored
    /// bits).
    pub fn predict_head_us(&self, profile: &AttentionProfile) -> f64 {
        let n = self.tokens as f64;
        let dense_macs = n * n * self.head_dim as f64;
        let compute_us = dense_macs * profile.inverse_throughput() / self.macs_per_sec * 1e6;
        let map_bytes = n * n * profile.storage_bits() / 8.0;
        let memory_us = map_bytes / self.packed_map_bytes_per_sec * 1e6;
        self.fixed_us + compute_us.max(memory_us)
    }
}

/// One candidate operating point for a head: the frozen allocation a
/// trial budget produced, summarized as a precision profile plus its
/// fidelity cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetOption {
    /// The trial average-bit budget that produced this allocation.
    pub budget_bits: f32,
    /// The allocation's precision mix.
    pub profile: AttentionProfile,
    /// Fidelity proxy: the allocation's total weighted quantization cost
    /// (lower is better) — the same objective calibration minimizes.
    pub fidelity_cost: f64,
}

/// A head with its candidate budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadCandidate {
    /// Transformer block index.
    pub block: u32,
    /// Attention head index.
    pub head: u32,
    /// Candidate operating points (at least one).
    pub options: Vec<BudgetOption>,
}

/// One head's tuned assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChosenBudget {
    /// Transformer block index.
    pub block: u32,
    /// Attention head index.
    pub head: u32,
    /// Index into the head's `options`.
    pub option: usize,
    /// The chosen trial budget.
    pub budget_bits: f32,
    /// Predicted per-head service time, microseconds.
    pub predicted_us: f64,
    /// The chosen option's fidelity cost.
    pub fidelity_cost: f64,
}

/// The result of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// Per-head assignments, in input order.
    pub chosen: Vec<ChosenBudget>,
    /// Mean predicted per-head service time, microseconds.
    pub predicted_mean_us: f64,
    /// Whether the mean meets the SLO (the search reports its best
    /// effort either way — an infeasible SLO yields the fastest
    /// assignment with `meets_slo = false`).
    pub meets_slo: bool,
    /// Total fidelity cost given up relative to the best-fidelity
    /// assignment (0 when no downgrades were needed).
    pub fidelity_sacrificed: f64,
    /// Downgrade moves the greedy search applied.
    pub moves: usize,
}

/// Searches per-head budget assignments until the mean predicted head
/// latency meets `slo_us`.
///
/// # Errors
///
/// [`SimError::BadTuneInput`] for an empty head list, a head without
/// options, or a non-positive/non-finite SLO; model validation errors
/// propagate.
pub fn tune_budgets(
    model: &RooflineModel,
    heads: &[HeadCandidate],
    slo_us: f64,
) -> Result<TuneOutcome, SimError> {
    model.validate()?;
    if heads.is_empty() {
        return Err(SimError::BadTuneInput {
            reason: "no head candidates".to_string(),
        });
    }
    if !(slo_us.is_finite() && slo_us > 0.0) {
        return Err(SimError::BadTuneInput {
            reason: format!("slo_us = {slo_us}"),
        });
    }
    for h in heads {
        if h.options.is_empty() {
            return Err(SimError::BadTuneInput {
                reason: format!("head ({}, {}) has no budget options", h.block, h.head),
            });
        }
    }

    // Precompute every option's predicted time once.
    let predicted: Vec<Vec<f64>> = heads
        .iter()
        .map(|h| {
            h.options
                .iter()
                .map(|o| model.predict_head_us(&o.profile))
                .collect()
        })
        .collect();

    // Start at the best-fidelity option per head (ties to the faster one).
    let mut current: Vec<usize> = heads
        .iter()
        .enumerate()
        .map(|(i, h)| {
            (0..h.options.len())
                .min_by(|&a, &b| {
                    let fa = (h.options[a].fidelity_cost, predicted[i][a]);
                    let fb = (h.options[b].fidelity_cost, predicted[i][b]);
                    fa.partial_cmp(&fb).expect("finite costs")
                })
                .expect("options is non-empty")
        })
        .collect();
    let baseline_fidelity: f64 = heads
        .iter()
        .zip(&current)
        .map(|(h, &j)| h.options[j].fidelity_cost)
        .sum();

    let n = heads.len() as f64;
    let mut total_us: f64 = current
        .iter()
        .enumerate()
        .map(|(i, &j)| predicted[i][j])
        .sum();
    let mut moves = 0usize;
    while total_us / n > slo_us {
        // The downgrade with the most time saved per fidelity given up.
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, h) in heads.iter().enumerate() {
            let j = current[i];
            for k in 0..h.options.len() {
                let saved = predicted[i][j] - predicted[i][k];
                if saved <= 0.0 {
                    continue;
                }
                let lost = (h.options[k].fidelity_cost - h.options[j].fidelity_cost).max(0.0);
                // Free moves (faster at no fidelity loss) rank above
                // everything; otherwise maximize saved/lost.
                let score = if lost == 0.0 {
                    f64::INFINITY
                } else {
                    saved / lost
                };
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((i, k, score));
                }
            }
        }
        let Some((i, k, _)) = best else {
            break; // Fully downgraded; the SLO is infeasible.
        };
        total_us -= predicted[i][current[i]] - predicted[i][k];
        current[i] = k;
        moves += 1;
    }

    let chosen: Vec<ChosenBudget> = heads
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let j = current[i];
            ChosenBudget {
                block: h.block,
                head: h.head,
                option: j,
                budget_bits: h.options[j].budget_bits,
                predicted_us: predicted[i][j],
                fidelity_cost: h.options[j].fidelity_cost,
            }
        })
        .collect();
    let predicted_mean_us = chosen.iter().map(|c| c.predicted_us).sum::<f64>() / n;
    let fidelity_sacrificed =
        (chosen.iter().map(|c| c.fidelity_cost).sum::<f64>() - baseline_fidelity).max(0.0);
    Ok(TuneOutcome {
        meets_slo: predicted_mean_us <= slo_us,
        chosen,
        predicted_mean_us,
        fidelity_sacrificed,
        moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paro_quant::Bitwidth;

    fn model() -> RooflineModel {
        RooflineModel {
            macs_per_sec: 7.0e9,
            packed_map_bytes_per_sec: 80.0e6,
            fixed_us: 60.0,
            tokens: 384,
            head_dim: 64,
        }
    }

    fn head(block: u32, head_idx: u32, cost_scale: f64) -> HeadCandidate {
        // Higher budgets -> better fidelity (lower cost), more time.
        let options = [2.0f32, 4.0, 8.0]
            .iter()
            .map(|&b| BudgetOption {
                budget_bits: b,
                profile: AttentionProfile::uniform(match b as u32 {
                    2 => Bitwidth::B2,
                    4 => Bitwidth::B4,
                    _ => Bitwidth::B8,
                }),
                fidelity_cost: cost_scale * (10.0 - b as f64),
            })
            .collect();
        HeadCandidate {
            block,
            head: head_idx,
            options,
        }
    }

    #[test]
    fn prediction_is_monotone_in_bits() {
        let m = model();
        let t2 = m.predict_head_us(&AttentionProfile::uniform(Bitwidth::B2));
        let t4 = m.predict_head_us(&AttentionProfile::uniform(Bitwidth::B4));
        let t8 = m.predict_head_us(&AttentionProfile::uniform(Bitwidth::B8));
        assert!(t2 < t4 && t4 < t8, "{t2} {t4} {t8}");
        assert!(t2 >= m.fixed_us);
    }

    #[test]
    fn loose_slo_keeps_best_fidelity() {
        let m = model();
        let heads: Vec<_> = (0..4).map(|h| head(0, h, 1.0)).collect();
        let out = tune_budgets(&m, &heads, 1e9).unwrap();
        assert!(out.meets_slo);
        assert_eq!(out.moves, 0);
        assert_eq!(out.fidelity_sacrificed, 0.0);
        // Best fidelity = the 8-bit option everywhere.
        assert!(out.chosen.iter().all(|c| c.budget_bits == 8.0));
    }

    #[test]
    fn tight_slo_downgrades_cheapest_fidelity_first() {
        let m = model();
        // Head 0's fidelity is 100x more valuable than head 1's: the
        // search must downgrade head 1 first.
        let heads = vec![head(0, 0, 100.0), head(0, 1, 1.0)];
        let t8 = m.predict_head_us(&AttentionProfile::uniform(Bitwidth::B8));
        let t4 = m.predict_head_us(&AttentionProfile::uniform(Bitwidth::B4));
        // An SLO between "both at 8" and "one at 8, one at 4".
        let slo = (2.0 * t8 + (t8 + t4)) / 4.0;
        let out = tune_budgets(&m, &heads, slo).unwrap();
        assert!(out.meets_slo, "mean {} vs slo {slo}", out.predicted_mean_us);
        assert_eq!(out.chosen[0].budget_bits, 8.0, "precious head untouched");
        assert!(out.chosen[1].budget_bits < 8.0, "cheap head downgraded");
        assert!(out.moves >= 1);
        assert!(out.fidelity_sacrificed > 0.0);
    }

    #[test]
    fn infeasible_slo_reports_best_effort() {
        let m = model();
        let heads: Vec<_> = (0..2).map(|h| head(0, h, 1.0)).collect();
        let out = tune_budgets(&m, &heads, 1e-6).unwrap();
        assert!(!out.meets_slo);
        // Everything was driven to the fastest option.
        assert!(out.chosen.iter().all(|c| c.budget_bits == 2.0));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let m = model();
        assert!(matches!(
            tune_budgets(&m, &[], 100.0),
            Err(SimError::BadTuneInput { .. })
        ));
        let empty = HeadCandidate {
            block: 0,
            head: 0,
            options: vec![],
        };
        assert!(tune_budgets(&m, &[empty], 100.0).is_err());
        let heads = vec![head(0, 0, 1.0)];
        assert!(tune_budgets(&m, &heads, f64::NAN).is_err());
        assert!(tune_budgets(&m, &heads, 0.0).is_err());
        let mut bad = model();
        bad.macs_per_sec = 0.0;
        assert!(bad.validate().is_err());
        assert!(model().validate().is_ok());
    }
}
