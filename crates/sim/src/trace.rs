//! Tile-granularity execution traces with explicit double buffering.
//!
//! The machine models account each op as `max(compute, memory)` — the
//! steady-state limit of a double-buffered pipeline. This module simulates
//! the actual tile timeline (load → compute → store, with the next tile's
//! load overlapping the current compute) and exposes the difference: a
//! pipeline prologue/epilogue of one tile on each end. The
//! `trace_matches_steady_state` test pins the idealization error, which is
//! negligible at CogVideoX tile counts (thousands of tiles per op).

use serde::{Deserialize, Serialize};

/// Timing of one tile through the load/compute/store pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileEvent {
    /// Tile index.
    pub tile: usize,
    /// Cycle the input DMA for this tile starts.
    pub load_start: f64,
    /// Cycle the input DMA completes.
    pub load_end: f64,
    /// Cycle the PE array starts on this tile.
    pub compute_start: f64,
    /// Cycle the PE array finishes this tile.
    pub compute_end: f64,
    /// Cycle the output write-back starts on the DMA.
    pub store_start: f64,
    /// Cycle the output write-back completes.
    pub store_end: f64,
}

/// A full per-tile trace of one operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileTrace {
    /// Per-tile events in issue order.
    pub events: Vec<TileEvent>,
}

impl TileTrace {
    /// Total latency: first load start to last store end.
    pub fn latency(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.store_end)
    }

    /// Total PE-busy cycles.
    pub fn compute_busy(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.compute_end - e.compute_start)
            .sum()
    }

    /// Total DMA-busy cycles (loads + stores).
    pub fn memory_busy(&self) -> f64 {
        self.events
            .iter()
            .map(|e| (e.load_end - e.load_start) + (e.store_end - e.store_start))
            .sum()
    }

    /// PE utilization over the trace.
    pub fn compute_utilization(&self) -> f64 {
        let l = self.latency();
        if l <= 0.0 {
            return 0.0;
        }
        self.compute_busy() / l
    }
}

/// Simulates a double-buffered tile pipeline.
///
/// Each tile needs `load_cycles[i]` of input DMA, `compute_cycles[i]` of PE
/// time and `store_cycles[i]` of output DMA. Input and output share one
/// DMA engine; the PE array and the DMA overlap freely; one tile of input
/// buffering is available (the classic double buffer), so load `i+1` can
/// run during compute `i` but not earlier.
///
/// # Example
///
/// ```
/// use paro_sim::trace::trace_uniform;
/// // 100 compute-bound tiles: latency ~ total compute + prologue/epilogue.
/// let t = trace_uniform(100, 10.0, 20.0, 2.0);
/// assert!(t.compute_utilization() > 0.95);
/// assert!(t.latency() >= 100.0 * 20.0);
/// ```
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn trace_pipeline(
    load_cycles: &[f64],
    compute_cycles: &[f64],
    store_cycles: &[f64],
) -> TileTrace {
    trace_pipeline_with_buffers(load_cycles, compute_cycles, store_cycles, 2)
}

/// [`trace_pipeline`] with a configurable number of input buffers.
///
/// With `buffers = B`, the load of tile `i` may start once tile `i-(B-1)`
/// has *begun* computing (releasing its buffer slot). `B = 2` is the
/// classic double buffer; deeper buffering lets the DMA run ahead across
/// heterogeneous tiles — the `buffer_depth_closes_steady_state_gap` test
/// shows mixed-bitwidth tile streams need `B > 2` to reach the
/// steady-state `max(compute, memory)` bound.
///
/// # Panics
///
/// Panics if the slices differ in length or `buffers == 0`.
pub fn trace_pipeline_with_buffers(
    load_cycles: &[f64],
    compute_cycles: &[f64],
    store_cycles: &[f64],
    buffers: usize,
) -> TileTrace {
    assert!(buffers >= 1, "need at least one input buffer");
    let n = load_cycles.len();
    assert_eq!(n, compute_cycles.len());
    assert_eq!(n, store_cycles.len());
    if n == 0 {
        return TileTrace { events: Vec::new() };
    }
    // The shared DMA serves requests in ready order. Ready times:
    //   load(0)   at 0
    //   load(i+1) at compute_start(i)   (its buffer slot frees)
    //   store(i)  at compute_end(i)
    // Since compute_start(i) <= compute_end(i) <= compute_start(i+1) on a
    // single PE array, processing "load(i+1), then store(i)" inside
    // iteration i is exactly ready order.
    let mut load_start = vec![0.0f64; n];
    let mut load_end = vec![0.0f64; n];
    let mut compute_start = vec![0.0f64; n];
    let mut compute_end = vec![0.0f64; n];
    let mut store_start_v = vec![0.0f64; n];
    let mut store_end = vec![0.0f64; n];
    let mut pe_free = 0.0f64;
    // Prologue: the first load.
    load_end[0] = load_cycles[0];
    let mut dma_free = load_end[0];
    for i in 0..n {
        compute_start[i] = load_end[i].max(pe_free);
        compute_end[i] = compute_start[i] + compute_cycles[i];
        pe_free = compute_end[i];
        if i + 1 < n {
            // Buffer slot for load(i+1) frees when tile i+1-(B-1) starts
            // computing (B=2: the current tile i).
            let slot_owner = (i + 1).saturating_sub(buffers - 1).min(i);
            let buffer_ready = if buffers > i + 1 {
                0.0
            } else {
                compute_start[slot_owner]
            };
            load_start[i + 1] = dma_free.max(buffer_ready);
            load_end[i + 1] = load_start[i + 1] + load_cycles[i + 1];
            dma_free = load_end[i + 1];
        }
        store_start_v[i] = dma_free.max(compute_end[i]);
        store_end[i] = store_start_v[i] + store_cycles[i];
        // A zero-length store occupies no DMA time and must not stall
        // subsequent loads behind this tile's compute.
        if store_cycles[i] > 0.0 {
            dma_free = store_end[i];
        }
    }
    let events = (0..n)
        .map(|i| TileEvent {
            tile: i,
            load_start: load_start[i],
            load_end: load_end[i],
            compute_start: compute_start[i],
            compute_end: compute_end[i],
            store_start: store_start_v[i],
            store_end: store_end[i],
        })
        .collect();
    TileTrace { events }
}

/// Traces a uniform-tile op: `tiles` identical tiles with the given
/// per-tile costs.
pub fn trace_uniform(tiles: usize, load: f64, compute: f64, store: f64) -> TileTrace {
    trace_pipeline(
        &vec![load; tiles],
        &vec![compute; tiles],
        &vec![store; tiles],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let t = trace_pipeline(&[], &[], &[]);
        assert_eq!(t.latency(), 0.0);
        assert_eq!(t.compute_utilization(), 0.0);
    }

    #[test]
    fn single_tile_is_serial() {
        let t = trace_uniform(1, 10.0, 20.0, 5.0);
        assert_eq!(t.latency(), 35.0);
        assert_eq!(t.compute_busy(), 20.0);
    }

    #[test]
    fn compute_bound_pipeline_hides_memory() {
        // compute 20 vs load+store 10+2: steady state is compute-bound.
        let tiles = 100;
        let t = trace_uniform(tiles, 10.0, 20.0, 2.0);
        let steady = tiles as f64 * 20.0;
        // Latency = steady state + prologue (first load) + epilogue
        // (last store).
        assert!(t.latency() >= steady);
        assert!(
            t.latency() <= steady + 10.0 + 2.0 + 20.0,
            "latency {} too far above steady {}",
            t.latency(),
            steady
        );
        assert!(t.compute_utilization() > 0.95);
    }

    #[test]
    fn memory_bound_pipeline_hides_compute() {
        let tiles = 100;
        let t = trace_uniform(tiles, 30.0, 10.0, 10.0);
        let steady = tiles as f64 * 40.0; // shared DMA: load + store serialize
        assert!(t.latency() >= steady * 0.99);
        assert!(t.compute_utilization() < 0.5);
    }

    #[test]
    fn trace_matches_steady_state_model() {
        // The machine models use max(compute, memory); at realistic tile
        // counts the trace agrees within a few per mille.
        for (load, compute, store) in [(5.0, 20.0, 1.0), (20.0, 5.0, 10.0), (10.0, 10.0, 2.0)] {
            let tiles = 2000;
            let t = trace_uniform(tiles, load, compute, store);
            let ideal = (tiles as f64) * (compute.max(load + store));
            let rel = (t.latency() - ideal) / ideal;
            assert!(
                (0.0..0.01).contains(&rel),
                "load={load} compute={compute} store={store}: trace {} vs ideal {ideal}",
                t.latency()
            );
        }
    }

    #[test]
    fn events_are_causally_ordered() {
        let t = trace_uniform(50, 7.0, 13.0, 3.0);
        for e in &t.events {
            assert!(e.load_start <= e.load_end);
            assert!(e.load_end <= e.compute_start);
            assert!(e.compute_start <= e.compute_end);
            assert!(e.compute_end <= e.store_start);
            assert!(e.store_start <= e.store_end);
        }
        // PE never runs two tiles at once.
        for w in t.events.windows(2) {
            assert!(w[1].compute_start >= w[0].compute_end);
        }
    }

    #[test]
    fn heterogeneous_tiles_mixed_precision() {
        // Blocks at different bitwidths -> different compute costs per
        // tile; the pipeline must stay causal and the total busy time equal
        // the sum of costs.
        let compute: Vec<f64> = (0..64)
            .map(|i| match i % 4 {
                0 => 0.0, // skipped 0-bit block (dispatcher bypass)
                1 => 4.0,
                2 => 8.0,
                _ => 16.0,
            })
            .collect();
        let load = vec![2.0; 64];
        let store = vec![1.0; 64];
        let t = trace_pipeline(&load, &compute, &store);
        assert!((t.compute_busy() - compute.iter().sum::<f64>()).abs() < 1e-9);
        assert!(t.latency() >= t.compute_busy());
    }
}
