//! The block dispatcher (paper Sec. IV-B, end).
//!
//! Blocks of different bitwidths take different numbers of cycles on the
//! mixed-precision PE rows, so a dispatcher balances block-to-row
//! assignment and bypasses 0-bit blocks entirely. This module simulates
//! that assignment and reports the makespan and utilization — the
//! `dispatch` bench compares the policies.

use paro_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// Dispatch policy for assigning attention-map blocks to PE rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Greedy longest-processing-time-first: sort blocks by descending
    /// cost, always assign to the least-loaded row (the paper's
    /// load-balancing dispatcher).
    GreedyLpt,
    /// Naive static round-robin in block order (no load balancing).
    RoundRobin,
}

/// Outcome of dispatching a set of blocks onto parallel PE rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchOutcome {
    /// Cycles until the last row finishes (the attention op's latency).
    pub makespan: f64,
    /// Total useful cycles across rows divided by `rows x makespan`.
    pub utilization: f64,
    /// Number of blocks bypassed (0-bit).
    pub bypassed: usize,
}

/// Simulates dispatching blocks with the given per-block cycle costs onto
/// `rows` parallel rows.
///
/// Zero-cost blocks (0-bit, [`Bitwidth::B0`]) are bypassed: they consume a
/// single dispatcher-decision cycle rather than row time.
///
/// # Example
///
/// ```
/// use paro_sim::dispatch::{dispatch, DispatchPolicy};
/// // Four blocks (one skipped) onto two PE rows.
/// let out = dispatch(&[8.0, 0.0, 4.0, 4.0], 2, DispatchPolicy::GreedyLpt);
/// assert_eq!(out.bypassed, 1);
/// assert_eq!(out.makespan, 8.0); // {8} and {4,4} balance perfectly
/// assert!((out.utilization - 1.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `rows` is zero.
pub fn dispatch(costs: &[f64], rows: usize, policy: DispatchPolicy) -> DispatchOutcome {
    assert!(rows > 0, "dispatcher needs at least one PE row");
    let mut loads = vec![0.0f64; rows];
    let mut bypassed = 0usize;
    let mut decision_cycles = 0.0f64;
    match policy {
        DispatchPolicy::GreedyLpt => {
            let mut order: Vec<usize> = (0..costs.len()).collect();
            order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
            for idx in order {
                let c = costs[idx];
                if c <= 0.0 {
                    bypassed += 1;
                    decision_cycles += 1.0;
                    continue;
                }
                let (row, _) = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("rows > 0");
                loads[row] += c;
            }
        }
        DispatchPolicy::RoundRobin => {
            let mut next = 0usize;
            for &c in costs {
                if c <= 0.0 {
                    bypassed += 1;
                    decision_cycles += 1.0;
                    continue;
                }
                loads[next] += c;
                next = (next + 1) % rows;
            }
        }
    }
    let makespan_rows = loads.iter().copied().fold(0.0f64, f64::max);
    // Dispatcher decisions for bypassed blocks overlap row compute almost
    // entirely; charge them only when they exceed the row makespan
    // (pathological all-zero workloads).
    let makespan = makespan_rows.max(decision_cycles / rows as f64);
    let useful: f64 = loads.iter().sum();
    let utilization = if makespan > 0.0 {
        useful / (rows as f64 * makespan)
    } else {
        1.0
    };
    DispatchOutcome {
        makespan,
        utilization,
        bypassed,
    }
}

/// Per-block cycle costs for an attention-map block list, given the MACs of
/// one block at INT8 and each block's bitwidth.
pub fn block_costs(macs_per_block_int8: f64, bits: &[Bitwidth]) -> Vec<f64> {
    bits.iter()
        .map(|b| match b {
            Bitwidth::B0 => 0.0,
            Bitwidth::B2 => macs_per_block_int8 / 4.0,
            Bitwidth::B4 => macs_per_block_int8 / 2.0,
            Bitwidth::B8 => macs_per_block_int8,
        })
        .collect()
}

/// Predicted pool occupancy of one scheduler wave: the utilization an LPT
/// packing of the wave's head-task costs achieves on `workers` parallel
/// workers.
///
/// The serving work graph admits head tasks in waves (see
/// `docs/SCHEDULING.md`); this is the simulator-side prediction the
/// `paro soak-bench` report pairs with the *measured* `pool.execute`
/// busy fraction, so the continuous-batching claim has a model-side
/// reference. An empty wave predicts zero occupancy.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn predicted_wave_occupancy(costs: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "occupancy needs at least one worker");
    if costs.iter().all(|&c| c <= 0.0) {
        return 0.0;
    }
    dispatch(costs, workers, DispatchPolicy::GreedyLpt).utilization
}

/// One point of the predicted shard-scaling curve; see
/// [`predicted_shard_scaling`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScalingPoint {
    /// Shard count this point models.
    pub shards: usize,
    /// Predicted speedup over a single shard: `makespan(1) /
    /// makespan(shards)` under an LPT packing of the head costs (1.0 for
    /// an all-bypassed workload).
    pub predicted_speedup: f64,
    /// Predicted load imbalance in percent: how far the heaviest shard
    /// sits above the mean shard load, `(1/utilization − 1) × 100`.
    pub predicted_imbalance_pct: f64,
}

/// Models how a head workload scales when its per-head costs are packed
/// onto 1..=`max_shards` shard groups with the LPT dispatcher — the
/// roofline-style reference curve `paro shard-bench` pairs with the
/// measured shard throughput, exactly as [`predicted_wave_occupancy`]
/// pairs with the measured pool busy fraction.
///
/// # Panics
///
/// Panics if `max_shards` is zero.
pub fn predicted_shard_scaling(head_costs: &[f64], max_shards: usize) -> Vec<ShardScalingPoint> {
    assert!(max_shards > 0, "scaling curve needs at least one shard");
    let base = dispatch(head_costs, 1, DispatchPolicy::GreedyLpt).makespan;
    (1..=max_shards)
        .map(|shards| {
            let out = dispatch(head_costs, shards, DispatchPolicy::GreedyLpt);
            let predicted_speedup = if out.makespan > 0.0 && base > 0.0 {
                base / out.makespan
            } else {
                1.0
            };
            let predicted_imbalance_pct = if out.utilization > 0.0 {
                (1.0 / out.utilization - 1.0) * 100.0
            } else {
                0.0
            };
            ShardScalingPoint {
                shards,
                predicted_speedup,
                predicted_imbalance_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_occupancy_matches_lpt_utilization() {
        let costs = [8.0, 4.0, 4.0];
        let occ = predicted_wave_occupancy(&costs, 2);
        assert!((occ - 1.0).abs() < 1e-9, "{occ}");
        // One task on many workers: occupancy collapses to 1/workers.
        let occ = predicted_wave_occupancy(&[8.0], 4);
        assert!((occ - 0.25).abs() < 1e-9, "{occ}");
        assert_eq!(predicted_wave_occupancy(&[], 4), 0.0);
        assert_eq!(predicted_wave_occupancy(&[0.0, 0.0], 4), 0.0);
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_costs() {
        // Alternating heavy/zero costs: round-robin piles heavies onto the
        // same rows when zeros are interleaved; LPT spreads them.
        let costs: Vec<f64> = (0..64)
            .map(|i| if i % 4 == 0 { 16.0 } else { 1.0 })
            .collect();
        let lpt = dispatch(&costs, 8, DispatchPolicy::GreedyLpt);
        let rr = dispatch(&costs, 8, DispatchPolicy::RoundRobin);
        assert!(lpt.makespan <= rr.makespan);
        assert!(lpt.utilization >= rr.utilization);
    }

    #[test]
    fn uniform_costs_perfectly_balanced() {
        let costs = vec![4.0; 32];
        let out = dispatch(&costs, 8, DispatchPolicy::GreedyLpt);
        assert!((out.makespan - 16.0).abs() < 1e-9);
        assert!((out.utilization - 1.0).abs() < 1e-9);
        assert_eq!(out.bypassed, 0);
    }

    #[test]
    fn zero_bit_blocks_bypassed() {
        let costs = vec![0.0, 8.0, 0.0, 8.0];
        let out = dispatch(&costs, 2, DispatchPolicy::GreedyLpt);
        assert_eq!(out.bypassed, 2);
        assert!((out.makespan - 8.0).abs() < 1e-9);
    }

    #[test]
    fn all_blocks_bypassed_costs_only_decisions() {
        let costs = vec![0.0; 16];
        let out = dispatch(&costs, 4, DispatchPolicy::GreedyLpt);
        assert_eq!(out.bypassed, 16);
        assert!((out.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved() {
        // Total useful row time must equal the sum of nonzero costs under
        // both policies.
        let costs: Vec<f64> = (0..37).map(|i| (i % 5) as f64).collect();
        let total: f64 = costs.iter().sum();
        for policy in [DispatchPolicy::GreedyLpt, DispatchPolicy::RoundRobin] {
            let out = dispatch(&costs, 6, policy);
            let useful = out.utilization * 6.0 * out.makespan;
            assert!(
                (useful - total).abs() < 1e-6,
                "{policy:?}: useful {useful} vs total {total}"
            );
        }
    }

    #[test]
    fn shard_scaling_curve_is_monotone_and_anchored_at_one() {
        let costs = [8.0, 4.0, 4.0, 2.0, 2.0, 1.0, 1.0, 2.0];
        let curve = predicted_shard_scaling(&costs, 4);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].shards, 1);
        assert!((curve[0].predicted_speedup - 1.0).abs() < 1e-9);
        assert!(curve[0].predicted_imbalance_pct.abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1].predicted_speedup >= w[0].predicted_speedup - 1e-9);
        }
        // Eight units of 24 total cost over 2 shards split {12, 12}.
        assert!((curve[1].predicted_speedup - 2.0).abs() < 1e-9);
        assert!(curve[1].predicted_imbalance_pct < 1e-9);
    }

    #[test]
    fn shard_scaling_handles_bypassed_only_workloads() {
        let curve = predicted_shard_scaling(&[0.0, 0.0], 3);
        for point in &curve {
            assert!(point.predicted_speedup >= 1.0 - 1e-9);
            assert!(point.predicted_imbalance_pct.is_finite());
        }
        let empty = predicted_shard_scaling(&[], 2);
        assert_eq!(empty.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn shard_scaling_rejects_zero_shards() {
        predicted_shard_scaling(&[1.0], 0);
    }

    #[test]
    fn block_costs_follow_bitwidths() {
        let costs = block_costs(
            100.0,
            &[Bitwidth::B0, Bitwidth::B2, Bitwidth::B4, Bitwidth::B8],
        );
        assert_eq!(costs, vec![0.0, 25.0, 50.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rows_rejected() {
        dispatch(&[1.0], 0, DispatchPolicy::GreedyLpt);
    }
}
