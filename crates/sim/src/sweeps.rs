//! Hardware design-space sweeps around the PARO operating point.
//!
//! The paper fixes one configuration (32x32x32 PEs, 51.2 GB/s, 1.5 MB);
//! these sweeps show how the end-to-end latency responds to each resource
//! — the roofline context that explains why the A100 comparison needed
//! resource alignment, and which resource PARO should scale next.

use crate::machines::{Machine, ParoMachine, ParoOptimizations};
use crate::{AttentionProfile, HardwareConfig};
use paro_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept resource's value (in its natural unit).
    pub value: f64,
    /// End-to-end seconds at this point.
    pub seconds: f64,
    /// Speedup relative to the sweep's baseline configuration.
    pub speedup_vs_base: f64,
}

/// Which hardware resource a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Peak INT8 MACs/cycle (PE count).
    PeMacs,
    /// DRAM bandwidth in GB/s.
    DramBandwidth,
    /// Vector-unit lanes (ops/cycle).
    VectorLanes,
    /// On-chip SRAM bytes. Unlike the other axes this one is non-linear:
    /// shrinking the buffer past the attention-map row-panel size triggers
    /// the spill cliff even for the 4.8-bit map.
    SramBytes,
}

impl SweepAxis {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::PeMacs => "pe_macs_per_cycle",
            SweepAxis::DramBandwidth => "dram_gbps",
            SweepAxis::VectorLanes => "vector_lanes",
            SweepAxis::SramBytes => "sram_bytes",
        }
    }

    fn apply(&self, base: &HardwareConfig, factor: f64) -> HardwareConfig {
        let mut hw = base.clone();
        match self {
            SweepAxis::PeMacs => {
                hw.int8_macs_per_cycle =
                    ((hw.int8_macs_per_cycle as f64 * factor).round() as u64).max(1);
            }
            SweepAxis::DramBandwidth => hw.dram_gbps *= factor,
            SweepAxis::VectorLanes => {
                hw.vector_ops_per_cycle =
                    ((hw.vector_ops_per_cycle as f64 * factor).round() as u64).max(1);
            }
            SweepAxis::SramBytes => {
                hw.sram_bytes = ((hw.sram_bytes as f64 * factor).round() as u64).max(1);
            }
        }
        hw
    }

    fn value_of(&self, hw: &HardwareConfig) -> f64 {
        match self {
            SweepAxis::PeMacs => hw.int8_macs_per_cycle as f64,
            SweepAxis::DramBandwidth => hw.dram_gbps,
            SweepAxis::VectorLanes => hw.vector_ops_per_cycle as f64,
            SweepAxis::SramBytes => hw.sram_bytes as f64,
        }
    }
}

/// Sweeps one resource over multiplicative `factors` (1.0 = the baseline)
/// and returns one point per factor.
pub fn sweep(
    axis: SweepAxis,
    base: &HardwareConfig,
    factors: &[f64],
    cfg: &ModelConfig,
    profile: &AttentionProfile,
) -> Vec<SweepPoint> {
    let base_seconds = ParoMachine::new(base.clone(), ParoOptimizations::all())
        .run_model(cfg, profile)
        .seconds;
    factors
        .iter()
        .map(|&f| {
            let hw = axis.apply(base, f);
            let seconds = ParoMachine::new(hw.clone(), ParoOptimizations::all())
                .run_model(cfg, profile)
                .seconds;
            SweepPoint {
                value: axis.value_of(&hw),
                seconds,
                speedup_vs_base: base_seconds / seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (HardwareConfig, ModelConfig, AttentionProfile) {
        (
            HardwareConfig::paro_asic(),
            ModelConfig::cogvideox_2b(),
            AttentionProfile::paper_mp(),
        )
    }

    #[test]
    fn more_resources_never_slower() {
        let (hw, cfg, p) = setup();
        for axis in [
            SweepAxis::PeMacs,
            SweepAxis::DramBandwidth,
            SweepAxis::VectorLanes,
            SweepAxis::SramBytes,
        ] {
            let points = sweep(axis, &hw, &[0.5, 1.0, 2.0, 4.0], &cfg, &p);
            for w in points.windows(2) {
                assert!(
                    w[1].seconds <= w[0].seconds + 1e-9,
                    "{}: latency must be non-increasing in resources",
                    axis.label()
                );
            }
            // Factor 1.0 is the baseline.
            assert!((points[1].speedup_vs_base - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn compute_scaling_saturates() {
        // Past some point more PEs stop helping (memory/vector bound):
        // the marginal speedup of 8x PEs over 4x must be below the ideal 2x.
        let (hw, cfg, p) = setup();
        let points = sweep(SweepAxis::PeMacs, &hw, &[4.0, 8.0], &cfg, &p);
        let marginal = points[0].seconds / points[1].seconds;
        assert!(
            marginal < 1.9,
            "8x/4x PE marginal speedup {marginal} should saturate below 1.9"
        );
    }

    #[test]
    fn shrinking_sram_triggers_the_spill_cliff() {
        // At 1/8 the SRAM, even the 4.8-bit map's row panels overflow and
        // the machine starts paying DRAM spills — the non-linear cliff the
        // buffer planner predicts.
        let (hw, cfg, p) = setup();
        let points = sweep(SweepAxis::SramBytes, &hw, &[0.125, 1.0], &cfg, &p);
        assert!(
            points[0].seconds > points[1].seconds * 1.2,
            "small SRAM should cliff: {:.1}s vs {:.1}s",
            points[0].seconds,
            points[1].seconds
        );
        // The cliff matches the buffer planner's verdict.
        let mut small = hw.clone();
        small.sram_bytes /= 8;
        assert!(crate::buffer::paro_attention_plan(&small, &cfg, 4.8).is_err());
        assert!(crate::buffer::paro_attention_plan(&hw, &cfg, 4.8).is_ok());
    }

    #[test]
    fn bandwidth_matters_less_than_compute_at_baseline() {
        // The paper's PARO is compute-bound at its operating point: doubling
        // PEs should help more than doubling DRAM bandwidth.
        let (hw, cfg, p) = setup();
        let pe = sweep(SweepAxis::PeMacs, &hw, &[2.0], &cfg, &p)[0].speedup_vs_base;
        let bw = sweep(SweepAxis::DramBandwidth, &hw, &[2.0], &cfg, &p)[0].speedup_vs_base;
        assert!(
            pe > bw,
            "2x PEs ({pe:.3}x) should beat 2x bandwidth ({bw:.3}x)"
        );
    }
}
