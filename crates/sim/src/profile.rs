use crate::SimError;
use paro_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// The precision mix of an attention map: the fraction of quantization
/// blocks at each bitwidth in `{0, 2, 4, 8}`.
///
/// # Example
///
/// ```
/// use paro_sim::AttentionProfile;
/// let p = AttentionProfile::paper_mp();
/// assert!((p.avg_bits() - 4.8).abs() < 1e-9);
/// // The PE array converts the bit mix into compute speedup over INT8.
/// assert!((1.0 / p.inverse_throughput() - 8.0 / 4.8).abs() < 1e-9);
/// ```
///
/// The performance simulator consumes this summary instead of concrete
/// per-head allocations: the PE-mode speedups, dispatcher behavior and
/// packed-map traffic all depend only on the bit distribution. Profiles can
/// be built from a real [`paro_core::allocate::BitAllocation`] (see
/// [`AttentionProfile::from_bits`]) or from the paper's reported operating
/// point ([`AttentionProfile::paper_mp`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionProfile {
    /// Block fraction at each bitwidth, indexed like [`Bitwidth::ALL`].
    shares: [f64; 4],
}

impl AttentionProfile {
    /// Builds a profile from explicit shares `[b0, b2, b4, b8]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProfile`] if any share is negative or the sum
    /// differs from 1 by more than 1e-6.
    pub fn new(shares: [f64; 4]) -> Result<Self, SimError> {
        if shares.iter().any(|&s| s < 0.0 || !s.is_finite()) {
            return Err(SimError::BadProfile {
                reason: format!("negative or non-finite share in {shares:?}"),
            });
        }
        let total: f64 = shares.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(SimError::BadProfile {
                reason: format!("shares sum to {total}, expected 1"),
            });
        }
        Ok(AttentionProfile { shares })
    }

    /// The paper's mixed-precision operating point: an average of 4.80
    /// bits with a substantial 0-bit (skipped) share.
    pub fn paper_mp() -> Self {
        // 10% skipped, 20% at 2b, 30% at 4b, 40% at 8b -> avg 4.80 bits.
        AttentionProfile {
            shares: [0.10, 0.20, 0.30, 0.40],
        }
    }

    /// A uniform fixed-precision profile (every block at `bits`).
    pub fn uniform(bits: Bitwidth) -> Self {
        let mut shares = [0.0; 4];
        let j = Bitwidth::ALL
            .iter()
            .position(|&b| b == bits)
            .expect("Bitwidth::ALL covers every variant");
        shares[j] = 1.0;
        AttentionProfile { shares }
    }

    /// Derives a profile from a concrete per-block bit assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProfile`] if `bits` is empty.
    pub fn from_bits(bits: &[Bitwidth]) -> Result<Self, SimError> {
        if bits.is_empty() {
            return Err(SimError::BadProfile {
                reason: "empty bit assignment".to_string(),
            });
        }
        let mut shares = [0.0f64; 4];
        for &b in bits {
            let j = Bitwidth::ALL
                .iter()
                .position(|&x| x == b)
                .expect("Bitwidth::ALL covers every variant");
            shares[j] += 1.0;
        }
        for s in &mut shares {
            *s /= bits.len() as f64;
        }
        Ok(AttentionProfile { shares })
    }

    /// Share of blocks at a bitwidth.
    pub fn share(&self, bits: Bitwidth) -> f64 {
        let j = Bitwidth::ALL
            .iter()
            .position(|&b| b == bits)
            .expect("Bitwidth::ALL covers every variant");
        self.shares[j]
    }

    /// Average bitwidth of the profile.
    pub fn avg_bits(&self) -> f64 {
        Bitwidth::ALL
            .iter()
            .map(|&b| self.share(b) * b.bits() as f64)
            .sum()
    }

    /// The reciprocal-throughput factor of a MAC workload whose low-bit
    /// operand follows this profile on the mixed-precision PE array:
    /// `Σ share(b) / speedup(b)` with speedup 4/2/1 for 2/4/8 bits and
    /// skipped work for 0 bits. The effective speedup over INT8 is the
    /// reciprocal of this value.
    pub fn inverse_throughput(&self) -> f64 {
        self.share(Bitwidth::B2) / 4.0
            + self.share(Bitwidth::B4) / 2.0
            + self.share(Bitwidth::B8) / 1.0
    }

    /// Average stored bits per attention-map element under this profile
    /// (drives packed-map traffic if the map ever spills).
    pub fn storage_bits(&self) -> f64 {
        self.avg_bits()
    }

    /// Fraction of map elements living in 0-bit (skipped) blocks.
    pub fn skip_fraction(&self) -> f64 {
        self.share(Bitwidth::B0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mp_is_4_80_bits() {
        let p = AttentionProfile::paper_mp();
        assert!((p.avg_bits() - 4.80).abs() < 1e-9);
        assert!((p.skip_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn uniform_profiles() {
        let p = AttentionProfile::uniform(Bitwidth::B8);
        assert_eq!(p.avg_bits(), 8.0);
        assert_eq!(p.inverse_throughput(), 1.0);
        let p = AttentionProfile::uniform(Bitwidth::B2);
        assert_eq!(p.inverse_throughput(), 0.25);
        let p = AttentionProfile::uniform(Bitwidth::B0);
        assert_eq!(p.inverse_throughput(), 0.0);
    }

    #[test]
    fn mixed_speedup_equals_avg_bits_ratio() {
        // For bit options {0,2,4,8} with speedups {skip,4x,2x,1x}, the
        // inverse throughput is identically avg_bits/8: each block's cycle
        // share is proportional to its bitwidth. The PE array therefore
        // converts the 4.80-bit average directly into a 8/4.8 = 1.67x
        // compute speedup over INT8 (before dispatcher effects).
        let p = AttentionProfile::paper_mp();
        let speedup = 1.0 / p.inverse_throughput();
        assert!((speedup - 8.0 / p.avg_bits()).abs() < 1e-9);
        assert!((speedup - 1.0 / (0.2 / 4.0 + 0.3 / 2.0 + 0.4)).abs() < 1e-9);
    }

    #[test]
    fn from_bits_counts_correctly() {
        let bits = [Bitwidth::B0, Bitwidth::B8, Bitwidth::B8, Bitwidth::B4];
        let p = AttentionProfile::from_bits(&bits).unwrap();
        assert_eq!(p.share(Bitwidth::B0), 0.25);
        assert_eq!(p.share(Bitwidth::B8), 0.5);
        assert_eq!(p.share(Bitwidth::B4), 0.25);
        assert_eq!(p.share(Bitwidth::B2), 0.0);
        assert!(AttentionProfile::from_bits(&[]).is_err());
    }

    #[test]
    fn validation() {
        assert!(AttentionProfile::new([0.25, 0.25, 0.25, 0.25]).is_ok());
        assert!(AttentionProfile::new([0.5, 0.5, 0.5, -0.5]).is_err());
        assert!(AttentionProfile::new([0.3, 0.3, 0.3, 0.3]).is_err());
        assert!(AttentionProfile::new([f64::NAN, 0.0, 0.0, 1.0]).is_err());
    }
}
