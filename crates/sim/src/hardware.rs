use crate::SimError;
use serde::{Deserialize, Serialize};

/// A hardware resource budget shared by every simulated machine.
///
/// The paper compares PARO against Sanger and ViTCoD "under the same
/// hardware resource constraints" and against an A100 by aligning "peak
/// computing performance, memory bandwidth, frequency, on-chip buffer
/// size" — this struct is that resource envelope.
///
/// # Example
///
/// ```
/// use paro_sim::HardwareConfig;
/// let hw = HardwareConfig::paro_asic();
/// assert_eq!(hw.int8_macs_per_cycle, 32 * 32 * 32);
/// assert!(hw.validate().is_ok());
/// // 51.2 GB/s at 1 GHz = 51.2 bytes per cycle.
/// assert!((hw.dram_bytes_per_cycle() - 51.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Machine label for reports.
    pub name: String,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Peak INT8 multiply-accumulates per cycle across all PE arrays
    /// (FP16 runs at half this rate: an FP16 MAC occupies two INT8 lanes,
    /// matching the PE-area equivalence the paper's comparison assumes).
    pub int8_macs_per_cycle: u64,
    /// FP vector-unit throughput in elementwise operations per cycle
    /// (softmax exp/add/div, dequantization, accumulation).
    pub vector_ops_per_cycle: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// On-chip SRAM in bytes.
    pub sram_bytes: u64,
}

impl HardwareConfig {
    /// The PARO ASIC of Table II: 32x32x32 PEs at 1 GHz, 51.2 GB/s DDR,
    /// 1.5 MB SRAM.
    pub fn paro_asic() -> Self {
        HardwareConfig {
            name: "PARO".to_string(),
            freq_ghz: 1.0,
            int8_macs_per_cycle: 32 * 32 * 32,
            vector_ops_per_cycle: 2048,
            dram_gbps: 51.2,
            sram_bytes: 3 * 512 * 1024, // 1.5 MB
        }
    }

    /// An NVIDIA A100 (SXM, 80 GB) resource envelope: 312 TFLOPS FP16
    /// (156e12 MACs/s), ~2.0 TB/s HBM2e, 40 MB L2 as the on-chip buffer.
    pub fn a100() -> Self {
        HardwareConfig {
            name: "A100".to_string(),
            freq_ghz: 1.41,
            // 312 TFLOPS FP16 = 156e12 FP16 MACs/s; in this model FP16 runs
            // at half the INT8 rate, so the INT8 peak is 312e12 MACs/s
            // (matching the A100's 624 TOPS INT8 tensor-core peak).
            int8_macs_per_cycle: (312e12 / 1.41e9) as u64,
            // CUDA-core FP32 throughput for softmax-class work:
            // 19.5 TFLOPS -> ~13.8e3 ops/cycle.
            vector_ops_per_cycle: (19.5e12 / 1.41e9) as u64,
            dram_gbps: 2039.0,
            sram_bytes: 40 * 1024 * 1024,
        }
    }

    /// PARO with its resource envelope aligned to the A100 ("PARO-align-
    /// A100" in Fig. 6(a)): same peak ops, bandwidth, frequency and buffer.
    pub fn paro_align_a100() -> Self {
        let a100 = HardwareConfig::a100();
        HardwareConfig {
            name: "PARO-align-A100".to_string(),
            ..a100
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadHardwareConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.freq_ghz <= 0.0 || self.freq_ghz.is_nan() {
            return Err(SimError::BadHardwareConfig {
                field: "freq_ghz",
                value: self.freq_ghz,
            });
        }
        if self.int8_macs_per_cycle == 0 {
            return Err(SimError::BadHardwareConfig {
                field: "int8_macs_per_cycle",
                value: 0.0,
            });
        }
        if self.vector_ops_per_cycle == 0 {
            return Err(SimError::BadHardwareConfig {
                field: "vector_ops_per_cycle",
                value: 0.0,
            });
        }
        if self.dram_gbps <= 0.0 || self.dram_gbps.is_nan() {
            return Err(SimError::BadHardwareConfig {
                field: "dram_gbps",
                value: self.dram_gbps,
            });
        }
        if self.sram_bytes == 0 {
            return Err(SimError::BadHardwareConfig {
                field: "sram_bytes",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// DRAM bytes transferable per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps / self.freq_ghz
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paro_asic_matches_table2() {
        let hw = HardwareConfig::paro_asic();
        assert_eq!(hw.int8_macs_per_cycle, 32768);
        assert_eq!(hw.sram_bytes, 1536 * 1024);
        assert!((hw.dram_gbps - 51.2).abs() < 1e-9);
        assert!(hw.validate().is_ok());
        // Peak INT8 throughput: 32768 MACs/cycle at 1 GHz = 65.5 TOPS.
        let tops = hw.int8_macs_per_cycle as f64 * 2.0 * hw.freq_ghz / 1e3;
        assert!((tops - 65.536).abs() < 0.01);
    }

    #[test]
    fn a100_envelope_is_larger() {
        let paro = HardwareConfig::paro_asic();
        let a100 = HardwareConfig::a100();
        assert!(a100.int8_macs_per_cycle > paro.int8_macs_per_cycle);
        assert!(a100.dram_gbps > paro.dram_gbps * 10.0);
        assert!(a100.validate().is_ok());
    }

    #[test]
    fn align_shares_a100_resources() {
        let a100 = HardwareConfig::a100();
        let align = HardwareConfig::paro_align_a100();
        assert_eq!(align.int8_macs_per_cycle, a100.int8_macs_per_cycle);
        assert_eq!(align.dram_gbps, a100.dram_gbps);
        assert_ne!(align.name, a100.name);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut hw = HardwareConfig::paro_asic();
        hw.freq_ghz = 0.0;
        assert!(hw.validate().is_err());
        let mut hw = HardwareConfig::paro_asic();
        hw.dram_gbps = -1.0;
        assert!(hw.validate().is_err());
        let mut hw = HardwareConfig::paro_asic();
        hw.int8_macs_per_cycle = 0;
        assert!(hw.validate().is_err());
    }

    #[test]
    fn unit_conversions() {
        let hw = HardwareConfig::paro_asic();
        assert!((hw.dram_bytes_per_cycle() - 51.2).abs() < 1e-9);
        assert!((hw.cycles_to_seconds(1e9) - 1.0).abs() < 1e-12);
    }
}
