//! Area, power and energy models (paper Table II).
//!
//! The component table reproduces the paper's synthesis results (TSMC
//! 12 nm, 1 GHz, Synopsys DC + CACTI 7) and scales with configuration so
//! ablation configs get consistent costs. Per-operation dynamic energies
//! are derived from component power at full utilization — e.g. the PE
//! array's 3.60 W across 32768 INT8 MACs/cycle at 1 GHz gives
//! ~0.11 pJ per INT8 MAC.

use crate::HardwareConfig;
use serde::{Deserialize, Serialize};

/// One row of the area/power breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentCost {
    /// Component name as it appears in Table II.
    pub name: String,
    /// Configuration description.
    pub config: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

/// The full cost model of an accelerator configuration.
///
/// # Example
///
/// ```
/// use paro_sim::cost::CostModel;
/// use paro_sim::HardwareConfig;
/// let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
/// // Reproduces the paper's Table II totals.
/// assert!((cm.total_area_mm2() - 8.17).abs() < 0.02);
/// assert!((cm.total_power_w() - 11.20).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    components: Vec<ComponentCost>,
}

/// Reference area of the 32x32x32 PE array (mm², TSMC 12 nm).
const PE_ARRAY_AREA: f64 = 2.52;
/// Reference power of the 32x32x32 PE array (W).
const PE_ARRAY_POWER: f64 = 3.60;
/// Reference LDZ-unit bank area/power (one bank per PE row).
const LDZ_AREA: f64 = 0.65;
const LDZ_POWER: f64 = 0.78;
/// Dispatcher and other PE-array periphery.
const OTHERS_AREA: f64 = 0.39;
const OTHERS_POWER: f64 = 0.54;
/// Vector unit (exp/div/add/mult/accumulate lanes).
const VECTOR_AREA: f64 = 2.79;
const VECTOR_POWER: f64 = 4.55;
/// 1.5 MB SRAM buffer.
const BUFFER_AREA: f64 = 1.82;
const BUFFER_POWER: f64 = 1.73;
/// Reference MAC budget the component table was synthesized for.
const REF_MACS: f64 = 32.0 * 32.0 * 32.0;
/// Reference vector lanes.
const REF_LANES: f64 = 2048.0;
/// Reference buffer bytes.
const REF_BUFFER: f64 = 1.5 * 1024.0 * 1024.0;

impl CostModel {
    /// The PARO ASIC cost model, scaled to the given hardware envelope
    /// (the Table II numbers exactly, when given
    /// [`HardwareConfig::paro_asic`]).
    pub fn for_hardware(hw: &HardwareConfig) -> Self {
        let mac_scale = hw.int8_macs_per_cycle as f64 / REF_MACS;
        let lane_scale = hw.vector_ops_per_cycle as f64 / REF_LANES;
        let buf_scale = hw.sram_bytes as f64 / REF_BUFFER;
        CostModel {
            components: vec![
                ComponentCost {
                    name: "PE Array".to_string(),
                    config: "32x32x32 PEs".to_string(),
                    area_mm2: PE_ARRAY_AREA * mac_scale,
                    power_w: PE_ARRAY_POWER * mac_scale,
                },
                ComponentCost {
                    name: "Leading Zero Unit".to_string(),
                    config: "per PE row".to_string(),
                    area_mm2: LDZ_AREA * mac_scale,
                    power_w: LDZ_POWER * mac_scale,
                },
                ComponentCost {
                    name: "Others".to_string(),
                    config: "dispatcher etc.".to_string(),
                    area_mm2: OTHERS_AREA * mac_scale,
                    power_w: OTHERS_POWER * mac_scale,
                },
                ComponentCost {
                    name: "Vector Unit".to_string(),
                    config: "Exp/Div/Add/Mult/Acc.".to_string(),
                    area_mm2: VECTOR_AREA * lane_scale,
                    power_w: VECTOR_POWER * lane_scale,
                },
                ComponentCost {
                    name: "Buffer".to_string(),
                    config: "1.5 MB SRAM".to_string(),
                    area_mm2: BUFFER_AREA * buf_scale,
                    power_w: BUFFER_POWER * buf_scale,
                },
            ],
        }
    }

    /// Component rows.
    pub fn components(&self) -> &[ComponentCost] {
        &self.components
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }
}

/// Per-operation dynamic energy table, in picojoules.
///
/// Derived from the Table II component powers at full utilization, plus
/// standard DRAM access energy for a DDR4-class interface at 12 nm-era
/// systems.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one INT8 MAC (pJ).
    pub int8_mac_pj: f64,
    /// Energy of one FP16 MAC (pJ) — about 4x the INT8 energy.
    pub fp16_mac_pj: f64,
    /// Energy of one vector-unit elementwise FP op (pJ).
    pub vector_op_pj: f64,
    /// Energy per DRAM byte (pJ).
    pub dram_byte_pj: f64,
    /// Energy per SRAM byte touched (pJ).
    pub sram_byte_pj: f64,
    /// Static (leakage + clock) power in watts, charged over latency.
    pub static_w: f64,
}

impl EnergyModel {
    /// The PARO ASIC energy model.
    pub fn paro_asic() -> Self {
        // PE array: 3.60 W / (32768 MACs/cycle x 1 GHz) = 0.1099 pJ/MAC.
        let int8_mac_pj = PE_ARRAY_POWER / (REF_MACS * 1e9) * 1e12;
        EnergyModel {
            int8_mac_pj,
            fp16_mac_pj: int8_mac_pj * 4.0,
            // Vector: 4.55 W / 2.048e12 ops/s = 2.22 pJ/op.
            vector_op_pj: VECTOR_POWER / 2.048e12 * 1e12,
            dram_byte_pj: 20.0,
            sram_byte_pj: 0.6,
            // Leakage + clock tree + controller: a substantial share of the
            // 11.2 W Table II total is not activity-proportional. Sized so
            // the simulated average power matches the synthesized total.
            static_w: 7.0,
        }
    }

    /// A GPU-class energy model (A100): higher per-op energies (large-die
    /// overheads) and a large static share.
    pub fn a100() -> Self {
        EnergyModel {
            int8_mac_pj: 0.55,
            fp16_mac_pj: 1.1,
            vector_op_pj: 6.0,
            dram_byte_pj: 28.0,
            sram_byte_pj: 1.2,
            static_w: 90.0,
        }
    }

    /// Energy of a MAC at a PE mode's effective bitwidth: lower-bit modes
    /// finish more multiplications per cycle at the same array power, so
    /// the per-*nominal*-MAC energy falls with the speedup factor.
    pub fn mac_pj_at_speedup(&self, speedup: f64) -> f64 {
        self.int8_mac_pj / speedup.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_reproduced() {
        let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
        assert!(
            (cm.total_area_mm2() - 8.17).abs() < 0.01,
            "total area {}",
            cm.total_area_mm2()
        );
        assert!(
            (cm.total_power_w() - 11.20).abs() < 0.01,
            "total power {}",
            cm.total_power_w()
        );
        assert_eq!(cm.components().len(), 5);
    }

    #[test]
    fn table2_component_shares() {
        // Spot-check the published shares: PE array 30.8% area, vector
        // unit 40.6% power.
        let cm = CostModel::for_hardware(&HardwareConfig::paro_asic());
        let pe = &cm.components()[0];
        assert!((pe.area_mm2 / cm.total_area_mm2() - 0.308).abs() < 0.005);
        let vec = &cm.components()[3];
        assert!((vec.power_w / cm.total_power_w() - 0.406).abs() < 0.005);
    }

    #[test]
    fn costs_scale_with_config() {
        let mut hw = HardwareConfig::paro_asic();
        hw.int8_macs_per_cycle *= 2;
        let cm = CostModel::for_hardware(&hw);
        let base = CostModel::for_hardware(&HardwareConfig::paro_asic());
        assert!(cm.total_area_mm2() > base.total_area_mm2() * 1.3);
        // Vector and buffer unchanged.
        assert_eq!(cm.components()[3].area_mm2, base.components()[3].area_mm2);
        assert_eq!(cm.components()[4].area_mm2, base.components()[4].area_mm2);
    }

    #[test]
    fn energy_magnitudes_sane() {
        let e = EnergyModel::paro_asic();
        assert!(
            e.int8_mac_pj > 0.05 && e.int8_mac_pj < 0.5,
            "{}",
            e.int8_mac_pj
        );
        assert!(e.fp16_mac_pj > e.int8_mac_pj);
        assert!(e.dram_byte_pj > e.sram_byte_pj * 5.0);
        let gpu = EnergyModel::a100();
        assert!(gpu.int8_mac_pj > e.int8_mac_pj);
        assert!(gpu.static_w > e.static_w * 10.0);
    }

    #[test]
    fn speedup_divides_mac_energy() {
        let e = EnergyModel::paro_asic();
        assert!((e.mac_pj_at_speedup(4.0) - e.int8_mac_pj / 4.0).abs() < 1e-12);
        assert!((e.mac_pj_at_speedup(1.0) - e.int8_mac_pj).abs() < 1e-12);
    }
}
