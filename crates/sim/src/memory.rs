use crate::HardwareConfig;
use serde::{Deserialize, Serialize};

/// The memory system: DDR bandwidth model with SRAM double buffering.
///
/// The simulator charges every off-chip transfer at the configured
/// bandwidth and lets compute overlap memory perfectly when double
/// buffering applies (the per-op latency is `max(compute, memory)`), which
/// is the standard idealization for weight/activation streaming on
/// accelerators with split input/output buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    bytes_per_cycle: f64,
    sram_bytes: u64,
    traffic_bytes: f64,
}

impl MemorySystem {
    /// Builds the memory model from a hardware envelope.
    pub fn new(hw: &HardwareConfig) -> Self {
        MemorySystem {
            bytes_per_cycle: hw.dram_bytes_per_cycle(),
            sram_bytes: hw.sram_bytes,
            traffic_bytes: 0.0,
        }
    }

    /// Cycles to move `bytes` across the DRAM interface, also recording the
    /// traffic for energy accounting.
    pub fn transfer_cycles(&mut self, bytes: f64) -> f64 {
        self.traffic_bytes += bytes.max(0.0);
        bytes.max(0.0) / self.bytes_per_cycle
    }

    /// Cycles to move `bytes` without recording traffic (what-if queries).
    pub fn transfer_cycles_dry(&self, bytes: f64) -> f64 {
        bytes.max(0.0) / self.bytes_per_cycle
    }

    /// Total DRAM traffic recorded so far, in bytes.
    pub fn traffic_bytes(&self) -> f64 {
        self.traffic_bytes
    }

    /// On-chip SRAM capacity in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.sram_bytes
    }

    /// Whether a working set fits on chip (determines when intermediate
    /// tensors — e.g. an attention-map row panel — avoid the DRAM
    /// round-trip).
    pub fn fits_on_chip(&self, bytes: u64) -> bool {
        // Double buffering halves the usable capacity.
        bytes <= self.sram_bytes / 2
    }

    /// Resets the traffic counter.
    pub fn reset_traffic(&mut self) {
        self.traffic_bytes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(&HardwareConfig::paro_asic())
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let mut m = mem();
        // 51.2 GB/s at 1 GHz = 51.2 B/cycle.
        let cycles = m.transfer_cycles(512.0);
        assert!((cycles - 10.0).abs() < 1e-9);
        assert_eq!(m.traffic_bytes(), 512.0);
    }

    #[test]
    fn traffic_accumulates_and_resets() {
        let mut m = mem();
        m.transfer_cycles(100.0);
        m.transfer_cycles(200.0);
        assert_eq!(m.traffic_bytes(), 300.0);
        m.reset_traffic();
        assert_eq!(m.traffic_bytes(), 0.0);
    }

    #[test]
    fn dry_transfer_records_nothing() {
        let m = mem();
        assert!((m.transfer_cycles_dry(512.0) - 10.0).abs() < 1e-9);
        assert_eq!(m.traffic_bytes(), 0.0);
    }

    #[test]
    fn negative_bytes_clamped() {
        let mut m = mem();
        assert_eq!(m.transfer_cycles(-5.0), 0.0);
        assert_eq!(m.traffic_bytes(), 0.0);
    }

    #[test]
    fn on_chip_fit_uses_half_capacity() {
        let m = mem();
        assert!(m.fits_on_chip(700 * 1024));
        assert!(!m.fits_on_chip(800 * 1024));
    }

    #[test]
    fn attention_row_panel_fits_but_full_map_does_not() {
        // A 32-row x 17.8k-col INT8 score panel (~0.57 MB) fits the 1.5 MB
        // SRAM with double buffering; the full map (~300 MB/head) does not.
        // This is the dataflow fact that keeps PARO's attention map
        // on-chip.
        let m = mem();
        let panel = 32u64 * 17_776;
        let full = 17_776u64 * 17_776;
        assert!(m.fits_on_chip(panel));
        assert!(!m.fits_on_chip(full));
    }
}
