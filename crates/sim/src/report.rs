use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Category of an accounted operation, for latency breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Weight-bearing linear layers (QKV/O projections, FFN).
    Linear,
    /// The `Q·Kᵀ` score computation.
    QkT,
    /// Softmax and related vector work.
    Softmax,
    /// The `Attn·V` computation.
    AttnV,
    /// Token reorder (PARO only).
    Reorder,
    /// Sparsity prediction / preprocessing passes (baselines).
    Prediction,
}

impl OpCategory {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            OpCategory::Linear => "linear",
            OpCategory::QkT => "qk_t",
            OpCategory::Softmax => "softmax",
            OpCategory::AttnV => "attn_v",
            OpCategory::Reorder => "reorder",
            OpCategory::Prediction => "prediction",
        }
    }
}

/// One accounted operation within a transformer block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Human-readable op name.
    pub name: String,
    /// Breakdown category.
    pub category: OpCategory,
    /// Cycles the compute units are busy.
    pub compute_cycles: f64,
    /// Cycles the DRAM interface is busy.
    pub memory_cycles: f64,
    /// Latency contribution after compute/memory overlap:
    /// `max(compute, memory)` under double buffering.
    pub cycles: f64,
    /// Dynamic energy in picojoules.
    pub energy_pj: f64,
}

impl OpRecord {
    /// Builds a record, deriving the overlapped latency.
    pub fn new(
        name: impl Into<String>,
        category: OpCategory,
        compute_cycles: f64,
        memory_cycles: f64,
        energy_pj: f64,
    ) -> Self {
        OpRecord {
            name: name.into(),
            category,
            compute_cycles,
            memory_cycles,
            cycles: compute_cycles.max(memory_cycles),
            energy_pj,
        }
    }
}

/// A full end-to-end simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Machine label.
    pub machine: String,
    /// Model label.
    pub model: String,
    /// Per-op records of ONE transformer block (all blocks are identical).
    pub block_records: Vec<OpRecord>,
    /// Number of block executions (`blocks x steps`).
    pub block_executions: u64,
    /// End-to-end cycles.
    pub cycles: f64,
    /// End-to-end latency in seconds.
    pub seconds: f64,
    /// End-to-end energy in joules (dynamic + static).
    pub energy_joules: f64,
    /// Effective throughput in TOPS counted over *nominal* operations
    /// (2 x MACs of the unquantized model), the convention the paper's
    /// energy-efficiency numbers use.
    pub effective_tops: f64,
}

impl Report {
    /// Latency share per category over one block, as fractions of the
    /// block's total cycles.
    pub fn category_shares(&self) -> BTreeMap<OpCategory, f64> {
        let total: f64 = self.block_records.iter().map(|r| r.cycles).sum();
        let mut out = BTreeMap::new();
        if total <= 0.0 {
            return out;
        }
        for r in &self.block_records {
            *out.entry(r.category).or_insert(0.0) += r.cycles / total;
        }
        out
    }

    /// Cycles of one transformer block.
    pub fn block_cycles(&self) -> f64 {
        self.block_records.iter().map(|r| r.cycles).sum()
    }

    /// Effective TOPS per watt.
    pub fn tops_per_watt(&self) -> f64 {
        let watts = self.energy_joules / self.seconds.max(1e-12);
        self.effective_tops / watts.max(1e-12)
    }

    /// Renders the report as human-readable text: headline numbers plus
    /// the per-category latency breakdown of one transformer block.
    pub fn format_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} on {}:", self.machine, self.model);
        let _ = writeln!(
            out,
            "  end-to-end      {:.1} s ({:.3e} cycles, {} block executions)",
            self.seconds, self.cycles, self.block_executions
        );
        let _ = writeln!(
            out,
            "  energy          {:.0} J ({:.1} W average)",
            self.energy_joules,
            self.energy_joules / self.seconds.max(1e-12)
        );
        let _ = writeln!(
            out,
            "  effective       {:.1} TOPS, {:.2} TOPS/W",
            self.effective_tops,
            self.tops_per_watt()
        );
        let _ = writeln!(out, "  block breakdown:");
        for (cat, share) in self.category_shares() {
            let _ = writeln!(out, "    {:<11} {:>5.1}%", cat.label(), share * 100.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let records = vec![
            OpRecord::new("qkv", OpCategory::Linear, 100.0, 40.0, 1e6),
            OpRecord::new("qk_t", OpCategory::QkT, 200.0, 10.0, 2e6),
            OpRecord::new("softmax", OpCategory::Softmax, 50.0, 0.0, 5e5),
            OpRecord::new("attn_v", OpCategory::AttnV, 200.0, 10.0, 2e6),
        ];
        let block_cycles: f64 = records.iter().map(|r| r.cycles).sum();
        Report {
            machine: "test".to_string(),
            model: "tiny".to_string(),
            block_records: records,
            block_executions: 10,
            cycles: block_cycles * 10.0,
            seconds: 1.0,
            energy_joules: 5.0,
            effective_tops: 10.0,
        }
    }

    #[test]
    fn overlap_takes_max() {
        let r = OpRecord::new("x", OpCategory::Linear, 10.0, 25.0, 0.0);
        assert_eq!(r.cycles, 25.0);
        let r = OpRecord::new("x", OpCategory::Linear, 30.0, 25.0, 0.0);
        assert_eq!(r.cycles, 30.0);
    }

    #[test]
    fn category_shares_sum_to_one() {
        let rep = sample_report();
        let shares = rep.category_shares();
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(shares[&OpCategory::QkT] > shares[&OpCategory::Softmax]);
    }

    #[test]
    fn block_cycles_and_tops_per_watt() {
        let rep = sample_report();
        assert!((rep.block_cycles() - 550.0).abs() < 1e-9);
        // 10 TOPS at 5 W = 2 TOPS/W.
        assert!((rep.tops_per_watt() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn format_text_contains_headline_numbers() {
        let rep = sample_report();
        let text = rep.format_text();
        assert!(text.contains("test on tiny"));
        assert!(text.contains("TOPS/W"));
        assert!(text.contains("qk_t"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn empty_report_shares_empty() {
        let rep = Report {
            machine: "m".into(),
            model: "x".into(),
            block_records: vec![],
            block_executions: 0,
            cycles: 0.0,
            seconds: 0.0,
            energy_joules: 0.0,
            effective_tops: 0.0,
        };
        assert!(rep.category_shares().is_empty());
    }
}
