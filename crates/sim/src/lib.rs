//! Tile-level cycle-accurate simulator of the PARO accelerator and its
//! baselines.
//!
//! Models the architecture of the paper's Sec. IV — mixed-precision PE
//! arrays (each PE: four 2b×8b multipliers configurable as 1×8b×8b,
//! 2×4b×8b or 4×2b×8b per cycle), LDZ units, a block dispatcher with 0-bit
//! bypass, an FP vector unit, SRAM double buffering and a DDR bandwidth
//! model — plus the comparison machines of Sec. V: Sanger, ViTCoD and an
//! NVIDIA A100 roofline, all under configurable hardware budgets.
//!
//! Simulation granularity is the *tile/op level*: every GEMM, softmax,
//! reorder and DRAM transfer of a transformer block is accounted in cycles
//! with compute/memory overlap, matching how the paper's own simulator
//! evaluates end-to-end latency (RTL gives per-component cost; the
//! simulator composes them per layer).
//!
//! # Example
//!
//! ```
//! use paro_model::ModelConfig;
//! use paro_sim::machines::{Machine, ParoMachine, ParoOptimizations};
//! use paro_sim::{AttentionProfile, HardwareConfig};
//!
//! let cfg = ModelConfig::cogvideox_2b();
//! let machine = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all());
//! let report = machine.run_model(&cfg, &AttentionProfile::paper_mp());
//! assert!(report.seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cost;
pub mod dispatch;
mod error;
mod hardware;
pub mod machines;
mod memory;
mod pe;
mod profile;
mod report;
pub mod sweeps;
pub mod trace;
pub mod traffic;
pub mod tune;
mod vector;

pub use error::SimError;
pub use hardware::HardwareConfig;
pub use memory::MemorySystem;
pub use pe::{PeArray, PeMode};
pub use profile::AttentionProfile;
pub use report::{OpCategory, OpRecord, Report};
pub use vector::VectorUnit;
