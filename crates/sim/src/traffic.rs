//! DRAM traffic accounting for the PARO dataflow, independent of the
//! cycle simulator.
//!
//! The same byte formulas the [`crate::machines::ParoMachine`] charges,
//! exposed as pure functions: per-op traffic under a precision
//! configuration, per-block totals, and end-to-end totals. A cross-check
//! test asserts the machine's recorded memory cycles equal these formulas
//! at the configured bandwidth, so any divergence between the two
//! formulations is caught immediately.

use crate::{AttentionProfile, HardwareConfig, PeArray};
use paro_model::workload::{block_ops, GemmKind, LayerOp};
use paro_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Precision configuration of the PARO dataflow for traffic purposes.
///
/// # Example
///
/// ```
/// use paro_model::ModelConfig;
/// use paro_sim::traffic::{block_bytes, TrafficConfig};
/// use paro_sim::{AttentionProfile, HardwareConfig};
/// let hw = HardwareConfig::paro_asic();
/// let cfg = ModelConfig::cogvideox_2b();
/// let int8 = block_bytes(&hw, &cfg, &TrafficConfig::paro(&AttentionProfile::paper_mp()), true);
/// let fp16 = block_bytes(&hw, &cfg, &TrafficConfig::fp16(), false);
/// // FP16 doubles activations and spills the map.
/// assert!(fp16 > int8 * 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Bytes per linear-layer weight/activation element (1 = INT8,
    /// 2 = FP16).
    pub act_bytes: f64,
    /// Bytes per attention-path activation element.
    pub attn_act_bytes: f64,
    /// Stored bits per attention-map element (drives the spill fraction).
    pub map_bits: f64,
}

impl TrafficConfig {
    /// The full PARO configuration at an attention profile.
    pub fn paro(profile: &AttentionProfile) -> Self {
        TrafficConfig {
            act_bytes: 1.0,
            attn_act_bytes: 1.0,
            map_bits: profile.storage_bits(),
        }
    }

    /// The naive FP16 configuration.
    pub fn fp16() -> Self {
        TrafficConfig {
            act_bytes: 2.0,
            attn_act_bytes: 2.0,
            map_bits: 16.0,
        }
    }
}

/// Fraction of the attention map that spills to DRAM: the overflow of the
/// row panel beyond half the SRAM (double buffering), zero when the panel
/// fits. Identical to the machine model's capacity-cliff formula.
pub fn map_spill_fraction(hw: &HardwareConfig, cfg: &ModelConfig, map_bits: f64) -> f64 {
    let tile_edge = PeArray::new(hw).tile_edge() as f64;
    let n = cfg.total_tokens() as f64;
    let panel_bytes = tile_edge * n * map_bits / 8.0;
    let fit = ((hw.sram_bytes / 2) as f64 / panel_bytes).min(1.0);
    1.0 - fit
}

/// DRAM bytes of one [`LayerOp`] under a traffic configuration.
///
/// Linear GEMMs stream weights + input/output activations; `QKᵀ` streams
/// `Q`/`K` plus half the map-spill bytes; `AttnV` streams `V`/`O` plus the
/// other half; softmax and the reorder are on-chip (zero DRAM bytes).
pub fn op_bytes(op: &LayerOp, hw: &HardwareConfig, cfg: &ModelConfig, tc: &TrafficConfig) -> f64 {
    let n = cfg.total_tokens() as f64;
    let heads = cfg.heads as f64;
    let spill_total = map_spill_fraction(hw, cfg, tc.map_bits) * n * n * heads * tc.map_bits / 8.0;
    match op {
        LayerOp::Gemm { kind, shape, count } => {
            let count_f = *count as f64;
            match kind {
                GemmKind::QkvProjection
                | GemmKind::OutProjection
                | GemmKind::FfnUp
                | GemmKind::FfnDown => {
                    let weight = (shape.k * shape.n) as f64 * tc.act_bytes * count_f;
                    let io =
                        ((shape.m * shape.k) + (shape.m * shape.n)) as f64 * tc.act_bytes * count_f;
                    weight + io
                }
                GemmKind::QkT => {
                    2.0 * n * cfg.head_dim() as f64 * heads * tc.attn_act_bytes + spill_total / 2.0
                }
                GemmKind::AttnV => {
                    n * cfg.head_dim() as f64 * heads * tc.attn_act_bytes
                        + n * cfg.hidden as f64 * tc.attn_act_bytes
                        + spill_total / 2.0
                }
            }
        }
        LayerOp::Softmax { .. } | LayerOp::Reorder { .. } => 0.0,
    }
}

/// Total DRAM bytes of one transformer block.
pub fn block_bytes(
    hw: &HardwareConfig,
    cfg: &ModelConfig,
    tc: &TrafficConfig,
    include_reorder: bool,
) -> f64 {
    block_ops(cfg, include_reorder)
        .iter()
        .map(|op| op_bytes(op, hw, cfg, tc))
        .sum()
}

/// Total DRAM bytes of a full generation.
pub fn model_bytes(
    hw: &HardwareConfig,
    cfg: &ModelConfig,
    tc: &TrafficConfig,
    include_reorder: bool,
) -> f64 {
    block_bytes(hw, cfg, tc, include_reorder) * (cfg.blocks * cfg.steps) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{Machine, ParoMachine, ParoOptimizations};
    use paro_quant::Bitwidth;

    #[test]
    fn spill_fraction_cliff() {
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::cogvideox_5b();
        assert_eq!(map_spill_fraction(&hw, &cfg, 8.0), 0.0);
        assert_eq!(map_spill_fraction(&hw, &cfg, 4.8), 0.0);
        let fp16 = map_spill_fraction(&hw, &cfg, 16.0);
        assert!(
            (0.2..0.5).contains(&fp16),
            "FP16 spill fraction {fp16} should be a partial overflow"
        );
        // Tiny models never spill.
        assert_eq!(
            map_spill_fraction(&hw, &ModelConfig::tiny(4, 4, 4), 16.0),
            0.0
        );
    }

    #[test]
    fn traffic_matches_machine_memory_cycles() {
        // The cross-check: the ParoMachine's recorded per-block memory
        // cycles equal these formulas divided by the DRAM bandwidth.
        let hw = HardwareConfig::paro_asic();
        for (cfg, profile, opts) in [
            (
                ModelConfig::cogvideox_2b(),
                AttentionProfile::paper_mp(),
                ParoOptimizations::all(),
            ),
            (
                ModelConfig::cogvideox_5b(),
                AttentionProfile::uniform(Bitwidth::B8),
                ParoOptimizations::all(),
            ),
        ] {
            let report = ParoMachine::new(hw.clone(), opts).run_model(&cfg, &profile);
            let machine_mem_cycles: f64 =
                report.block_records.iter().map(|r| r.memory_cycles).sum();
            let tc = TrafficConfig::paro(&profile);
            let expected_cycles = block_bytes(&hw, &cfg, &tc, true) / hw.dram_bytes_per_cycle();
            let rel = (machine_mem_cycles - expected_cycles).abs() / expected_cycles;
            assert!(
                rel < 1e-6,
                "{} @ {:.1}b: machine {machine_mem_cycles} vs formulas {expected_cycles}",
                cfg.name,
                profile.avg_bits()
            );
        }
    }

    #[test]
    fn fp16_traffic_exceeds_int8() {
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::cogvideox_2b();
        let int8 = block_bytes(
            &hw,
            &cfg,
            &TrafficConfig::paro(&AttentionProfile::paper_mp()),
            true,
        );
        let fp16 = block_bytes(&hw, &cfg, &TrafficConfig::fp16(), false);
        // FP16 doubles every activation AND spills the map.
        assert!(
            fp16 > int8 * 2.0,
            "fp16 block traffic {fp16:.3e} vs int8 {int8:.3e}"
        );
    }

    #[test]
    fn model_bytes_scale() {
        let hw = HardwareConfig::paro_asic();
        let cfg = ModelConfig::cogvideox_2b();
        let tc = TrafficConfig::paro(&AttentionProfile::paper_mp());
        assert_eq!(
            model_bytes(&hw, &cfg, &tc, true),
            block_bytes(&hw, &cfg, &tc, true) * 1500.0
        );
    }
}
