//! NVIDIA A100 roofline model.
//!
//! The paper measures a real A100 with CUDA events; this model reproduces
//! the latency *structure* the paper reports — end-to-end generation takes
//! on the order of a minute and attention-map computation is 67.93% of
//! latency — with a per-op roofline: FP16 tensor-core GEMMs at the high
//! utilization cuBLAS achieves on 17.8k-token shapes, softmax-class work
//! on the CUDA cores, fused attention kernels (the map stays in shared
//! memory / registers, so no HBM round-trip for the score matrix), and
//! weight/activation traffic at achievable HBM bandwidth.

use super::{BlockAccountant, Machine};
use crate::cost::EnergyModel;
use crate::{AttentionProfile, HardwareConfig, OpCategory, PeMode, Report};
use paro_model::workload::{block_ops, GemmKind, LayerOp};
use paro_model::ModelConfig;

/// Tensor-core utilization on large dense GEMMs (cuBLAS-class kernels on
/// 17.8k-token shapes).
const GEMM_UTILIZATION: f64 = 0.85;
/// Attention kernels are less regular than cuBLAS GEMMs (softmax fusion,
/// online rescaling): lower effective tensor-core utilization.
const ATTENTION_UTILIZATION: f64 = 0.75;
/// Achievable fraction of peak HBM bandwidth.
const HBM_UTILIZATION: f64 = 0.80;

/// The A100 machine.
#[derive(Debug, Clone)]
pub struct GpuMachine {
    hw: HardwareConfig,
    fused_attention: bool,
}

impl GpuMachine {
    /// Builds the A100 model with its native resource envelope and fused
    /// attention kernels (the default; matches measured CogVideoX stacks).
    pub fn a100() -> Self {
        GpuMachine {
            hw: HardwareConfig::a100(),
            fused_attention: true,
        }
    }

    /// Builds a GPU model on a custom envelope (sensitivity studies).
    pub fn with_hardware(hw: HardwareConfig) -> Self {
        GpuMachine {
            hw,
            fused_attention: true,
        }
    }

    /// Models pre-FlashAttention kernels: the score map is materialized in
    /// HBM (written by `QKᵀ`, read+written by softmax, read by `AttnV`).
    /// At 17.8k tokens this dominates the GPU's latency — the sensitivity
    /// study behind "how much of the paper's A100 comparison depends on
    /// the GPU's kernel generation".
    pub fn with_unfused_attention(mut self) -> Self {
        self.fused_attention = false;
        self
    }
}

impl Machine for GpuMachine {
    fn name(&self) -> String {
        self.hw.name.clone()
    }

    fn run_model(&self, cfg: &ModelConfig, _profile: &AttentionProfile) -> Report {
        let mut acc = BlockAccountant::new(&self.hw, EnergyModel::a100());
        let n = cfg.total_tokens() as f64;
        let heads = cfg.heads as f64;
        let fp16 = 2.0; // bytes per element

        for op in block_ops(cfg, false) {
            match op {
                LayerOp::Gemm { kind, shape, count } => {
                    let count_f = count as f64;
                    let mac_e = count_f * shape.macs() as f64 * acc.energy.fp16_mac_pj;
                    match kind {
                        GemmKind::QkvProjection
                        | GemmKind::OutProjection
                        | GemmKind::FfnUp
                        | GemmKind::FfnDown => {
                            let compute = acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f
                                / GEMM_UTILIZATION;
                            let weight_bytes = (shape.k * shape.n) as f64 * fp16 * count_f;
                            let io_bytes =
                                ((shape.m * shape.k) + (shape.m * shape.n)) as f64 * fp16 * count_f;
                            acc.push(
                                format!("{kind:?}"),
                                OpCategory::Linear,
                                compute,
                                (weight_bytes + io_bytes) / HBM_UTILIZATION,
                                mac_e,
                            );
                        }
                        GemmKind::QkT => {
                            let compute = acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f
                                / ATTENTION_UTILIZATION;
                            // Fused kernel: Q, K read; the score map stays
                            // on-chip. Unfused: the FP16 map is written to
                            // HBM.
                            let qk_bytes = 2.0 * n * cfg.head_dim() as f64 * heads * fp16;
                            let map_write = if self.fused_attention {
                                0.0
                            } else {
                                n * n * heads * fp16
                            };
                            acc.push(
                                "QkT",
                                OpCategory::QkT,
                                compute,
                                (qk_bytes + map_write) / HBM_UTILIZATION,
                                mac_e,
                            );
                        }
                        GemmKind::AttnV => {
                            let compute = acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f
                                / ATTENTION_UTILIZATION;
                            let v_bytes = n * cfg.head_dim() as f64 * heads * fp16;
                            let o_bytes = n * cfg.hidden as f64 * fp16;
                            let map_read = if self.fused_attention {
                                0.0
                            } else {
                                n * n * heads * fp16
                            };
                            acc.push(
                                "AttnV",
                                OpCategory::AttnV,
                                compute,
                                (map_read + v_bytes + o_bytes) / HBM_UTILIZATION,
                                mac_e,
                            );
                        }
                    }
                }
                LayerOp::Softmax { rows, cols, count } => {
                    let elems = (rows * cols * count) as f64;
                    let cycles = acc.vec.softmax_cycles(elems, 0.0);
                    // Unfused softmax reads and rewrites the HBM-resident map.
                    let bytes = if self.fused_attention {
                        0.0
                    } else {
                        2.0 * elems * fp16 / HBM_UTILIZATION
                    };
                    let energy =
                        elems * crate::vector::SOFTMAX_OPS_PER_ELEM * acc.energy.vector_op_pj;
                    acc.push("Softmax", OpCategory::Softmax, cycles, bytes, energy);
                }
                LayerOp::Reorder { .. } => {
                    // The GPU baseline runs the unmodified model: no reorder.
                }
            }
        }
        acc.finish(self.name(), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_share_matches_paper() {
        // Paper Sec. I: attention computation is 67.93% of A100 latency on
        // CogVideoX. The roofline must land in that neighborhood.
        let report = GpuMachine::a100()
            .run_model(&ModelConfig::cogvideox_5b(), &AttentionProfile::paper_mp());
        let shares = report.category_shares();
        let attn = shares.get(&OpCategory::QkT).copied().unwrap_or(0.0)
            + shares.get(&OpCategory::AttnV).copied().unwrap_or(0.0)
            + shares.get(&OpCategory::Softmax).copied().unwrap_or(0.0);
        assert!(
            (0.5..0.9).contains(&attn),
            "A100 attention latency share {attn:.3}; paper reports 0.679"
        );
    }

    #[test]
    fn end_to_end_latency_around_a_minute() {
        // Paper Sec. I: generating 49 frames takes ~1 minute on an A100
        // (FP16). Accept a generous band — the exact figure depends on
        // kernel details we do not model.
        let report = GpuMachine::a100()
            .run_model(&ModelConfig::cogvideox_5b(), &AttentionProfile::paper_mp());
        assert!(
            (20.0..300.0).contains(&report.seconds),
            "A100 e2e {:.1}s should be minutes-scale",
            report.seconds
        );
    }

    #[test]
    fn unfused_kernels_much_slower() {
        // The kernel-generation sensitivity: materializing the 17.8k-token
        // map in HBM multiplies A100 latency several-fold, i.e. the paper's
        // A100 numbers imply a fused-attention software stack.
        let p = AttentionProfile::paper_mp();
        let cfg = ModelConfig::cogvideox_5b();
        let fused = GpuMachine::a100().run_model(&cfg, &p);
        let unfused = GpuMachine::a100()
            .with_unfused_attention()
            .run_model(&cfg, &p);
        let ratio = unfused.seconds / fused.seconds;
        assert!(
            ratio > 1.5,
            "unfused should be several-x slower, got {ratio:.2}"
        );
    }

    #[test]
    fn bigger_model_is_slower() {
        let gpu = GpuMachine::a100();
        let p = AttentionProfile::paper_mp();
        let small = gpu.run_model(&ModelConfig::cogvideox_2b(), &p);
        let large = gpu.run_model(&ModelConfig::cogvideox_5b(), &p);
        assert!(large.seconds > small.seconds);
    }
}
