//! Sanger baseline machine (Lu et al., MICRO '21) under the PARO hardware
//! budget.
//!
//! Sanger's dataflow: (1) a low-precision (4-bit) `QKᵀ` prediction pass
//! over the full map, (2) threshold + pack-and-split of the predicted
//! sparse mask into load-balanced sub-rows, (3) sparse score computation
//! and `AttnV` at full precision on the reconfigurable array. Sanger does
//! not quantize the attention map or the linear layers, and its decoupled
//! score→softmax→AttnV pipeline stages the sparse score matrix through
//! DRAM at FP16 (plus index metadata) — affordable at BERT's 512 tokens,
//! crushing at CogVideoX's 17.8k.
//!
//! The kept fraction models its locally-structured pruning applied to
//! diverse video attention patterns at a threshold that preserves
//! generation quality (the paper's comparison protocol).

use super::{BlockAccountant, Machine};
use crate::cost::EnergyModel;
use crate::{AttentionProfile, HardwareConfig, OpCategory, PeMode, Report};
use paro_model::workload::{block_ops, GemmKind, LayerOp};
use paro_model::ModelConfig;

/// Dataflow assumptions of the Sanger model. The defaults are the
/// calibration documented in EXPERIMENTS.md; exposing them as parameters
/// lets the `baseline_sensitivity` experiment show how the Fig. 6(a)
/// conclusions react to each assumption.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SangerConfig {
    /// Fraction of attention-map entries the pruning keeps on video
    /// workloads at quality parity (Sanger's structured mask fits BERT's
    /// patterns, not the diverse 3D-full-attention diagonals).
    pub kept_fraction: f64,
    /// Load-balance efficiency of the pack-and-split sparse array on these
    /// irregular masks.
    pub sparse_efficiency: f64,
    /// Metadata bytes per kept FP16 score (column index).
    pub index_bytes: f64,
}

impl Default for SangerConfig {
    fn default() -> Self {
        SangerConfig {
            kept_fraction: 0.70,
            sparse_efficiency: 0.70,
            index_bytes: 0.5,
        }
    }
}

/// The Sanger machine.
#[derive(Debug, Clone)]
pub struct SangerMachine {
    hw: HardwareConfig,
    cfg: SangerConfig,
}

impl SangerMachine {
    /// Builds Sanger under the given hardware budget with default dataflow
    /// assumptions.
    pub fn new(hw: HardwareConfig) -> Self {
        SangerMachine {
            hw,
            cfg: SangerConfig::default(),
        }
    }

    /// Overrides the dataflow assumptions.
    pub fn with_config(mut self, cfg: SangerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The dataflow assumptions in effect.
    pub fn config(&self) -> SangerConfig {
        self.cfg
    }

    /// Sanger under the default PARO ASIC budget (the Fig. 6(a) setting).
    pub fn default_budget() -> Self {
        let mut hw = HardwareConfig::paro_asic();
        hw.name = "Sanger".to_string();
        SangerMachine::new(hw)
    }
}

impl Machine for SangerMachine {
    fn name(&self) -> String {
        "Sanger".to_string()
    }

    fn run_model(&self, cfg: &ModelConfig, _profile: &AttentionProfile) -> Report {
        let mut acc = BlockAccountant::new(&self.hw, EnergyModel::paro_asic());
        let SangerConfig {
            kept_fraction,
            sparse_efficiency,
            index_bytes,
        } = self.cfg;
        let n = cfg.total_tokens() as f64;
        let heads = cfg.heads as f64;
        let fp16 = 2.0;
        // Sparse FP16 scores + index metadata staged through DRAM between
        // pipeline stages (write after QKᵀ+softmax, read for AttnV).
        let sparse_map_bytes = kept_fraction * n * n * heads * (fp16 + index_bytes);

        for op in block_ops(cfg, false) {
            match op {
                LayerOp::Gemm { kind, shape, count } => {
                    let count_f = count as f64;
                    match kind {
                        GemmKind::QkvProjection
                        | GemmKind::OutProjection
                        | GemmKind::FfnUp
                        | GemmKind::FfnDown => {
                            // FP16 linears (Sanger leaves them unquantized).
                            let compute = acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f;
                            let weight_bytes = (shape.k * shape.n) as f64 * fp16 * count_f;
                            let io_bytes =
                                ((shape.m * shape.k) + (shape.m * shape.n)) as f64 * fp16 * count_f;
                            let mac_e = count_f * shape.macs() as f64 * acc.energy.fp16_mac_pj;
                            acc.push(
                                format!("{kind:?}"),
                                OpCategory::Linear,
                                compute,
                                weight_bytes + io_bytes,
                                mac_e,
                            );
                        }
                        GemmKind::QkT => {
                            // Prediction pass: full map at 4-bit x 4-bit
                            // (4x the INT8 rate on the same multiplier area).
                            let predict = acc.pe.gemm_cycles(shape, PeMode::Int2x8) * count_f;
                            let predict_e =
                                count_f * shape.macs() as f64 * acc.energy.mac_pj_at_speedup(4.0);
                            acc.push("Predict", OpCategory::Prediction, predict, 0.0, predict_e);
                            // Pack-and-split mask processing on the vector
                            // unit.
                            let mask_cycles = acc.vec.elementwise_cycles(n * n * heads, 1.0);
                            acc.push(
                                "PackSplit",
                                OpCategory::Prediction,
                                mask_cycles,
                                0.0,
                                n * n * heads * acc.energy.vector_op_pj,
                            );
                            // Sparse FP16 score computation on kept entries;
                            // scores staged out to DRAM.
                            let compute = acc.pe.sparse_gemm_cycles(
                                shape,
                                kept_fraction,
                                sparse_efficiency,
                                PeMode::Fp16,
                            ) * count_f;
                            let qk_bytes = 2.0 * n * cfg.head_dim() as f64 * heads * fp16;
                            let mac_e = count_f
                                * shape.macs() as f64
                                * kept_fraction
                                * acc.energy.fp16_mac_pj;
                            acc.push(
                                "QkT(sparse)",
                                OpCategory::QkT,
                                compute,
                                qk_bytes + sparse_map_bytes,
                                mac_e,
                            );
                        }
                        GemmKind::AttnV => {
                            // Sparse AttnV reads the staged map back.
                            let compute = acc.pe.sparse_gemm_cycles(
                                shape,
                                kept_fraction,
                                sparse_efficiency,
                                PeMode::Fp16,
                            ) * count_f;
                            let v_bytes = n * cfg.head_dim() as f64 * heads * fp16;
                            let o_bytes = n * cfg.hidden as f64 * fp16;
                            let mac_e = count_f
                                * shape.macs() as f64
                                * kept_fraction
                                * acc.energy.fp16_mac_pj;
                            acc.push(
                                "AttnV(sparse)",
                                OpCategory::AttnV,
                                compute,
                                sparse_map_bytes + v_bytes + o_bytes,
                                mac_e,
                            );
                        }
                    }
                }
                LayerOp::Softmax { rows, cols, count } => {
                    let elems = (rows * cols * count) as f64 * kept_fraction;
                    let cycles = acc.vec.softmax_cycles(elems, 0.0);
                    let energy =
                        elems * crate::vector::SOFTMAX_OPS_PER_ELEM * acc.energy.vector_op_pj;
                    acc.push("Softmax", OpCategory::Softmax, cycles, 0.0, energy);
                }
                LayerOp::Reorder { .. } => {}
            }
        }
        acc.finish(self.name(), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_staging_dominates_memory() {
        let report = SangerMachine::default_budget()
            .run_model(&ModelConfig::cogvideox_5b(), &AttentionProfile::paper_mp());
        // At 17.8k tokens the staged sparse map is tens of GB per block:
        // the attention ops must be memory-bound.
        let qkt = report
            .block_records
            .iter()
            .find(|r| r.name == "QkT(sparse)")
            .unwrap();
        assert!(
            qkt.memory_cycles > qkt.compute_cycles,
            "Sanger QkT should be staging-bound: mem {} vs compute {}",
            qkt.memory_cycles,
            qkt.compute_cycles
        );
    }

    #[test]
    fn sanger_slower_than_nothing_but_runs() {
        let report = SangerMachine::default_budget()
            .run_model(&ModelConfig::cogvideox_2b(), &AttentionProfile::paper_mp());
        assert!(report.seconds > 0.0);
        assert!(report.block_records.len() > 5);
    }
}
