//! The PARO accelerator machine model (paper Sec. IV).

use super::{BlockAccountant, Machine};
use crate::cost::EnergyModel;
use crate::dispatch::{block_costs, dispatch, DispatchPolicy};
use crate::{AttentionProfile, HardwareConfig, OpCategory, PeMode};
use paro_model::workload::{block_ops, GemmKind, LayerOp};
use paro_model::ModelConfig;
use paro_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// PARO's optimization toggles — the ablation axes of Fig. 6(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParoOptimizations {
    /// W8A8 quantization of all linear layers.
    pub linear_w8a8: bool,
    /// Mixed-precision (4.80-bit average) attention-map quantization with
    /// token reorder: `QKV` become INT8, `AttnV` runs at the map's mixed
    /// precision, 0-bit blocks are skipped.
    pub attention_quant: bool,
    /// Output-bitwidth-aware `QKᵀ`: the LDZ unit truncates `K` to each
    /// output block's bitwidth, so `QKᵀ` also runs at mixed precision.
    pub output_aware: bool,
}

impl ParoOptimizations {
    /// Everything on (the full PARO design).
    pub fn all() -> Self {
        ParoOptimizations {
            linear_w8a8: true,
            attention_quant: true,
            output_aware: true,
        }
    }

    /// Everything off (the "naive FP16" ablation baseline).
    pub fn none() -> Self {
        ParoOptimizations {
            linear_w8a8: false,
            attention_quant: false,
            output_aware: false,
        }
    }

    /// The Fig. 6(b) ablation ladder, in order.
    pub fn ablation_ladder() -> Vec<(&'static str, ParoOptimizations)> {
        vec![
            ("FP16", ParoOptimizations::none()),
            (
                "+W8A8 linear",
                ParoOptimizations {
                    linear_w8a8: true,
                    attention_quant: false,
                    output_aware: false,
                },
            ),
            (
                "+attention MP quant",
                ParoOptimizations {
                    linear_w8a8: true,
                    attention_quant: true,
                    output_aware: false,
                },
            ),
            ("+output-bitwidth aware", ParoOptimizations::all()),
        ]
    }
}

/// The PARO accelerator.
#[derive(Debug, Clone)]
pub struct ParoMachine {
    hw: HardwareConfig,
    opts: ParoOptimizations,
    policy: DispatchPolicy,
    explicit_bits: Option<Vec<Bitwidth>>,
}

impl ParoMachine {
    /// Builds the machine with the given hardware envelope and
    /// optimization set, using the load-balancing dispatcher.
    pub fn new(hw: HardwareConfig, opts: ParoOptimizations) -> Self {
        ParoMachine {
            hw,
            opts,
            policy: DispatchPolicy::GreedyLpt,
            explicit_bits: None,
        }
    }

    /// Overrides the dispatch policy (for the `dispatch` ablation bench).
    pub fn with_dispatch_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Drives the dispatcher with a **concrete** per-block bit assignment
    /// (e.g. from [`paro_core::allocate::BitAllocation`]) instead of a
    /// population synthesized from the profile's shares — the final link
    /// of the co-design loop, where the algorithm's exact allocation sets
    /// the hardware's block schedule.
    pub fn with_block_bits(mut self, bits: Vec<Bitwidth>) -> Self {
        self.explicit_bits = Some(bits);
        self
    }

    /// The optimization set.
    pub fn optimizations(&self) -> ParoOptimizations {
        self.opts
    }

    /// Effective inverse-throughput of attention GEMMs under the mixed-
    /// precision profile, including dispatcher load-balance losses.
    ///
    /// Synthesizes a representative block population from the profile
    /// shares, prices each block by its PE mode, and dispatches them onto
    /// the PE rows; the returned factor multiplies the INT8 dense cycles.
    fn mixed_attention_factor(&self, profile: &AttentionProfile) -> f64 {
        const POPULATION: usize = 512;
        let bits = match &self.explicit_bits {
            Some(explicit) if !explicit.is_empty() => explicit.clone(),
            _ => {
                let mut bits = Vec::with_capacity(POPULATION);
                for b in Bitwidth::ALL {
                    let count = (profile.share(b) * POPULATION as f64).round() as usize;
                    bits.extend(std::iter::repeat_n(b, count));
                }
                while bits.len() < POPULATION {
                    bits.push(Bitwidth::B8);
                }
                bits.truncate(POPULATION);
                bits
            }
        };
        let population = bits.len();
        let costs = block_costs(1.0, &bits);
        let rows = 32; // PE rows sharing the dispatcher
        let outcome = dispatch(&costs, rows, self.policy);
        // Ideal mixed-precision cycles per unit INT8 block cost:
        let ideal = profile.inverse_throughput();
        let actual = outcome.makespan * rows as f64 / population as f64;
        actual.max(ideal)
    }
}

impl Machine for ParoMachine {
    fn name(&self) -> String {
        self.hw.name.clone()
    }

    fn run_model(&self, cfg: &ModelConfig, profile: &AttentionProfile) -> Report {
        let mut acc = BlockAccountant::new(&self.hw, EnergyModel::paro_asic());
        let opts = self.opts;
        let act_bytes: f64 = if opts.linear_w8a8 { 1.0 } else { 2.0 };
        let attn_act_bytes: f64 = if opts.attention_quant { 1.0 } else { 2.0 };
        let linear_mode = if opts.linear_w8a8 {
            PeMode::Int8x8
        } else {
            PeMode::Fp16
        };
        let mixed_factor = self.mixed_attention_factor(profile);
        let heads = cfg.heads as f64;
        let n = cfg.total_tokens() as f64;

        // Attention-map dataflow: the map is processed as row panels
        // (tile_edge query rows x n columns) that must fit in half the
        // SRAM (double buffering). INT8 and mixed-precision panels fit;
        // FP16 panels at 17.8k tokens do NOT, so the un-quantized
        // configurations spill the overflow fraction of the map to DRAM
        // (one write after QKᵀ, one read for AttnV). This capacity cliff
        // is a key part of why attention quantization pays off so much on
        // this architecture.
        let map_elem_bytes: f64 = if opts.attention_quant {
            profile.storage_bits() / 8.0
        } else {
            2.0
        };
        let panel_bytes = acc.pe.tile_edge() as f64 * n * map_elem_bytes;
        let fit = ((acc.mem.sram_bytes() / 2) as f64 / panel_bytes).min(1.0);
        let map_bytes = n * n * heads * map_elem_bytes;
        // Total spilled bytes over the QKᵀ-write + AttnV-read pair.
        let spill_bytes_total = map_bytes * (1.0 - fit);

        for op in block_ops(cfg, opts.attention_quant) {
            match op {
                LayerOp::Gemm { kind, shape, count } => {
                    let count_f = count as f64;
                    match kind {
                        GemmKind::QkvProjection
                        | GemmKind::OutProjection
                        | GemmKind::FfnUp
                        | GemmKind::FfnDown => {
                            let compute = acc.pe.gemm_cycles(shape, linear_mode) * count_f;
                            // Dequantization of integer accumulation results
                            // happens on the vector unit.
                            let dequant = if opts.linear_w8a8 {
                                acc.vec
                                    .dequant_cycles(shape.output_elems() as f64 * count_f)
                            } else {
                                0.0
                            };
                            let weight_bytes = (shape.k * shape.n) as f64 * act_bytes * count_f;
                            let io_bytes = ((shape.m * shape.k) + (shape.m * shape.n)) as f64
                                * act_bytes
                                * count_f;
                            let mac_e = count_f
                                * shape.macs() as f64
                                * if opts.linear_w8a8 {
                                    acc.energy.int8_mac_pj
                                } else {
                                    acc.energy.fp16_mac_pj
                                };
                            acc.push(
                                format!("{kind:?}"),
                                OpCategory::Linear,
                                compute + dequant,
                                weight_bytes + io_bytes,
                                mac_e,
                            );
                        }
                        GemmKind::QkT => {
                            // Q and K stream from DRAM; the score map stays
                            // on-chip as row panels.
                            let dense_int8 = acc.pe.gemm_cycles(shape, PeMode::Int8x8) * count_f;
                            let (compute, mac_pj) = if !opts.attention_quant {
                                (
                                    acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f,
                                    acc.energy.fp16_mac_pj,
                                )
                            } else if opts.output_aware {
                                (
                                    dense_int8 * mixed_factor,
                                    acc.energy.int8_mac_pj * mixed_factor,
                                )
                            } else {
                                (dense_int8, acc.energy.int8_mac_pj)
                            };
                            let qk_bytes = 2.0 * n * cfg.head_dim() as f64 * heads * attn_act_bytes;
                            let mac_e = count_f * shape.macs() as f64 * mac_pj;
                            acc.push(
                                "QkT",
                                OpCategory::QkT,
                                compute,
                                qk_bytes + spill_bytes_total / 2.0,
                                mac_e,
                            );
                        }
                        GemmKind::AttnV => {
                            let dense_int8 = acc.pe.gemm_cycles(shape, PeMode::Int8x8) * count_f;
                            let (compute, mac_pj) = if opts.attention_quant {
                                (
                                    dense_int8 * mixed_factor,
                                    acc.energy.int8_mac_pj * mixed_factor,
                                )
                            } else {
                                (
                                    acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f,
                                    acc.energy.fp16_mac_pj,
                                )
                            };
                            // V streams in; O streams out.
                            let v_bytes = n * cfg.head_dim() as f64 * heads * attn_act_bytes;
                            let o_bytes = n * cfg.hidden as f64 * attn_act_bytes;
                            let mac_e = count_f * shape.macs() as f64 * mac_pj;
                            acc.push(
                                "AttnV",
                                OpCategory::AttnV,
                                compute,
                                v_bytes + o_bytes + spill_bytes_total / 2.0,
                                mac_e,
                            );
                        }
                    }
                }
                LayerOp::Softmax { rows, cols, count } => {
                    let elems = (rows * cols * count) as f64;
                    let skip = if opts.attention_quant {
                        profile.skip_fraction()
                    } else {
                        0.0
                    };
                    let cycles = acc.vec.softmax_cycles(elems, skip);
                    let energy = elems
                        * (1.0 - skip)
                        * crate::vector::SOFTMAX_OPS_PER_ELEM
                        * acc.energy.vector_op_pj;
                    acc.push("Softmax", OpCategory::Softmax, cycles, 0.0, energy);
                }
                LayerOp::Reorder { tokens, dim, count } => {
                    // The reorder is an on-chip gather performed while
                    // staging Q/K/V/O through SRAM: the six axis orders are
                    // strided patterns, so DRAM bursts stay sequential and
                    // no extra off-chip traffic is incurred. Cost is the
                    // gather's index fetch + address generation + banked
                    // SRAM read/write with conflict slack, ~12 vector-lane
                    // ops per element (calibrated so the end-to-end share
                    // lands at the paper's ~1.1-1.3%).
                    let elems = (tokens * dim * count) as f64;
                    let cycles = acc.vec.elementwise_cycles(elems, 12.0);
                    let energy = elems * 2.0 * acc.energy.sram_byte_pj * attn_act_bytes;
                    acc.push("Reorder", OpCategory::Reorder, cycles, 0.0, energy);
                }
            }
        }
        acc.finish(self.name(), cfg)
    }
}

use crate::Report;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(opts: ParoOptimizations, profile: &AttentionProfile) -> Report {
        ParoMachine::new(HardwareConfig::paro_asic(), opts)
            .run_model(&ModelConfig::cogvideox_5b(), profile)
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        // Each Fig. 6(b) optimization must strictly reduce latency.
        let profile = AttentionProfile::paper_mp();
        let mut prev = f64::INFINITY;
        for (name, opts) in ParoOptimizations::ablation_ladder() {
            let report = run(opts, &profile);
            assert!(
                report.seconds < prev,
                "{name} did not improve: {} vs {prev}",
                report.seconds
            );
            prev = report.seconds;
        }
    }

    #[test]
    fn full_speedup_in_paper_ballpark() {
        // Fig. 6(b): the full design is ~3.0x over naive FP16 on the same
        // hardware (3.06x for 2B, 3.00x for 5B).
        let profile = AttentionProfile::paper_mp();
        for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
            let base = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::none())
                .run_model(&cfg, &profile);
            let full = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
                .run_model(&cfg, &profile);
            let speedup = base.seconds / full.seconds;
            assert!(
                (2.0..4.5).contains(&speedup),
                "{}: full-design speedup {speedup:.2} outside plausible band",
                cfg.name
            );
        }
    }

    #[test]
    fn reorder_overhead_is_negligible() {
        // Paper Sec. V-B: reorder is 1.26%/1.07% of end-to-end latency.
        let profile = AttentionProfile::paper_mp();
        for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
            let report = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
                .run_model(&cfg, &profile);
            let shares = report.category_shares();
            let reorder = shares
                .get(&crate::OpCategory::Reorder)
                .copied()
                .unwrap_or(0.0);
            assert!(
                reorder < 0.05,
                "{}: reorder share {reorder:.4} should be small",
                cfg.name
            );
            assert!(reorder > 0.0, "reorder must be accounted");
        }
    }

    #[test]
    fn attention_dominates_unoptimized_latency() {
        let profile = AttentionProfile::uniform(Bitwidth::B8);
        let report = run(ParoOptimizations::none(), &profile);
        let shares = report.category_shares();
        let attn = shares.get(&OpCategory::QkT).copied().unwrap_or(0.0)
            + shares.get(&OpCategory::AttnV).copied().unwrap_or(0.0)
            + shares.get(&OpCategory::Softmax).copied().unwrap_or(0.0);
        assert!(
            attn > 0.5,
            "attention share {attn:.3} should dominate the FP16 baseline"
        );
    }

    #[test]
    fn dispatcher_policy_affects_latency() {
        let profile = AttentionProfile::paper_mp();
        let cfg = ModelConfig::cogvideox_2b();
        let lpt = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &profile);
        let rr = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .with_dispatch_policy(DispatchPolicy::RoundRobin)
            .run_model(&cfg, &profile);
        assert!(lpt.seconds <= rr.seconds + 1e-12);
    }

    #[test]
    fn explicit_allocation_drives_the_dispatcher() {
        // A concrete per-block assignment replaces the synthesized
        // population; a heavier explicit mix must cost more time than a
        // lighter one at the same nominal profile.
        let cfg = ModelConfig::cogvideox_2b();
        let profile = AttentionProfile::paper_mp();
        let heavy: Vec<Bitwidth> = vec![Bitwidth::B8; 256];
        let light: Vec<Bitwidth> = (0..256)
            .map(|i| {
                if i % 2 == 0 {
                    Bitwidth::B2
                } else {
                    Bitwidth::B0
                }
            })
            .collect();
        let t_heavy = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .with_block_bits(heavy)
            .run_model(&cfg, &profile)
            .seconds;
        let t_light = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .with_block_bits(light)
            .run_model(&cfg, &profile)
            .seconds;
        assert!(t_light < t_heavy, "light {t_light} vs heavy {t_heavy}");
    }

    #[test]
    fn uniform_int8_profile_means_no_mixed_speedup() {
        let cfg = ModelConfig::cogvideox_2b();
        let int8 = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &AttentionProfile::uniform(Bitwidth::B8));
        let mp = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(&cfg, &AttentionProfile::paper_mp());
        assert!(mp.seconds < int8.seconds);
    }
}
