//! Simulated machines: the PARO accelerator, the Sanger and ViTCoD
//! baselines (under the same hardware budget), and an NVIDIA A100 roofline.

mod gpu;
mod paro;
mod sanger;
mod vitcod;

pub use gpu::GpuMachine;
pub use paro::{ParoMachine, ParoOptimizations};
pub use sanger::{SangerConfig, SangerMachine};
pub use vitcod::{VitcodConfig, VitcodMachine};

use crate::cost::EnergyModel;
use crate::{
    AttentionProfile, HardwareConfig, MemorySystem, OpCategory, OpRecord, PeArray, Report,
    VectorUnit,
};
use paro_model::{workload, ModelConfig};

/// A machine that can execute a CogVideoX-class workload end to end.
pub trait Machine {
    /// Machine label for reports.
    fn name(&self) -> String;

    /// Simulates a full generation (`blocks x steps` transformer blocks)
    /// and returns the report. `profile` describes the attention map's
    /// precision mix; machines that do not quantize the attention map
    /// ignore it.
    fn run_model(&self, cfg: &ModelConfig, profile: &AttentionProfile) -> Report;
}

/// Shared per-block accounting: wraps the component timing models and
/// collects [`OpRecord`]s, then assembles the end-to-end [`Report`].
pub(crate) struct BlockAccountant {
    pub pe: PeArray,
    pub vec: VectorUnit,
    pub mem: MemorySystem,
    pub energy: EnergyModel,
    pub hw: HardwareConfig,
    records: Vec<OpRecord>,
}

impl BlockAccountant {
    pub fn new(hw: &HardwareConfig, energy: EnergyModel) -> Self {
        BlockAccountant {
            pe: PeArray::new(hw),
            vec: VectorUnit::new(hw),
            mem: MemorySystem::new(hw),
            energy,
            hw: hw.clone(),
            records: Vec::new(),
        }
    }

    /// Records an op from raw compute/memory cycle counts and energy.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        category: OpCategory,
        compute_cycles: f64,
        memory_bytes: f64,
        extra_energy_pj: f64,
    ) {
        let memory_cycles = self.mem.transfer_cycles(memory_bytes);
        let energy = extra_energy_pj + memory_bytes * self.energy.dram_byte_pj;
        self.records.push(OpRecord::new(
            name,
            category,
            compute_cycles,
            memory_cycles,
            energy,
        ));
    }

    /// Finalizes the report for `executions` identical block runs.
    pub fn finish(self, machine: String, cfg: &ModelConfig) -> Report {
        let executions = (cfg.blocks * cfg.steps) as u64;
        let block_cycles: f64 = self.records.iter().map(|r| r.cycles).sum();
        let cycles = block_cycles * executions as f64;
        let seconds = self.hw.cycles_to_seconds(cycles);
        let dynamic_pj: f64 =
            self.records.iter().map(|r| r.energy_pj).sum::<f64>() * executions as f64;
        let energy_joules = dynamic_pj * 1e-12 + self.energy.static_w * seconds;
        // Nominal ops: 2 x MACs of the unquantized model (the convention
        // the paper's TOPS/W numbers use).
        let nominal_ops = 2.0 * workload::model_macs(cfg) as f64;
        let effective_tops = nominal_ops / seconds.max(1e-12) / 1e12;
        Report {
            machine,
            model: cfg.name.clone(),
            block_records: self.records,
            block_executions: executions,
            cycles,
            seconds,
            energy_joules,
            effective_tops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpCategory;

    #[test]
    fn accountant_assembles_report() {
        let hw = HardwareConfig::paro_asic();
        let mut acc = BlockAccountant::new(&hw, EnergyModel::paro_asic());
        acc.push("op1", OpCategory::Linear, 1000.0, 512.0, 1e6);
        acc.push("op2", OpCategory::QkT, 2000.0, 0.0, 2e6);
        let cfg = ModelConfig::tiny(2, 2, 2);
        let report = acc.finish("test".to_string(), &cfg);
        assert_eq!(report.block_executions, 2);
        // op1: max(1000, 10) = 1000; op2: 2000 -> block = 3000, x2 = 6000.
        assert!((report.cycles - 6000.0).abs() < 1e-6);
        assert!(report.seconds > 0.0);
        assert!(report.energy_joules > 0.0);
        assert!(report.effective_tops > 0.0);
    }

    #[test]
    fn dram_energy_charged() {
        let hw = HardwareConfig::paro_asic();
        let mut acc = BlockAccountant::new(&hw, EnergyModel::paro_asic());
        acc.push("mem-only", OpCategory::Linear, 0.0, 1e6, 0.0);
        let cfg = ModelConfig::tiny(1, 1, 1);
        let report = acc.finish("test".to_string(), &cfg);
        // 1e6 bytes at 20 pJ/B = 2e7 pJ per execution, 1 execution... but
        // tiny(1,1,1) has blocks=2, steps=1 -> 2 executions.
        let expected_pj = 1e6 * 20.0 * report.block_executions as f64;
        let dynamic = report.energy_joules - EnergyModel::paro_asic().static_w * report.seconds;
        assert!((dynamic * 1e12 - expected_pj).abs() / expected_pj < 1e-6);
    }
}
