//! ViTCoD baseline machine (You et al., HPCA '23) under the PARO hardware
//! budget.
//!
//! ViTCoD prunes and polarizes attention maps into **denser** and
//! **sparser** regions processed by dedicated engines, and compresses
//! `Q/K` with an on-chip auto-encoder to cut bandwidth. Relative to
//! Sanger it prunes more aggressively at quality parity (its pruning was
//! designed for vision attention), processes the map in 8-bit fixed point,
//! and halves staging traffic via its compression — but it still stages
//! the polarized map through DRAM at CogVideoX scale and leaves the linear
//! layers in FP16.

use super::{BlockAccountant, Machine};
use crate::cost::EnergyModel;
use crate::{AttentionProfile, HardwareConfig, OpCategory, PeMode, Report};
use paro_model::workload::{block_ops, GemmKind, LayerOp};
use paro_model::ModelConfig;

/// Dataflow assumptions of the ViTCoD model. Defaults are the calibration
/// documented in EXPERIMENTS.md; the `baseline_sensitivity` experiment
/// sweeps them.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VitcodConfig {
    /// Kept fraction at generation-quality parity on video attention
    /// (ViTCoD's polarized pruning was tuned for ViT classification; the
    /// diverse 3D-full-attention patterns force a conservative threshold).
    pub kept_fraction: f64,
    /// Denser-engine share of the kept work.
    pub denser_share: f64,
    /// Efficiency of the denser engine.
    pub denser_eff: f64,
    /// Efficiency of the sparser engine on scattered entries.
    pub sparser_eff: f64,
    /// INT8 map staging bytes per kept entry (value + packed index), after
    /// the auto-encoder-style compression of metadata.
    pub stage_bytes_per_entry: f64,
}

impl Default for VitcodConfig {
    fn default() -> Self {
        VitcodConfig {
            kept_fraction: 0.60,
            denser_share: 0.6,
            denser_eff: 0.85,
            sparser_eff: 0.55,
            stage_bytes_per_entry: 1.45,
        }
    }
}

/// The ViTCoD machine.
#[derive(Debug, Clone)]
pub struct VitcodMachine {
    hw: HardwareConfig,
    cfg: VitcodConfig,
}

impl VitcodMachine {
    /// Builds ViTCoD under the given hardware budget with default dataflow
    /// assumptions.
    pub fn new(hw: HardwareConfig) -> Self {
        VitcodMachine {
            hw,
            cfg: VitcodConfig::default(),
        }
    }

    /// Overrides the dataflow assumptions.
    pub fn with_config(mut self, cfg: VitcodConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The dataflow assumptions in effect.
    pub fn config(&self) -> VitcodConfig {
        self.cfg
    }

    /// ViTCoD under the default PARO ASIC budget (the Fig. 6(a) setting).
    pub fn default_budget() -> Self {
        let mut hw = HardwareConfig::paro_asic();
        hw.name = "ViTCoD".to_string();
        VitcodMachine::new(hw)
    }

    fn sparse_attention_cycles(
        &self,
        acc: &BlockAccountant,
        shape: paro_model::workload::GemmShape,
        count: f64,
    ) -> f64 {
        let c = self.cfg;
        let denser = acc.pe.sparse_gemm_cycles(
            shape,
            c.kept_fraction * c.denser_share,
            c.denser_eff,
            PeMode::Int8x8,
        );
        let sparser = acc.pe.sparse_gemm_cycles(
            shape,
            c.kept_fraction * (1.0 - c.denser_share),
            c.sparser_eff,
            PeMode::Int8x8,
        );
        (denser + sparser) * count
    }
}

impl Machine for VitcodMachine {
    fn name(&self) -> String {
        "ViTCoD".to_string()
    }

    fn run_model(&self, cfg: &ModelConfig, _profile: &AttentionProfile) -> Report {
        let mut acc = BlockAccountant::new(&self.hw, EnergyModel::paro_asic());
        let n = cfg.total_tokens() as f64;
        let heads = cfg.heads as f64;
        let fp16 = 2.0;
        let kept_fraction = self.cfg.kept_fraction;
        let staged_map_bytes = kept_fraction * n * n * heads * self.cfg.stage_bytes_per_entry;

        for op in block_ops(cfg, false) {
            match op {
                LayerOp::Gemm { kind, shape, count } => {
                    let count_f = count as f64;
                    match kind {
                        GemmKind::QkvProjection
                        | GemmKind::OutProjection
                        | GemmKind::FfnUp
                        | GemmKind::FfnDown => {
                            let compute = acc.pe.gemm_cycles(shape, PeMode::Fp16) * count_f;
                            let weight_bytes = (shape.k * shape.n) as f64 * fp16 * count_f;
                            let io_bytes =
                                ((shape.m * shape.k) + (shape.m * shape.n)) as f64 * fp16 * count_f;
                            let mac_e = count_f * shape.macs() as f64 * acc.energy.fp16_mac_pj;
                            acc.push(
                                format!("{kind:?}"),
                                OpCategory::Linear,
                                compute,
                                weight_bytes + io_bytes,
                                mac_e,
                            );
                        }
                        GemmKind::QkT => {
                            // Sparsity mask decode / engine steering.
                            let steer = acc.vec.elementwise_cycles(n * n * heads, 0.5);
                            acc.push(
                                "MaskDecode",
                                OpCategory::Prediction,
                                steer,
                                0.0,
                                n * n * heads * 0.5 * acc.energy.vector_op_pj,
                            );
                            let compute = self.sparse_attention_cycles(&acc, shape, count_f);
                            // Q/K streamed through the auto-encoder: INT8
                            // with ~50% compression.
                            let qk_bytes = 2.0 * n * cfg.head_dim() as f64 * heads * 0.5;
                            let mac_e = count_f
                                * shape.macs() as f64
                                * kept_fraction
                                * acc.energy.int8_mac_pj;
                            acc.push(
                                "QkT(polarized)",
                                OpCategory::QkT,
                                compute,
                                qk_bytes + staged_map_bytes,
                                mac_e,
                            );
                        }
                        GemmKind::AttnV => {
                            let compute = self.sparse_attention_cycles(&acc, shape, count_f);
                            let v_bytes = n * cfg.head_dim() as f64 * heads;
                            let o_bytes = n * cfg.hidden as f64;
                            let mac_e = count_f
                                * shape.macs() as f64
                                * kept_fraction
                                * acc.energy.int8_mac_pj;
                            acc.push(
                                "AttnV(polarized)",
                                OpCategory::AttnV,
                                compute,
                                staged_map_bytes + v_bytes + o_bytes,
                                mac_e,
                            );
                        }
                    }
                }
                LayerOp::Softmax { rows, cols, count } => {
                    let elems = (rows * cols * count) as f64 * kept_fraction;
                    let cycles = acc.vec.softmax_cycles(elems, 0.0);
                    let energy =
                        elems * crate::vector::SOFTMAX_OPS_PER_ELEM * acc.energy.vector_op_pj;
                    acc.push("Softmax", OpCategory::Softmax, cycles, 0.0, energy);
                }
                LayerOp::Reorder { .. } => {}
            }
        }
        acc.finish(self.name(), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::SangerMachine;

    #[test]
    fn vitcod_beats_sanger() {
        // Fig. 6(a): ViTCoD is ~1.66x faster than Sanger on CogVideoX
        // (10.61/6.38 for 2B, 12.04/7.05 for 5B).
        let p = AttentionProfile::paper_mp();
        for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
            let sanger = SangerMachine::default_budget().run_model(&cfg, &p);
            let vitcod = VitcodMachine::default_budget().run_model(&cfg, &p);
            let ratio = sanger.seconds / vitcod.seconds;
            assert!(
                (1.2..2.5).contains(&ratio),
                "{}: ViTCoD/Sanger speedup {ratio:.2}, paper implies ~1.66-1.71",
                cfg.name
            );
        }
    }

    #[test]
    fn staging_still_significant() {
        let report = VitcodMachine::default_budget()
            .run_model(&ModelConfig::cogvideox_5b(), &AttentionProfile::paper_mp());
        let attn_mem: f64 = report
            .block_records
            .iter()
            .filter(|r| matches!(r.category, OpCategory::QkT | OpCategory::AttnV))
            .map(|r| r.memory_cycles)
            .sum();
        assert!(attn_mem > 0.0);
    }
}
