//! Cross-check: the steady-state `max(compute, memory)` accounting used by
//! the machine models against the explicit double-buffered tile trace, on
//! realistic attention-op tile populations.

use paro_model::ModelConfig;
use paro_quant::Bitwidth;
use paro_sim::trace::trace_pipeline;
use paro_sim::{AttentionProfile, HardwareConfig, PeArray, PeMode};

/// Builds the per-tile costs of one head's fused QKᵀ+AttnV under a
/// mixed-precision profile, using FlashAttention-style macro-tiles
/// (PANEL x PANEL score blocks): compute follows each block's PE mode;
/// each non-skipped tile streams its K panel (INT8) from DRAM; the score
/// tile itself stays in SRAM (store cost 0). Skipped (0-bit) tiles elide
/// both compute and the K-panel prefetch.
fn attention_tiles(
    hw: &HardwareConfig,
    cfg: &ModelConfig,
    profile: &AttentionProfile,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    const PANEL: usize = 1024;
    let _ = PeArray::new(hw);
    let n = cfg.total_tokens();
    let hd = cfg.head_dim();
    let panels = n.div_ceil(PANEL);
    let tiles = panels * panels;
    let block_macs = (PANEL * PANEL * hd) as f64;
    let mut compute = Vec::with_capacity(tiles);
    let mut loads = Vec::with_capacity(tiles);
    let stores = vec![0.0; tiles];
    let shares = [
        (Bitwidth::B0, profile.share(Bitwidth::B0)),
        (Bitwidth::B2, profile.share(Bitwidth::B2)),
        (Bitwidth::B4, profile.share(Bitwidth::B4)),
        (Bitwidth::B8, profile.share(Bitwidth::B8)),
    ];
    for i in 0..tiles {
        // Interleave bitwidths according to the shares (the dispatcher
        // mixes block bitwidths rather than batching them; see the
        // `interleaving_beats_sorted_schedule` test for why that matters).
        let frac = (i % 10) as f64 / 10.0;
        let mut acc = 0.0;
        let mut bits = Bitwidth::B8;
        for (b, s) in shares {
            acc += s;
            if frac < acc - 1e-9 {
                bits = b;
                break;
            }
        }
        let mode = PeMode::for_bitwidth(bits);
        if mode == PeMode::Skip {
            compute.push(0.0);
            loads.push(0.0);
        } else {
            compute.push(block_macs / (hw.int8_macs_per_cycle as f64 * mode.throughput_factor()));
            loads.push((PANEL * hd) as f64 / hw.dram_bytes_per_cycle());
        }
    }
    (loads, compute, stores)
}

#[test]
fn trace_agrees_with_steady_state_on_attention_tiles() {
    // Uniform-bitwidth tile streams reach the steady-state bound with the
    // plain double buffer; heterogeneous mixes are allowed a documented
    // slack (see buffer_depth_closes_steady_state_gap).
    let hw = HardwareConfig::paro_asic();
    let cfg = ModelConfig::cogvideox_2b();
    for (profile, slack) in [
        (AttentionProfile::uniform(Bitwidth::B8), 0.02),
        (AttentionProfile::uniform(Bitwidth::B2), 0.02),
        (AttentionProfile::paper_mp(), 0.35),
    ] {
        let (loads, compute, stores) = attention_tiles(&hw, &cfg, &profile);
        let trace = trace_pipeline(&loads, &compute, &stores);
        let total_compute: f64 = compute.iter().sum();
        let total_mem: f64 = loads.iter().sum::<f64>() + stores.iter().sum::<f64>();
        let steady = total_compute.max(total_mem);
        let rel = (trace.latency() - steady) / steady;
        assert!(
            (0.0..slack).contains(&rel),
            "avg {:.1} bits: trace {:.0} vs steady-state {:.0} ({:.1}% off, slack {:.0}%)",
            profile.avg_bits(),
            trace.latency(),
            steady,
            rel * 100.0,
            slack * 100.0
        );
    }
}

#[test]
fn buffer_depth_closes_steady_state_gap() {
    // The finding this crosscheck surfaced: with mixed bitwidths, 2-bit
    // tiles are memory-bound and 8-bit tiles compute-bound, and a 1-slot
    // prefetch (classic double buffer) cannot let the DMA run ahead far
    // enough to balance them — the machine models' max(compute, memory)
    // idealization implicitly assumes deeper buffering. Deeper input
    // buffering monotonically closes the gap.
    use paro_sim::trace::trace_pipeline_with_buffers;
    let hw = HardwareConfig::paro_asic();
    let cfg = ModelConfig::cogvideox_2b();
    let (loads, compute, stores) = attention_tiles(&hw, &cfg, &AttentionProfile::paper_mp());
    let total_compute: f64 = compute.iter().sum();
    let total_mem: f64 = loads.iter().sum();
    let steady = total_compute.max(total_mem);
    let mut prev = f64::INFINITY;
    let mut gaps = Vec::new();
    for buffers in [2usize, 4, 8, 16] {
        let t = trace_pipeline_with_buffers(&loads, &compute, &stores, buffers);
        assert!(
            t.latency() <= prev + 1e-9,
            "deeper buffering must not slow the pipeline"
        );
        prev = t.latency();
        gaps.push((buffers, (t.latency() - steady) / steady));
    }
    // At 16 buffers the gap is near zero.
    let (_, final_gap) = gaps.last().copied().unwrap();
    assert!(
        final_gap < 0.02,
        "deep buffering should reach steady state; gaps: {gaps:?}"
    );
    // And the 2-buffer gap is the one we document (double digits %).
    assert!(gaps[0].1 > 0.05, "gaps: {gaps:?}");
}

#[test]
fn skipped_tiles_shorten_the_trace() {
    let hw = HardwareConfig::paro_asic();
    let cfg = ModelConfig::cogvideox_2b();
    let (l8, c8, s8) = attention_tiles(&hw, &cfg, &AttentionProfile::uniform(Bitwidth::B8));
    let (lm, cm, sm) = attention_tiles(&hw, &cfg, &AttentionProfile::paper_mp());
    let t8 = trace_pipeline(&l8, &c8, &s8);
    let tm = trace_pipeline(&lm, &cm, &sm);
    assert!(
        tm.latency() < t8.latency(),
        "mixed precision must shorten the tile trace: {} vs {}",
        tm.latency(),
        t8.latency()
    );
    // Near the avg-bits ratio (8/4.8 = 1.67) under deep buffering; the
    // 2-buffer pipeline keeps part of it.
    let ratio = t8.latency() / tm.latency();
    assert!(
        (1.15..2.0).contains(&ratio),
        "speedup {ratio:.2} should be near 8/4.8 = 1.67"
    );
    let tm_deep = paro_sim::trace::trace_pipeline_with_buffers(&lm, &cm, &sm, 16);
    let deep_ratio = t8.latency() / tm_deep.latency();
    assert!(
        (1.5..2.0).contains(&deep_ratio),
        "deep-buffer speedup {deep_ratio:.2}"
    );
}

#[test]
fn utilization_reflects_boundness() {
    let hw = HardwareConfig::paro_asic();
    let cfg = ModelConfig::cogvideox_2b();
    let (l, c, s) = attention_tiles(&hw, &cfg, &AttentionProfile::uniform(Bitwidth::B8));
    let t = trace_pipeline(&l, &c, &s);
    // INT8 QKT tiles are strongly compute-bound on this machine.
    assert!(
        t.compute_utilization() > 0.9,
        "utilization {:.2}",
        t.compute_utilization()
    );
}
