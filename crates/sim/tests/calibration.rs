//! Calibration harness: prints the Fig. 6(a)/6(b) numbers the machine
//! models produce, and asserts the paper-shape relationships that must
//! hold regardless of exact constants.

use paro_model::ModelConfig;
use paro_sim::machines::{
    GpuMachine, Machine, ParoMachine, ParoOptimizations, SangerMachine, VitcodMachine,
};
use paro_sim::{AttentionProfile, HardwareConfig};

struct Numbers {
    sanger: f64,
    vitcod: f64,
    paro: f64,
    a100: f64,
    align: f64,
}

fn numbers(cfg: &ModelConfig) -> Numbers {
    let p = AttentionProfile::paper_mp();
    Numbers {
        sanger: SangerMachine::default_budget().run_model(cfg, &p).seconds,
        vitcod: VitcodMachine::default_budget().run_model(cfg, &p).seconds,
        paro: ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::all())
            .run_model(cfg, &p)
            .seconds,
        a100: GpuMachine::a100().run_model(cfg, &p).seconds,
        align: ParoMachine::new(HardwareConfig::paro_align_a100(), ParoOptimizations::all())
            .run_model(cfg, &p)
            .seconds,
    }
}

#[test]
fn fig6a_shape_holds() {
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let n = numbers(&cfg);
        println!(
            "{}: e2e seconds — sanger {:.1}, vitcod {:.1}, paro {:.1}, a100 {:.1}, align {:.1}",
            cfg.name, n.sanger, n.vitcod, n.paro, n.a100, n.align
        );
        println!(
            "{}: PARO/Sanger {:.2} (paper 10.61/12.04), PARO/ViTCoD {:.2} (6.38/7.05), \
             A100/PARO {:.2} (>1), align/A100 speedup {:.2} (1.68/2.71)",
            cfg.name,
            n.sanger / n.paro,
            n.vitcod / n.paro,
            n.paro / n.a100,
            n.a100 / n.align,
        );
        // Shape assertions (who wins):
        assert!(n.paro < n.vitcod, "PARO must beat ViTCoD");
        assert!(n.vitcod < n.sanger, "ViTCoD must beat Sanger");
        assert!(
            n.a100 < n.paro,
            "A100 beats the small PARO (more resources)"
        );
        assert!(n.align < n.a100, "PARO-align-A100 must beat the A100");
        // Factor bands (within ~2x of the paper's):
        let ps = n.sanger / n.paro;
        assert!((5.0..25.0).contains(&ps), "PARO/Sanger {ps:.2}");
        let pv = n.vitcod / n.paro;
        assert!((3.0..14.0).contains(&pv), "PARO/ViTCoD {pv:.2}");
        let aa = n.a100 / n.align;
        assert!((1.2..5.5).contains(&aa), "align speedup {aa:.2}");
    }
}

#[test]
fn fig6b_ablation_shape() {
    let p = AttentionProfile::paper_mp();
    for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
        let mut speedups = Vec::new();
        let base = ParoMachine::new(HardwareConfig::paro_asic(), ParoOptimizations::none())
            .run_model(&cfg, &p)
            .seconds;
        for (name, opts) in ParoOptimizations::ablation_ladder() {
            let s = ParoMachine::new(HardwareConfig::paro_asic(), opts)
                .run_model(&cfg, &p)
                .seconds;
            speedups.push((name, base / s));
        }
        println!("{}: ablation {:?}", cfg.name, speedups);
        // Paper (2B/5B): +W8A8 1.07/1.11, +attention quant 2.33/2.38,
        // +output-aware 3.06/3.00.
        assert!(
            (1.02..1.6).contains(&speedups[1].1),
            "w8a8 {:?}",
            speedups[1]
        );
        assert!(
            (1.7..3.2).contains(&speedups[2].1),
            "attn {:?}",
            speedups[2]
        );
        assert!(
            (2.3..4.2).contains(&speedups[3].1),
            "aware {:?}",
            speedups[3]
        );
        assert!(speedups[3].1 > speedups[2].1 && speedups[2].1 > speedups[1].1);
    }
}
