//! Property-based tests for the accelerator simulator.

use paro_model::workload::GemmShape;
use paro_quant::Bitwidth;
use paro_sim::dispatch::{dispatch, DispatchPolicy};
use paro_sim::trace::trace_pipeline;
use paro_sim::{AttentionProfile, HardwareConfig, PeArray, PeMode};
use proptest::prelude::*;

fn costs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 1..200)
}

proptest! {
    #[test]
    fn dispatch_work_conservation(costs in costs(), rows in 1usize..32) {
        let total: f64 = costs.iter().filter(|&&c| c > 0.0).sum();
        for policy in [DispatchPolicy::GreedyLpt, DispatchPolicy::RoundRobin] {
            let out = dispatch(&costs, rows, policy);
            let useful = out.utilization * rows as f64 * out.makespan;
            prop_assert!((useful - total).abs() <= 1e-6 * (1.0 + total));
            prop_assert!(out.utilization <= 1.0 + 1e-9);
            // Makespan bounded below by the mean load and the largest item.
            let max_item = costs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(out.makespan + 1e-9 >= total / rows as f64);
            prop_assert!(out.makespan + 1e-9 >= max_item);
        }
    }

    #[test]
    fn lpt_satisfies_list_scheduling_bound(costs in costs(), rows in 1usize..16) {
        // Greedy least-loaded assignment guarantees
        // makespan <= total/m + (1 - 1/m) * max_item.
        // (Per-instance LPT-vs-round-robin dominance does NOT hold — LPT is
        // only a 4/3 approximation — so the guarantee is what we pin.)
        let lpt = dispatch(&costs, rows, DispatchPolicy::GreedyLpt);
        let total: f64 = costs.iter().filter(|&&c| c > 0.0).sum();
        let max_item = costs.iter().cloned().fold(0.0f64, f64::max);
        let m = rows as f64;
        let decisions = costs.iter().filter(|&&c| c <= 0.0).count() as f64 / m;
        let bound = (total / m + (1.0 - 1.0 / m) * max_item).max(decisions);
        prop_assert!(
            lpt.makespan <= bound + 1e-9,
            "makespan {} vs bound {}", lpt.makespan, bound
        );
    }

    #[test]
    fn gemm_cycles_monotone_in_shape(
        m in 1usize..300, k in 1usize..300, n in 1usize..300
    ) {
        let pe = PeArray::new(&HardwareConfig::paro_asic());
        let base = pe.gemm_cycles(GemmShape::new(m, k, n), PeMode::Int8x8);
        let bigger = pe.gemm_cycles(GemmShape::new(m + 32, k, n), PeMode::Int8x8);
        prop_assert!(bigger > base);
        // Mode speedups are exact ratios.
        let c4 = pe.gemm_cycles(GemmShape::new(m, k, n), PeMode::Int4x8);
        prop_assert!((base / c4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn profile_identities(
        s0 in 0.0f64..1.0, s2 in 0.0f64..1.0, s4 in 0.0f64..1.0, s8 in 0.0f64..1.0
    ) {
        let total = s0 + s2 + s4 + s8;
        prop_assume!(total > 1e-6);
        let shares = [s0 / total, s2 / total, s4 / total, s8 / total];
        let p = AttentionProfile::new(shares).unwrap();
        // inverse_throughput == avg_bits / 8, always.
        prop_assert!((p.inverse_throughput() - p.avg_bits() / 8.0).abs() < 1e-9);
        prop_assert!((0.0..=8.0).contains(&p.avg_bits()));
        prop_assert!((p.skip_fraction() - shares[0]).abs() < 1e-12);
    }

    #[test]
    fn profile_from_bits_avg_matches(len in 1usize..100, seed in 0u64..1000) {
        let mut state = seed;
        let bits: Vec<Bitwidth> = (0..len).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Bitwidth::ALL[(state >> 33) as usize % 4]
        }).collect();
        let p = AttentionProfile::from_bits(&bits).unwrap();
        let avg: f64 = bits.iter().map(|b| b.bits() as f64).sum::<f64>() / len as f64;
        prop_assert!((p.avg_bits() - avg).abs() < 1e-9);
    }

    #[test]
    fn trace_latency_bounds(
        tiles in 1usize..100, load in 0.0f64..50.0, compute in 0.0f64..50.0, store in 0.0f64..50.0
    ) {
        let t = paro_sim::trace::trace_uniform(tiles, load, compute, store);
        let n = tiles as f64;
        // Latency at least the busy time of the busier engine, at most the
        // fully-serial execution.
        prop_assert!(t.latency() + 1e-9 >= n * compute);
        prop_assert!(t.latency() + 1e-9 >= n * (load + store));
        prop_assert!(t.latency() <= n * (load + compute + store) + 1e-9);
    }

    #[test]
    fn trace_heterogeneous_busy_conservation(
        loads in proptest::collection::vec(0.0f64..20.0, 1..60),
        seed in 0u64..1000,
    ) {
        let n = loads.len();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f64 / 100.0
        };
        let computes: Vec<f64> = (0..n).map(|_| next()).collect();
        let stores: Vec<f64> = (0..n).map(|_| next()).collect();
        let t = trace_pipeline(&loads, &computes, &stores);
        prop_assert!((t.compute_busy() - computes.iter().sum::<f64>()).abs() < 1e-6);
        let mem: f64 = loads.iter().sum::<f64>() + stores.iter().sum::<f64>();
        prop_assert!((t.memory_busy() - mem).abs() < 1e-6);
    }
}
