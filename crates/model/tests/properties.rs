//! Property-based tests for grids, patterns and workloads.

use paro_model::patterns::{synthesize_head, PatternKind, PatternSpec};
use paro_model::workload::{attention_mac_fraction, block_macs, block_ops, LayerOp};
use paro_model::{AxisOrder, ModelConfig, TokenGrid};
use proptest::prelude::*;

fn grid() -> impl Strategy<Value = TokenGrid> {
    (1usize..=5, 1usize..=5, 1usize..=5).prop_map(|(f, h, w)| TokenGrid::new(f, h, w))
}

proptest! {
    #[test]
    fn grid_index_roundtrip(g in grid()) {
        for t in 0..g.len() {
            let (f, h, w) = g.coords(t);
            prop_assert_eq!(g.index(f, h, w), t);
        }
    }

    #[test]
    fn reorder_indices_are_permutations(g in grid()) {
        for order in AxisOrder::ALL {
            let mut idx = g.reorder_indices(order);
            idx.sort_unstable();
            prop_assert_eq!(idx, (0..g.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn innermost_orders_share_contiguity(g in grid()) {
        // Two orders with the same innermost axis must produce the same
        // partition of the sequence into innermost runs.
        for (a, b) in [
            (AxisOrder::Fhw, AxisOrder::Hfw), // innermost w
            (AxisOrder::Fwh, AxisOrder::Wfh), // innermost h
            (AxisOrder::Hwf, AxisOrder::Whf), // innermost f
        ] {
            prop_assert_eq!(a.innermost(), b.innermost());
            let run_len = match a.innermost() {
                'f' => g.frames(),
                'h' => g.height(),
                'w' => g.width(),
                _ => unreachable!(),
            };
            let ia = g.reorder_indices(a);
            let ib = g.reorder_indices(b);
            let runs = |v: &[usize]| {
                let mut set: Vec<Vec<usize>> = v
                    .chunks(run_len)
                    .map(|c| {
                        let mut c = c.to_vec();
                        c.sort_unstable();
                        c
                    })
                    .collect();
                set.sort();
                set
            };
            prop_assert_eq!(runs(&ia), runs(&ib));
        }
    }

    #[test]
    fn pattern_groups_partition(g in grid()) {
        for kind in [
            PatternKind::Temporal,
            PatternKind::SpatialRow,
            PatternKind::SpatialCol,
            PatternKind::default_window(&g),
            PatternKind::Diffuse,
        ] {
            let count = kind.group_count(&g);
            let mut sizes = vec![0usize; count];
            for t in 0..g.len() {
                sizes[kind.group_of(&g, t)] += 1;
            }
            prop_assert_eq!(sizes.iter().sum::<usize>(), g.len());
            prop_assert!(sizes.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn synthesis_shapes_and_determinism(g in grid(), d in 1usize..=32, seed in 0u64..500) {
        let spec = PatternSpec::new(PatternKind::Temporal);
        let a = synthesize_head(&g, d, &spec, seed);
        prop_assert_eq!(a.q.shape(), &[g.len(), d][..]);
        prop_assert!(a.q.as_slice().iter().all(|v| v.is_finite()));
        let b = synthesize_head(&g, d, &spec, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn workload_macs_positive_and_consistent(
        blocks in 1usize..8, hidden_units in 1usize..8, heads in 1usize..4
    ) {
        let mut cfg = ModelConfig::tiny(2, 2, 2);
        cfg.blocks = blocks;
        cfg.hidden = 64 * hidden_units * heads;
        cfg.heads = heads * hidden_units; // keep divisible
        prop_assume!(cfg.hidden.is_multiple_of(cfg.heads));
        let total = block_macs(&cfg);
        let from_ops: u64 = block_ops(&cfg, false).iter().map(LayerOp::macs).sum();
        prop_assert_eq!(total, from_ops);
        let frac = attention_mac_fraction(&cfg);
        prop_assert!((0.0..1.0).contains(&frac));
    }
}
