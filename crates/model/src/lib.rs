//! CogVideoX-shaped workload models and the synthetic 3D-full-attention
//! pattern generator.
//!
//! The PARO paper evaluates on CogVideoX-2B/5B, text-to-video diffusion
//! transformers whose "3D full attention" flattens a
//! `frames x height x width` token grid (~17.8k tokens) into one sequence.
//! Real model weights cannot be run here, so this crate supplies the two
//! things the reproduction actually needs from the model:
//!
//! 1. **Shape truth** ([`ModelConfig`], [`workload`]): layer counts, hidden
//!    sizes, head counts and the exact GEMM/softmax/reorder op stream per
//!    transformer block — which is all the performance experiments consume.
//! 2. **Distribution truth** ([`patterns`]): synthetic `Q/K/V` embeddings
//!    whose attention maps exhibit the paper's observed diagonal patterns
//!    (local aggregation along frame / height / width, Fig. 1 and Fig. 8) —
//!    which is all the quantization-accuracy experiments consume.
//!
//! # Example
//!
//! ```
//! use paro_model::ModelConfig;
//!
//! let cfg = ModelConfig::cogvideox_5b();
//! assert_eq!(cfg.blocks, 42);
//! // ~17.8k tokens, as the paper reports.
//! assert!(cfg.total_tokens() > 17_000 && cfg.total_tokens() < 18_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod dit;
mod grid;
pub mod patterns;
pub mod workload;

pub use config::ModelConfig;
pub use grid::{AxisOrder, TokenGrid};
