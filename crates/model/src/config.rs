use crate::TokenGrid;
use serde::{Deserialize, Serialize};

/// Architecture configuration of a CogVideoX-style video DiT.
///
/// Numbers follow the released CogVideoX models as described in the paper:
/// the 5B model has 42 transformer blocks and the 480x640, 49-frame setting
/// produces ≈17.8k tokens after VAE + patchification (latent grid
/// 13 x 30 x 45 plus 226 text tokens). Each transformer block is
/// multi-head self-attention followed by a feed-forward network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name, e.g. `"CogVideoX-5B"`.
    pub name: String,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Hidden dimension `d_model`.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// FFN expansion factor (FFN inner dim = `ffn_mult * hidden`).
    pub ffn_mult: usize,
    /// Latent video token grid.
    pub grid: TokenGrid,
    /// Number of text (prompt) tokens concatenated to the visual tokens.
    pub text_tokens: usize,
    /// Diffusion sampling steps (DDIM 50 in the paper's setting).
    pub steps: usize,
}

impl ModelConfig {
    /// CogVideoX-2B: 30 blocks, hidden 1920, 30 heads.
    pub fn cogvideox_2b() -> Self {
        ModelConfig {
            name: "CogVideoX-2B".to_string(),
            blocks: 30,
            hidden: 1920,
            heads: 30,
            ffn_mult: 4,
            grid: TokenGrid::new(13, 30, 45),
            text_tokens: 226,
            steps: 50,
        }
    }

    /// CogVideoX-5B: 42 blocks, hidden 3072, 48 heads.
    pub fn cogvideox_5b() -> Self {
        ModelConfig {
            name: "CogVideoX-5B".to_string(),
            blocks: 42,
            hidden: 3072,
            heads: 48,
            ffn_mult: 4,
            grid: TokenGrid::new(13, 30, 45),
            text_tokens: 226,
            steps: 50,
        }
    }

    /// A scaled-down configuration for tests and fast algorithm
    /// experiments: same structure, small token grid.
    ///
    /// Quantization-accuracy conclusions transfer because the attention
    /// patterns are generated at the same *relative* locality; only the
    /// absolute token count shrinks.
    pub fn tiny(frames: usize, height: usize, width: usize) -> Self {
        ModelConfig {
            name: format!("Tiny-{frames}x{height}x{width}"),
            blocks: 2,
            hidden: 128,
            heads: 4,
            ffn_mult: 4,
            grid: TokenGrid::new(frames, height, width),
            text_tokens: 0,
            steps: 1,
        }
    }

    /// A scaled-down configuration with a prompt-token prefix, for
    /// text-aware tests (the CogVideoX sequence layout at toy scale).
    pub fn tiny_with_text(frames: usize, height: usize, width: usize, text_tokens: usize) -> Self {
        let mut cfg = ModelConfig::tiny(frames, height, width);
        cfg.text_tokens = text_tokens;
        cfg.name = format!("Tiny-{frames}x{height}x{width}+{text_tokens}t");
        cfg
    }

    /// Per-head dimension `hidden / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is zero or does not divide `hidden`.
    pub fn head_dim(&self) -> usize {
        assert!(self.heads > 0, "model must have at least one head");
        assert_eq!(
            self.hidden % self.heads,
            0,
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// Total sequence length: visual tokens + text tokens.
    pub fn total_tokens(&self) -> usize {
        self.grid.len() + self.text_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cogvideox_5b_matches_paper() {
        let cfg = ModelConfig::cogvideox_5b();
        assert_eq!(cfg.blocks, 42, "paper Sec. II-A: 42 transformer blocks");
        assert_eq!(cfg.head_dim(), 64);
        let n = cfg.total_tokens();
        assert!(
            (17_000..18_000).contains(&n),
            "paper: token length is 17.8k, got {n}"
        );
    }

    #[test]
    fn cogvideox_2b_shape() {
        let cfg = ModelConfig::cogvideox_2b();
        assert_eq!(cfg.head_dim(), 64);
        assert_eq!(
            cfg.total_tokens(),
            ModelConfig::cogvideox_5b().total_tokens()
        );
        assert!(cfg.hidden < ModelConfig::cogvideox_5b().hidden);
    }

    #[test]
    fn attention_map_dominates_storage() {
        // Paper Sec. V-B: QKVO matrices are only ~0.36% of the attention
        // map. Check the same ratio falls out of the config.
        let cfg = ModelConfig::cogvideox_5b();
        let n = cfg.total_tokens() as f64;
        let qkvo = 4.0 * n * cfg.hidden as f64;
        let attn_map = n * n * cfg.heads as f64;
        let ratio = qkvo / attn_map;
        assert!(
            ratio < 0.02,
            "QKVO/attention-map ratio {ratio} should be under 2% \
             (paper reports 0.36% under its exact counting)"
        );
    }

    #[test]
    fn attention_map_size_matches_paper() {
        // Paper Sec. I: the attention map takes 56.50 GB per transformer
        // block for CogVideoX-5B under FP16.
        let cfg = ModelConfig::cogvideox_5b();
        let n = cfg.total_tokens() as f64;
        let bytes = n * n * cfg.heads as f64 * 2.0; // FP16
        let gb = bytes / (1u64 << 30) as f64;
        assert!(
            (25.0..60.0).contains(&gb),
            "attention map per block = {gb:.2} GB; paper reports 56.50 GB \
             (difference comes from exact token-grid assumptions)"
        );
    }

    #[test]
    fn tiny_config_is_consistent() {
        let cfg = ModelConfig::tiny(4, 6, 8);
        assert_eq!(cfg.grid.len(), 192);
        assert_eq!(cfg.head_dim(), 32);
        assert_eq!(cfg.total_tokens(), 192);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn head_dim_requires_divisibility() {
        let mut cfg = ModelConfig::tiny(2, 2, 2);
        cfg.hidden = 130;
        cfg.head_dim();
    }
}
