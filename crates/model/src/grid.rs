use serde::{Deserialize, Serialize};

/// The 3-D latent token grid of a video DiT: `frames x height x width`.
///
/// CogVideoX's "3D full attention" flattens this grid into one token
/// sequence. The **canonical order** used throughout this reproduction is
/// frame-major: token index `t = f·(H·W) + h·W + w`. PARO's reorder permutes
/// this flattening order (see [`AxisOrder`]).
///
/// # Example
///
/// ```
/// use paro_model::TokenGrid;
///
/// let grid = TokenGrid::new(13, 30, 45);
/// assert_eq!(grid.len(), 17_550);
/// let (f, h, w) = grid.coords(grid.index(3, 7, 11));
/// assert_eq!((f, h, w), (3, 7, 11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TokenGrid {
    frames: usize,
    height: usize,
    width: usize,
}

impl TokenGrid {
    /// Creates a grid. Zero-sized axes are allowed only for the degenerate
    /// empty grid used in tests.
    pub fn new(frames: usize, height: usize, width: usize) -> Self {
        TokenGrid {
            frames,
            height,
            width,
        }
    }

    /// Derives the latent token grid from video parameters, the CogVideoX
    /// way: the VAE compresses the spatial axes by `spatial_compression`
    /// and packs frames in groups of `temporal_compression` (plus the
    /// first frame standalone), then a `patch x patch` patchifier divides
    /// the spatial latent.
    ///
    /// # Example
    ///
    /// CogVideoX's released 720x480, 49-frame setting with its 8x spatial /
    /// 4x temporal VAE and 2x2 patching — this is the grid that makes the
    /// paper's "17.8k tokens" arithmetic work out (the paper's text says
    /// "640x480", but 640 gives only ~15.8k tokens with text; 720 gives
    /// 17,550 + 226 = 17,776 ≈ 17.8k):
    ///
    /// ```
    /// use paro_model::{ModelConfig, TokenGrid};
    /// let grid = TokenGrid::from_video(720, 480, 49, 8, 4, 2);
    /// assert_eq!(grid.frames(), 13);   // 1 + 48/4
    /// assert_eq!(grid.height(), 30);   // 480 / 8 / 2
    /// assert_eq!(grid.width(), 45);    // 720 / 8 / 2
    /// assert_eq!(grid, ModelConfig::cogvideox_5b().grid);
    /// assert_eq!(grid.len() + 226, 17_776); // the paper's 17.8k
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any compression factor or the patch size is zero.
    pub fn from_video(
        width_px: usize,
        height_px: usize,
        frames: usize,
        spatial_compression: usize,
        temporal_compression: usize,
        patch: usize,
    ) -> Self {
        assert!(spatial_compression > 0 && temporal_compression > 0 && patch > 0);
        let latent_frames = if frames == 0 {
            0
        } else {
            1 + (frames - 1) / temporal_compression
        };
        TokenGrid {
            frames: latent_frames,
            height: height_px / spatial_compression / patch,
            width: width_px / spatial_compression / patch,
        }
    }

    /// Number of frames (temporal extent).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Latent height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Latent width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of visual tokens.
    pub fn len(&self) -> usize {
        self.frames * self.height * self.width
    }

    /// Whether the grid holds zero tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical (frame-major) token index of coordinate `(f, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn index(&self, f: usize, h: usize, w: usize) -> usize {
        assert!(f < self.frames && h < self.height && w < self.width);
        (f * self.height + h) * self.width + w
    }

    /// Coordinates `(f, h, w)` of a canonical token index.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range.
    pub fn coords(&self, token: usize) -> (usize, usize, usize) {
        assert!(token < self.len(), "token {token} out of range");
        let w = token % self.width;
        let rest = token / self.width;
        let h = rest % self.height;
        let f = rest / self.height;
        (f, h, w)
    }

    /// The token permutation realizing an [`AxisOrder`]: element `i` of the
    /// result is the canonical index of the token placed at position `i`
    /// in the reordered sequence.
    ///
    /// The identity order [`AxisOrder::Fhw`] yields `0..len`.
    pub fn reorder_indices(&self, order: AxisOrder) -> Vec<usize> {
        let dims = order.extents(self);
        let mut out = Vec::with_capacity(self.len());
        for a in 0..dims[0] {
            for b in 0..dims[1] {
                for c in 0..dims[2] {
                    let (f, h, w) = order.to_fhw([a, b, c]);
                    out.push(self.index(f, h, w));
                }
            }
        }
        out
    }
}

/// One of the six flattening orders of the `(frame, height, width)` axes.
///
/// The paper (Sec. III-A): "Given an input token of size
/// `N_frame x N_width x N_height`, we achieve local block-wise patterns by
/// permuting these dimensions for the QK embeddings through token-level
/// reorder. There are a total of 6 possible reorder plans for each attention
/// head." The variant name lists axes from outermost (slowest-varying) to
/// innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisOrder {
    /// frame, height, width — the canonical order (identity reorder).
    Fhw,
    /// frame, width, height.
    Fwh,
    /// height, frame, width.
    Hfw,
    /// height, width, frame — groups all frames of a `(h, w)` position.
    Hwf,
    /// width, frame, height.
    Wfh,
    /// width, height, frame — groups all frames of a `(w, h)` position.
    Whf,
}

impl AxisOrder {
    /// All six orders, the search space of the offline plan selection.
    pub const ALL: [AxisOrder; 6] = [
        AxisOrder::Fhw,
        AxisOrder::Fwh,
        AxisOrder::Hfw,
        AxisOrder::Hwf,
        AxisOrder::Wfh,
        AxisOrder::Whf,
    ];

    /// Axis extents in this order's outer-to-inner sequence.
    pub fn extents(&self, grid: &TokenGrid) -> [usize; 3] {
        let (f, h, w) = (grid.frames(), grid.height(), grid.width());
        match self {
            AxisOrder::Fhw => [f, h, w],
            AxisOrder::Fwh => [f, w, h],
            AxisOrder::Hfw => [h, f, w],
            AxisOrder::Hwf => [h, w, f],
            AxisOrder::Wfh => [w, f, h],
            AxisOrder::Whf => [w, h, f],
        }
    }

    /// Maps an `(outer, middle, inner)` coordinate in this order back to
    /// `(f, h, w)`.
    pub fn to_fhw(&self, abc: [usize; 3]) -> (usize, usize, usize) {
        let [a, b, c] = abc;
        match self {
            AxisOrder::Fhw => (a, b, c),
            AxisOrder::Fwh => (a, c, b),
            AxisOrder::Hfw => (b, a, c),
            AxisOrder::Hwf => (c, a, b),
            AxisOrder::Wfh => (b, c, a),
            AxisOrder::Whf => (c, b, a),
        }
    }

    /// The innermost (fastest-varying) axis: `'f'`, `'h'` or `'w'`.
    ///
    /// Two orders with the same innermost axis place the same sets of
    /// tokens contiguously (they differ only in the ordering of the outer
    /// blocks), so they are equivalent for block-diagonal pattern
    /// unification.
    pub fn innermost(&self) -> char {
        self.name()
            .chars()
            .last()
            .expect("names are three characters")
    }

    /// Short lowercase name, e.g. `"hwf"`.
    pub fn name(&self) -> &'static str {
        match self {
            AxisOrder::Fhw => "fhw",
            AxisOrder::Fwh => "fwh",
            AxisOrder::Hfw => "hfw",
            AxisOrder::Hwf => "hwf",
            AxisOrder::Wfh => "wfh",
            AxisOrder::Whf => "whf",
        }
    }
}

impl std::fmt::Display for AxisOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let g = TokenGrid::new(3, 4, 5);
        for t in 0..g.len() {
            let (f, h, w) = g.coords(t);
            assert_eq!(g.index(f, h, w), t);
        }
    }

    #[test]
    fn canonical_order_is_frame_major() {
        let g = TokenGrid::new(2, 2, 3);
        assert_eq!(g.index(0, 0, 0), 0);
        assert_eq!(g.index(0, 0, 2), 2);
        assert_eq!(g.index(0, 1, 0), 3);
        assert_eq!(g.index(1, 0, 0), 6);
    }

    #[test]
    fn fhw_reorder_is_identity() {
        let g = TokenGrid::new(2, 3, 4);
        assert_eq!(
            g.reorder_indices(AxisOrder::Fhw),
            (0..g.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_orders_are_permutations() {
        let g = TokenGrid::new(3, 4, 5);
        for order in AxisOrder::ALL {
            let mut idx = g.reorder_indices(order);
            assert_eq!(idx.len(), g.len());
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), g.len(), "order {order} is not a permutation");
        }
    }

    #[test]
    fn hwf_groups_frames_contiguously() {
        // Under hwf, the `frames` tokens sharing a spatial position must be
        // adjacent — that is what turns a temporal-diagonal pattern into a
        // block diagonal.
        let g = TokenGrid::new(4, 2, 3);
        let idx = g.reorder_indices(AxisOrder::Hwf);
        for chunk in idx.chunks(g.frames()) {
            let (_, h0, w0) = g.coords(chunk[0]);
            for &t in chunk {
                let (_, h, w) = g.coords(t);
                assert_eq!((h, w), (h0, w0));
            }
            // All frames present exactly once.
            let mut frames: Vec<usize> = chunk.iter().map(|&t| g.coords(t).0).collect();
            frames.sort_unstable();
            assert_eq!(frames, (0..g.frames()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn to_fhw_inverts_extents_indexing() {
        let g = TokenGrid::new(3, 4, 5);
        for order in AxisOrder::ALL {
            let ext = order.extents(&g);
            assert_eq!(ext.iter().product::<usize>(), g.len());
            let (f, h, w) = order.to_fhw([ext[0] - 1, ext[1] - 1, ext[2] - 1]);
            assert_eq!((f, h, w), (g.frames() - 1, g.height() - 1, g.width() - 1));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AxisOrder::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    #[should_panic]
    fn coords_out_of_range_panics() {
        TokenGrid::new(1, 1, 1).coords(1);
    }
}
