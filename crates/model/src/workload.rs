//! Per-layer operation streams: the shape truth the simulator consumes.
//!
//! A transformer block of CogVideoX is multi-head self-attention plus an
//! FFN. This module enumerates the block's operations with exact GEMM
//! shapes so the accelerator simulator (and the GPU roofline model) can
//! account compute and memory traffic without running the model.

use crate::ModelConfig;
use serde::{Deserialize, Serialize};

/// The shape of one dense matrix multiplication `[m,k] x [k,n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Output rows.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmShape {
    /// Creates a GEMM shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        GemmShape { m, k, n }
    }

    /// Multiply-accumulate count `m·k·n`.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Floating-point operation count (2 ops per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Output element count `m·n`.
    pub fn output_elems(&self) -> u64 {
        self.m as u64 * self.n as u64
    }

    /// Input element count `m·k + k·n`.
    pub fn input_elems(&self) -> u64 {
        (self.m * self.k + self.k * self.n) as u64
    }
}

/// The role of a GEMM within the transformer block.
///
/// The simulator keys precision and dataflow decisions off this: linear
/// layers run W8A8, `QKᵀ` is subject to output-bitwidth-aware truncation,
/// `AttnV` is driven by the attention map's per-block bitwidths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GemmKind {
    /// Q/K/V input projections (weights `W_Q`, `W_K`, `W_V`).
    QkvProjection,
    /// The `Q·Kᵀ` score computation (per head).
    QkT,
    /// The `Attn·V` computation (per head).
    AttnV,
    /// Output projection after attention.
    OutProjection,
    /// First FFN linear (expansion).
    FfnUp,
    /// Second FFN linear (contraction).
    FfnDown,
}

impl GemmKind {
    /// Whether this GEMM belongs to the attention map computation (the
    /// paper's bottleneck, highlighted red in its Fig. 2).
    pub fn is_attention_map(&self) -> bool {
        matches!(self, GemmKind::QkT | GemmKind::AttnV)
    }

    /// Whether this GEMM is a weight-bearing linear layer (W8A8 under PARO).
    pub fn is_linear(&self) -> bool {
        !self.is_attention_map()
    }
}

/// One operation in a transformer block's execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// A dense GEMM with a role tag. `count` identical instances (e.g. one
    /// per attention head) are folded into one op record.
    Gemm {
        /// GEMM role.
        kind: GemmKind,
        /// Shape of one instance.
        shape: GemmShape,
        /// Number of identical instances.
        count: usize,
    },
    /// Row-wise softmax over `count` maps of `rows x cols` (one per head).
    Softmax {
        /// Rows per map.
        rows: usize,
        /// Columns per map.
        cols: usize,
        /// Number of maps.
        count: usize,
    },
    /// Token reorder of `tokens x dim` matrices, `count` instances
    /// (Q, K, V reorders plus the inverse reorder of O).
    Reorder {
        /// Sequence length.
        tokens: usize,
        /// Embedding width.
        dim: usize,
        /// Number of matrices moved.
        count: usize,
    },
}

impl LayerOp {
    /// Total MACs of the op (zero for softmax/reorder).
    pub fn macs(&self) -> u64 {
        match self {
            LayerOp::Gemm { shape, count, .. } => shape.macs() * *count as u64,
            _ => 0,
        }
    }

    /// Total element-wise work items (softmax elements, moved elements).
    pub fn vector_elems(&self) -> u64 {
        match self {
            LayerOp::Gemm { .. } => 0,
            LayerOp::Softmax { rows, cols, count } => (rows * cols * count) as u64,
            LayerOp::Reorder { tokens, dim, count } => (tokens * dim * count) as u64,
        }
    }
}

/// The op stream of one transformer block.
///
/// `include_reorder` adds PARO's online QKV reorder and the inverse reorder
/// of the attention output (paper Fig. 3); baselines run without it.
///
/// Per-head attention GEMMs are emitted with `count = heads`.
///
/// # Example
///
/// ```
/// use paro_model::workload::{block_ops, LayerOp};
/// use paro_model::ModelConfig;
/// let ops = block_ops(&ModelConfig::cogvideox_5b(), true);
/// // QKV proj, reorder, QKT, softmax, AttnV, inverse reorder, O proj, FFN x2.
/// assert_eq!(ops.len(), 9);
/// assert!(ops.iter().any(|op| matches!(op, LayerOp::Reorder { .. })));
/// ```
pub fn block_ops(cfg: &ModelConfig, include_reorder: bool) -> Vec<LayerOp> {
    let n = cfg.total_tokens();
    let d = cfg.hidden;
    let hd = cfg.head_dim();
    let heads = cfg.heads;
    let mut ops = Vec::new();
    // QKV projections: three [n,d] x [d,d] GEMMs.
    ops.push(LayerOp::Gemm {
        kind: GemmKind::QkvProjection,
        shape: GemmShape::new(n, d, d),
        count: 3,
    });
    if include_reorder {
        // Reorder Q, K, V along the token dimension.
        ops.push(LayerOp::Reorder {
            tokens: n,
            dim: d,
            count: 3,
        });
    }
    // Q·Kᵀ per head: [n,hd] x [hd,n].
    ops.push(LayerOp::Gemm {
        kind: GemmKind::QkT,
        shape: GemmShape::new(n, hd, n),
        count: heads,
    });
    // Softmax over each head's score map.
    ops.push(LayerOp::Softmax {
        rows: n,
        cols: n,
        count: heads,
    });
    // Attn·V per head: [n,n] x [n,hd].
    ops.push(LayerOp::Gemm {
        kind: GemmKind::AttnV,
        shape: GemmShape::new(n, n, hd),
        count: heads,
    });
    if include_reorder {
        // Inverse reorder of the attention output O.
        ops.push(LayerOp::Reorder {
            tokens: n,
            dim: d,
            count: 1,
        });
    }
    // Output projection.
    ops.push(LayerOp::Gemm {
        kind: GemmKind::OutProjection,
        shape: GemmShape::new(n, d, d),
        count: 1,
    });
    // FFN.
    ops.push(LayerOp::Gemm {
        kind: GemmKind::FfnUp,
        shape: GemmShape::new(n, d, cfg.ffn_mult * d),
        count: 1,
    });
    ops.push(LayerOp::Gemm {
        kind: GemmKind::FfnDown,
        shape: GemmShape::new(n, cfg.ffn_mult * d, d),
        count: 1,
    });
    ops
}

/// Total MACs of one transformer block.
pub fn block_macs(cfg: &ModelConfig) -> u64 {
    block_ops(cfg, false).iter().map(LayerOp::macs).sum()
}

/// Total MACs of a full generation: `blocks x steps` block executions.
pub fn model_macs(cfg: &ModelConfig) -> u64 {
    block_macs(cfg) * cfg.blocks as u64 * cfg.steps as u64
}

/// Fraction of a block's MACs spent in the attention map computation
/// (`QKᵀ` + `AttnV`). The paper reports attention is 67.93% of A100
/// latency for CogVideoX; the MAC share is the compute-side driver of that.
pub fn attention_mac_fraction(cfg: &ModelConfig) -> f64 {
    let ops = block_ops(cfg, false);
    let total: u64 = ops.iter().map(LayerOp::macs).sum();
    let attn: u64 = ops
        .iter()
        .map(|op| match op {
            LayerOp::Gemm { kind, .. } if kind.is_attention_map() => op.macs(),
            _ => 0,
        })
        .sum();
    attn as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape_counts() {
        let g = GemmShape::new(4, 5, 6);
        assert_eq!(g.macs(), 120);
        assert_eq!(g.flops(), 240);
        assert_eq!(g.output_elems(), 24);
        assert_eq!(g.input_elems(), 50);
    }

    #[test]
    fn block_ops_cover_all_roles() {
        let cfg = ModelConfig::cogvideox_5b();
        let ops = block_ops(&cfg, true);
        let kinds: Vec<GemmKind> = ops
            .iter()
            .filter_map(|op| match op {
                LayerOp::Gemm { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        for expected in [
            GemmKind::QkvProjection,
            GemmKind::QkT,
            GemmKind::AttnV,
            GemmKind::OutProjection,
            GemmKind::FfnUp,
            GemmKind::FfnDown,
        ] {
            assert!(kinds.contains(&expected), "missing {expected:?}");
        }
        assert!(ops.iter().any(|op| matches!(op, LayerOp::Softmax { .. })));
        assert!(ops.iter().any(|op| matches!(op, LayerOp::Reorder { .. })));
    }

    #[test]
    fn reorder_only_when_requested() {
        let cfg = ModelConfig::cogvideox_2b();
        assert!(!block_ops(&cfg, false)
            .iter()
            .any(|op| matches!(op, LayerOp::Reorder { .. })));
    }

    #[test]
    fn attention_dominates_cogvideox() {
        // The premise of the whole paper: with n >> d, the attention map
        // computation dominates the block. The MAC fraction is
        // n/(n + 6·d) ≈ 0.49-0.61 for CogVideoX; the paper's 67.93%
        // *latency* share is higher still because attention is also more
        // memory-bound than the linear layers.
        for cfg in [ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()] {
            let frac = attention_mac_fraction(&cfg);
            assert!(
                frac > 0.45,
                "{}: attention MAC fraction {frac:.3} should exceed 45%",
                cfg.name
            );
        }
    }

    #[test]
    fn qkt_and_attnv_have_equal_macs() {
        // Paper Sec. IV-B: "QKᵀ and AttnV each account for half of the
        // computations in attention."
        let cfg = ModelConfig::cogvideox_5b();
        let ops = block_ops(&cfg, false);
        let mac_of = |want: GemmKind| -> u64 {
            ops.iter()
                .map(|op| match op {
                    LayerOp::Gemm { kind, .. } if *kind == want => op.macs(),
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(mac_of(GemmKind::QkT), mac_of(GemmKind::AttnV));
    }

    #[test]
    fn model_macs_scale_with_blocks_and_steps() {
        let cfg = ModelConfig::cogvideox_2b();
        assert_eq!(
            model_macs(&cfg),
            block_macs(&cfg) * cfg.blocks as u64 * cfg.steps as u64
        );
    }

    #[test]
    fn reorder_data_is_small_fraction() {
        // Paper Sec. V-B: QKVO data is ~0.36% of the attention map, so the
        // reorder's element traffic must be tiny relative to attention MACs.
        let cfg = ModelConfig::cogvideox_5b();
        let ops = block_ops(&cfg, true);
        let reorder_elems: u64 = ops
            .iter()
            .filter(|op| matches!(op, LayerOp::Reorder { .. }))
            .map(LayerOp::vector_elems)
            .sum();
        let attn_macs: u64 = ops
            .iter()
            .map(|op| match op {
                LayerOp::Gemm { kind, .. } if kind.is_attention_map() => op.macs(),
                _ => 0,
            })
            .sum();
        assert!((reorder_elems as f64) < attn_macs as f64 * 1e-3);
    }
}
