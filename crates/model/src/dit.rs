//! A synthetic diffusion-transformer (DiT) whose attention heads exhibit
//! the paper's patterns *through an actual forward pass*.
//!
//! The pattern generator in [`crate::patterns`] plants structure directly
//! in per-head `Q/K/V`. This module goes one level deeper and builds a
//! small CogVideoX-shaped transformer whose **weights** produce that
//! structure from token embeddings:
//!
//! - Token embeddings carry *positional group codes*: dedicated embedding
//!   segments hold a unit code per aggregation group of each pattern kind
//!   (same-`(h,w)` for temporal heads, same-`(f,h)` for row heads, …), plus
//!   a content segment.
//! - Each attention head's `W_Q`/`W_K` read the segment of that head's
//!   pattern with a calibrated amplitude, so `Q·Kᵀ` concentrates within the
//!   pattern's groups — local aggregation implemented by projection
//!   weights, exactly the mechanism the paper attributes to vision feature
//!   extraction.
//!
//! Because the codes are positional, the attention patterns are identical
//! at every diffusion timestep and for any input content — reproducing the
//! paper's observation that "patterns remain consistent across different
//! timesteps and input noise or prompts", which is what makes offline
//! reorder-plan selection sound. The executor for this model (quantized
//! attention, DDIM sampling) lives in `paro-core`.

use crate::patterns::PatternKind;
use crate::{ModelConfig, TokenGrid};
use paro_tensor::rng::{derive_seed, seeded};
use paro_tensor::Tensor;
use rand::Rng;

/// Number of embedding segments: content + three pattern-code segments.
const SEGMENTS: usize = 4;

/// The pattern kinds that have dedicated embedding segments, in segment
/// order (segment 0 is content).
pub fn segment_kinds() -> [PatternKind; 3] {
    [
        PatternKind::Temporal,
        PatternKind::SpatialRow,
        PatternKind::SpatialCol,
    ]
}

/// Weights of one transformer block of the synthetic DiT.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeights {
    /// Query projection `[d, d]`.
    pub w_q: Tensor,
    /// Key projection `[d, d]`.
    pub w_k: Tensor,
    /// Value projection `[d, d]`.
    pub w_v: Tensor,
    /// Output projection `[d, d]`.
    pub w_o: Tensor,
    /// FFN expansion `[d, ffn_mult*d]`.
    pub w_ffn_up: Tensor,
    /// FFN contraction `[ffn_mult*d, d]`.
    pub w_ffn_down: Tensor,
    /// The pattern assigned to each head.
    pub head_patterns: Vec<PatternKind>,
}

/// The synthetic DiT: embeddings plus per-block weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDit {
    cfg: ModelConfig,
    /// Positional embedding `[n, d]`, added to every input.
    positional: Tensor,
    blocks: Vec<BlockWeights>,
}

impl SyntheticDit {
    /// Builds the model for a configuration. `hidden` must be divisible by
    /// both `heads` and the 4 embedding segments.
    ///
    /// # Panics
    ///
    /// Panics if `hidden % 4 != 0`, `hidden % heads != 0`, or the grid is
    /// empty.
    pub fn build(cfg: &ModelConfig, seed: u64) -> Self {
        assert!(
            cfg.hidden.is_multiple_of(SEGMENTS),
            "hidden must be divisible by 4"
        );
        assert!(!cfg.grid.is_empty(), "token grid must be non-empty");
        let positional = build_positional(&cfg.grid, cfg.text_tokens, cfg.hidden, seed);
        let blocks = (0..cfg.blocks)
            .map(|b| BlockWeights::patterned(cfg, b, derive_seed(seed, 1000 + b as u64)))
            .collect();
        SyntheticDit {
            cfg: cfg.clone(),
            positional,
            blocks,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The positional embedding `[n, d]`.
    pub fn positional(&self) -> &Tensor {
        &self.positional
    }

    /// Per-block weights.
    pub fn blocks(&self) -> &[BlockWeights] {
        &self.blocks
    }

    /// The pattern assigned to `(block, head)`.
    pub fn head_pattern(&self, block: usize, head: usize) -> PatternKind {
        self.blocks[block].head_patterns[head]
    }
}

/// Gain of the positional group codes relative to unit content: large
/// enough that pattern structure dominates content noise inside the
/// pattern segments (real DiTs achieve the same via learned projections
/// that align with their positional encodings).
const CODE_GAIN: f32 = 6.0;

/// Builds the positional embedding for the full sequence (`text_tokens`
/// prompt rows followed by the visual grid): segment 0 left at zero
/// (content lives there), segments 1..4 hold per-group codes (norm
/// [`CODE_GAIN`]) for the three pattern kinds. Text rows carry small
/// random positional vectors across all segments instead of group codes —
/// prompt tokens have positions but no grid structure.
fn build_positional(grid: &TokenGrid, text_tokens: usize, hidden: usize, seed: u64) -> Tensor {
    let n_vis = grid.len();
    let n = n_vis + text_tokens;
    let seg = hidden / SEGMENTS;
    let mut data = vec![0.0f32; n * hidden];
    // Text rows: small dense positional noise.
    let mut trng = seeded(derive_seed(seed, 0x7e87));
    for t in 0..text_tokens {
        for j in 0..hidden {
            data[t * hidden + j] = 0.3 * gauss(&mut trng);
        }
    }
    for (s, kind) in segment_kinds().iter().enumerate() {
        let mut rng = seeded(derive_seed(seed, 100 + s as u64));
        let group_count = kind.group_count(grid);
        // Random code of norm CODE_GAIN per group in this segment.
        let mut codes = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            let mut v: Vec<f32> = (0..seg).map(|_| gauss(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            v.iter_mut().for_each(|x| *x *= CODE_GAIN / norm);
            codes.push(v);
        }
        let offset = (s + 1) * seg;
        for t in 0..n_vis {
            let g = kind.group_of(grid, t);
            let row = (text_tokens + t) * hidden + offset;
            data[row..row + seg].copy_from_slice(&codes[g]);
        }
    }
    Tensor::from_vec(&[n, hidden], data).expect("length matches by construction")
}

impl BlockWeights {
    /// Builds pattern-selecting projections for one block.
    ///
    /// Head `h` is assigned a pattern (cycling through the three planted
    /// kinds per block with a block-dependent phase). Its `W_Q`/`W_K`
    /// columns read the head's pattern segment with amplitude
    /// `sqrt(sharpness*sqrt(head_dim))` plus small dense noise; `W_V`,
    /// `W_O` and the FFN are small random dense matrices (scaled for
    /// stable residual forward passes).
    pub fn patterned(cfg: &ModelConfig, block_idx: usize, seed: u64) -> Self {
        let d = cfg.hidden;
        let hd = cfg.head_dim();
        let seg = d / SEGMENTS;
        let kinds = segment_kinds();
        let mut rng = seeded(seed);

        // Calibrated so the in-group logit gap lands near `sharpness` after
        // the 1/sqrt(head_dim) attention scaling, given CODE_GAIN codes in
        // an approximately unit-RMS normalized residual stream.
        let sharpness = 5.0f32;
        let expected_rms = 0.95f32;
        let code_norm_sq = (CODE_GAIN / expected_rms).powi(2);
        let amp = (sharpness * (hd as f32).sqrt() / code_norm_sq).sqrt();
        let noise = 0.02f32;

        let mut w_q = vec![0.0f32; d * d];
        let mut w_k = vec![0.0f32; d * d];
        let mut head_patterns = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let pattern_idx = (h + block_idx) % kinds.len();
            head_patterns.push(kinds[pattern_idx]);
            let seg_offset = (pattern_idx + 1) * seg;
            // Head h owns output columns h*hd .. (h+1)*hd. Map the pattern
            // segment into the head subspace with a random orthogonal-ish
            // selection: each head column reads one segment row (cyclic)
            // at the pattern amplitude.
            for c in 0..hd {
                let col = h * hd + c;
                let src_row = seg_offset + (c % seg);
                w_q[src_row * d + col] += amp;
                w_k[src_row * d + col] += amp;
            }
            // Small dense noise over the head's columns keeps the maps
            // from being exactly low-rank.
            for r in 0..d {
                for c in 0..hd {
                    let col = h * hd + c;
                    w_q[r * d + col] += noise * gauss(&mut rng);
                    w_k[r * d + col] += noise * gauss(&mut rng);
                }
            }
        }
        let w_q = Tensor::from_vec(&[d, d], w_q).expect("size");
        let w_k = Tensor::from_vec(&[d, d], w_k).expect("size");

        let scale_v = 1.0 / (d as f32).sqrt();
        let w_v = random_dense(d, d, scale_v, &mut rng);
        // Residual-writing projections are attenuated so the positional
        // codes keep dominating the pattern segments through depth (real
        // DiTs preserve positional structure similarly via learned scales).
        let residual_gain = 0.25;
        let w_o = random_dense(d, d, scale_v * residual_gain, &mut rng);
        let ffn = cfg.ffn_mult * d;
        let w_ffn_up = random_dense(d, ffn, scale_v, &mut rng);
        let w_ffn_down = random_dense(ffn, d, residual_gain / (ffn as f32).sqrt(), &mut rng);
        BlockWeights {
            w_q,
            w_k,
            w_v,
            w_o,
            w_ffn_up,
            w_ffn_down,
            head_patterns,
        }
    }
}

fn random_dense<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Tensor {
    let data = (0..rows * cols).map(|_| scale * gauss(rng)).collect();
    Tensor::from_vec(&[rows, cols], data).expect("size")
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny(4, 4, 4)
    }

    #[test]
    fn build_shapes() {
        let cfg = tiny();
        let dit = SyntheticDit::build(&cfg, 1);
        assert_eq!(dit.positional().shape(), &[64, 128]);
        assert_eq!(dit.blocks().len(), cfg.blocks);
        let b = &dit.blocks()[0];
        assert_eq!(b.w_q.shape(), &[128, 128]);
        assert_eq!(b.w_ffn_up.shape(), &[128, 512]);
        assert_eq!(b.w_ffn_down.shape(), &[512, 128]);
        assert_eq!(b.head_patterns.len(), cfg.heads);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = tiny();
        let a = SyntheticDit::build(&cfg, 9);
        let b = SyntheticDit::build(&cfg, 9);
        assert_eq!(a, b);
        let c = SyntheticDit::build(&cfg, 10);
        assert_ne!(a.positional(), c.positional());
    }

    #[test]
    fn heads_cycle_patterns_across_blocks() {
        let cfg = tiny();
        let dit = SyntheticDit::build(&cfg, 2);
        // Block phase shifts the assignment: head 0 of block 0 and block 1
        // see different patterns.
        assert_ne!(dit.head_pattern(0, 0), dit.head_pattern(1, 0));
        // All three planted kinds appear.
        let mut names = std::collections::HashSet::new();
        for h in 0..cfg.heads {
            names.insert(dit.head_pattern(0, h).name());
        }
        assert!(names.len() >= 3);
    }

    #[test]
    fn positional_codes_are_group_constant() {
        let cfg = tiny();
        let dit = SyntheticDit::build(&cfg, 3);
        let seg = cfg.hidden / 4;
        let grid = cfg.grid;
        // Two tokens in the same temporal group share the temporal code
        // segment exactly.
        let kind = PatternKind::Temporal;
        let a = grid.index(0, 2, 3);
        let b = grid.index(3, 2, 3); // same (h, w), different frame
        for j in seg..2 * seg {
            assert_eq!(
                dit.positional().at(&[a, j]),
                dit.positional().at(&[b, j]),
                "temporal codes must match within a group"
            );
        }
        assert_eq!(kind.group_of(&grid, a), kind.group_of(&grid, b));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn hidden_must_be_divisible() {
        let mut cfg = tiny();
        cfg.hidden = 126;
        SyntheticDit::build(&cfg, 0);
    }
}
