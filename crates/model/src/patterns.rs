//! Synthetic 3D-full-attention pattern generator.
//!
//! The paper's Fig. 1/Fig. 8 observation is that CogVideoX attention heads
//! perform *local aggregation along different dimensions*: some heads attend
//! to the same spatial position across frames, some along image rows, some
//! along columns, some within a local 3-D window — producing diverse
//! "diagonal" patterns in the canonical token order. Those patterns, not the
//! model weights, are what PARO's quantization story depends on, so this
//! module synthesizes `Q/K/V` embeddings that plant a chosen pattern:
//!
//! Each token belongs to an *aggregation group* determined by the pattern
//! kind (e.g. its `(h, w)` position for a temporal head). Tokens in the same
//! group receive correlated `Q`/`K` code vectors, so `Q·Kᵀ` concentrates
//! attention mass within groups — a strided diagonal in canonical order, a
//! clean block diagonal once tokens are reordered group-contiguously.

use crate::{AxisOrder, TokenGrid};
use paro_tensor::rng::{derive_seed, seeded};
use paro_tensor::Tensor;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The aggregation dimension of a synthetic attention head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Attends to the same `(h, w)` position across frames (the paper's
    /// "frame" aggregation example in Fig. 8).
    Temporal,
    /// Attends along a row: same `(f, h)`, varying `w`.
    SpatialRow,
    /// Attends along a column: same `(f, w)`, varying `h` (the paper's
    /// "height" aggregation example in Fig. 8).
    SpatialCol,
    /// Attends within a local 3-D window of the given bucket extents
    /// (frames, height, width per bucket).
    LocalWindow {
        /// Frames per window bucket.
        bucket_f: usize,
        /// Height rows per window bucket.
        bucket_h: usize,
        /// Width columns per window bucket.
        bucket_w: usize,
    },
    /// Near-uniform global attention (one group containing every token).
    Diffuse,
}

impl PatternKind {
    /// A default local window: half the frames, quarter of each spatial
    /// axis per bucket (minimum 1).
    pub fn default_window(grid: &TokenGrid) -> PatternKind {
        PatternKind::LocalWindow {
            bucket_f: (grid.frames() / 2).max(1),
            bucket_h: (grid.height() / 4).max(1),
            bucket_w: (grid.width() / 4).max(1),
        }
    }

    /// The aggregation-group id of a canonical token index.
    pub fn group_of(&self, grid: &TokenGrid, token: usize) -> usize {
        let (f, h, w) = grid.coords(token);
        match *self {
            PatternKind::Temporal => h * grid.width() + w,
            PatternKind::SpatialRow => f * grid.height() + h,
            PatternKind::SpatialCol => f * grid.width() + w,
            PatternKind::LocalWindow {
                bucket_f,
                bucket_h,
                bucket_w,
            } => {
                let bf = f / bucket_f;
                let bh = h / bucket_h;
                let bw = w / bucket_w;
                let nh = grid.height().div_ceil(bucket_h);
                let nw = grid.width().div_ceil(bucket_w);
                (bf * nh + bh) * nw + bw
            }
            PatternKind::Diffuse => 0,
        }
    }

    /// Number of aggregation groups this pattern induces on a grid.
    pub fn group_count(&self, grid: &TokenGrid) -> usize {
        match *self {
            PatternKind::Temporal => grid.height() * grid.width(),
            PatternKind::SpatialRow => grid.frames() * grid.height(),
            PatternKind::SpatialCol => grid.frames() * grid.width(),
            PatternKind::LocalWindow {
                bucket_f,
                bucket_h,
                bucket_w,
            } => {
                grid.frames().div_ceil(bucket_f)
                    * grid.height().div_ceil(bucket_h)
                    * grid.width().div_ceil(bucket_w)
            }
            PatternKind::Diffuse => 1,
        }
    }

    /// The axis order under which this pattern's groups become contiguous —
    /// the ground-truth answer the offline plan selection should discover.
    ///
    /// `LocalWindow` and `Diffuse` have no single perfect order; the
    /// canonical order is returned for them.
    pub fn preferred_order(&self) -> AxisOrder {
        match self {
            PatternKind::Temporal => AxisOrder::Hwf,
            PatternKind::SpatialRow => AxisOrder::Fhw,
            PatternKind::SpatialCol => AxisOrder::Fwh,
            PatternKind::LocalWindow { .. } | PatternKind::Diffuse => AxisOrder::Fhw,
        }
    }

    /// Short lowercase label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PatternKind::Temporal => "temporal",
            PatternKind::SpatialRow => "spatial-row",
            PatternKind::SpatialCol => "spatial-col",
            PatternKind::LocalWindow { .. } => "local-window",
            PatternKind::Diffuse => "diffuse",
        }
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full specification of one synthetic attention head.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternSpec {
    /// Aggregation pattern.
    pub kind: PatternKind,
    /// Pre-softmax logit gap between in-group and out-of-group pairs.
    /// Values around 4-7 produce the strong-but-not-degenerate diagonal
    /// concentration seen in real video-DiT attention maps (background
    /// values remain meaningful, as they do in real maps).
    pub sharpness: f32,
    /// Standard deviation of the isotropic noise added to `Q`/`K` codes —
    /// controls within-group value variation.
    pub noise: f32,
    /// Standard deviation of per-key log-popularity: background logits vary
    /// by this much across key tokens, giving the background the smooth
    /// structure real attention maps have (information that naive
    /// quantization destroys).
    pub key_variation: f32,
}

impl PatternSpec {
    /// A spec with default sharpness 5, noise 0.15, key variation 0.8.
    pub fn new(kind: PatternKind) -> Self {
        PatternSpec {
            kind,
            sharpness: 5.0,
            noise: 0.15,
            key_variation: 0.8,
        }
    }

    /// Deterministically assigns a pattern to `(block, head)`, cycling
    /// through the pattern kinds the paper observes so a synthetic model
    /// exhibits the full diversity of Fig. 1.
    pub fn for_head(grid: &TokenGrid, block: usize, head: usize) -> Self {
        Self::for_head_phase(grid, block, head, 0)
    }

    /// Like [`PatternSpec::for_head`], but rotated by a drift `phase`:
    /// advancing the phase shifts every head one step through the pattern
    /// cycle, modeling the timestep/workload pattern drift RainFusion-
    /// style analyses observe. Phase 0 is exactly [`PatternSpec::for_head`];
    /// the sharpness assignment is phase-independent, so drift changes the
    /// *shape* of a head's attention, not its overall concentration.
    pub fn for_head_phase(grid: &TokenGrid, block: usize, head: usize, phase: usize) -> Self {
        let kinds = [
            PatternKind::Temporal,
            PatternKind::SpatialRow,
            PatternKind::SpatialCol,
            PatternKind::default_window(grid),
            PatternKind::Temporal,
            PatternKind::Diffuse,
        ];
        let kind = kinds[(block * 31 + head * 7 + phase) % kinds.len()];
        // Mild deterministic variation in sharpness across heads.
        let sharpness = 4.5 + ((block * 13 + head * 5) % 5) as f32 * 0.5;
        PatternSpec {
            kind,
            sharpness,
            noise: 0.15,
            key_variation: 0.8,
        }
    }
}

/// Synthetic `Q/K/V` embeddings of one attention head, `[tokens, head_dim]`
/// each, in canonical token order.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadSynthesis {
    /// Query embeddings.
    pub q: Tensor,
    /// Key embeddings.
    pub k: Tensor,
    /// Value embeddings.
    pub v: Tensor,
}

/// Synthesizes one attention head's `Q/K/V` with the given planted pattern.
///
/// # Example
///
/// ```
/// use paro_model::patterns::{synthesize_head, PatternKind, PatternSpec};
/// use paro_model::TokenGrid;
/// let grid = TokenGrid::new(4, 4, 4);
/// let spec = PatternSpec::new(PatternKind::Temporal);
/// let head = synthesize_head(&grid, 32, &spec, 42);
/// assert_eq!(head.q.shape(), &[64, 32]);
/// // Deterministic per seed.
/// assert_eq!(head, synthesize_head(&grid, 32, &spec, 42));
/// ```
///
/// Group code vectors are random unit directions; `Q_i`/`K_j` are the code
/// of the token's group scaled by `sqrt(sharpness · sqrt(d))` plus isotropic
/// noise, so `Q_i·K_j / sqrt(d) ≈ sharpness` within a group and ≈ 0 across
/// groups. `V` is group-correlated with independent per-token variation so
/// attention outputs differ meaningfully between methods.
///
/// Deterministic for a given `(grid, head_dim, spec, seed)`.
///
/// # Panics
///
/// Panics if the grid is empty or `head_dim` is zero.
pub fn synthesize_head(
    grid: &TokenGrid,
    head_dim: usize,
    spec: &PatternSpec,
    seed: u64,
) -> HeadSynthesis {
    assert!(!grid.is_empty(), "token grid must be non-empty");
    assert!(head_dim > 0, "head_dim must be positive");
    let n = grid.len();
    let d = head_dim;
    let group_count = spec.kind.group_count(grid);
    let mut rng = seeded(derive_seed(seed, 0x9a77));

    // Random unit code per group.
    let normal = GaussLike;
    let mut codes = Vec::with_capacity(group_count);
    for _ in 0..group_count {
        let mut v: Vec<f32> = (0..d).map(|_| normal.sample(&mut rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        for x in &mut v {
            *x /= norm;
        }
        codes.push(v);
    }

    // Q_i·K_j = amp² · (code_gi · code_gj) + O(noise); dividing by sqrt(d)
    // in the attention computation means amp² = sharpness·sqrt(d) plants a
    // post-scale logit gap of `sharpness` between in-group and out-group.
    let amp = (spec.sharpness * (d as f32).sqrt()).sqrt();

    // A shared "popularity" direction gives every key token a smooth
    // per-token logit offset: q carries coefficient `pc`, key j carries
    // `popularity_j / pc · sqrt(d)`, so the product contributes
    // `popularity_j · sqrt(d)`, i.e. `popularity_j` after the 1/sqrt(d)
    // attention scaling.
    let pop_dir: Vec<f32> = {
        let mut v: Vec<f32> = (0..d).map(|_| normal.sample(&mut rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        v.iter_mut().for_each(|x| *x /= norm);
        v
    };
    let pc = (d as f32).sqrt().sqrt();
    let popularity: Vec<f32> = (0..n)
        .map(|_| spec.key_variation * normal.sample(&mut rng))
        .collect();

    let mut q = vec![0.0f32; n * d];
    let mut k = vec![0.0f32; n * d];
    let mut v = vec![0.0f32; n * d];
    for t in 0..n {
        let g = spec.kind.group_of(grid, t);
        let code = &codes[g];
        let kp = popularity[t] * (d as f32).sqrt() / pc;
        for j in 0..d {
            let base = amp * code[j];
            q[t * d + j] = base + pc * pop_dir[j] + spec.noise * normal.sample(&mut rng);
            k[t * d + j] = base + kp * pop_dir[j] + spec.noise * normal.sample(&mut rng);
            // V: half group signal, half token-specific detail.
            v[t * d + j] = 0.5 * code[j] + 0.5 * normal.sample(&mut rng);
        }
    }
    HeadSynthesis {
        q: Tensor::from_vec(&[n, d], q).expect("length matches by construction"),
        k: Tensor::from_vec(&[n, d], k).expect("length matches by construction"),
        v: Tensor::from_vec(&[n, d], v).expect("length matches by construction"),
    }
}

/// Synthesizes a head for the full CogVideoX sequence layout:
/// `text_tokens` prompt tokens followed by the grid's visual tokens.
///
/// Text tokens carry diffuse random embeddings (prompt tokens attend and
/// are attended broadly, without grid structure); visual tokens carry the
/// planted pattern. Row `t < text_tokens` is a text token; row
/// `text_tokens + i` is visual token `i` in canonical order.
pub fn synthesize_head_with_text(
    grid: &TokenGrid,
    text_tokens: usize,
    head_dim: usize,
    spec: &PatternSpec,
    seed: u64,
) -> HeadSynthesis {
    let visual = synthesize_head(grid, head_dim, spec, seed);
    if text_tokens == 0 {
        return visual;
    }
    let n = grid.len() + text_tokens;
    let d = head_dim;
    let mut rng = seeded(derive_seed(seed, 0x7e27));
    let normal = GaussLike;
    // Text embeddings at a scale that keeps text/visual attention
    // interaction mild (as in real models, where text tokens are a small
    // fraction of the map's mass).
    let text_scale = 0.5f32;
    let mut build = |vis: &Tensor| -> Tensor {
        let mut out = Tensor::zeros(&[n, d]);
        for t in 0..text_tokens {
            for j in 0..d {
                out.set(&[t, j], text_scale * normal.sample(&mut rng));
            }
        }
        out.set_block(text_tokens, 0, vis)
            .expect("shapes match by construction");
        out
    };
    HeadSynthesis {
        q: build(&visual.q),
        k: build(&visual.k),
        v: build(&visual.v),
    }
}

/// A lightweight standard-normal sampler (Box-Muller on demand) so the crate
/// avoids a dependency on `rand_distr`.
struct GaussLike;

impl Distribution<f32> for GaussLike {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box-Muller transform; one value per call keeps the stream simple
        // and deterministic.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> TokenGrid {
        TokenGrid::new(4, 4, 4)
    }

    /// Reference softmax(QKᵀ/sqrt(d)) used only for testing the generator.
    fn attention_map(q: &Tensor, k: &Tensor) -> Tensor {
        let d = q.shape()[1] as f32;
        q.matmul(&k.transpose2d().unwrap())
            .unwrap()
            .scale(1.0 / d.sqrt())
            .softmax_rows()
            .unwrap()
    }

    #[test]
    fn groups_partition_tokens() {
        let grid = small_grid();
        for kind in [
            PatternKind::Temporal,
            PatternKind::SpatialRow,
            PatternKind::SpatialCol,
            PatternKind::default_window(&grid),
            PatternKind::Diffuse,
        ] {
            let count = kind.group_count(&grid);
            let mut sizes = vec![0usize; count];
            for t in 0..grid.len() {
                let g = kind.group_of(&grid, t);
                assert!(g < count, "{kind}: group {g} >= count {count}");
                sizes[g] += 1;
            }
            assert!(sizes.iter().all(|&s| s > 0), "{kind}: empty group");
            assert_eq!(sizes.iter().sum::<usize>(), grid.len());
        }
    }

    #[test]
    fn temporal_groups_have_frame_size() {
        let grid = TokenGrid::new(5, 3, 2);
        let kind = PatternKind::Temporal;
        let mut sizes = vec![0usize; kind.group_count(&grid)];
        for t in 0..grid.len() {
            sizes[kind.group_of(&grid, t)] += 1;
        }
        assert!(sizes.iter().all(|&s| s == grid.frames()));
    }

    #[test]
    fn preferred_order_makes_groups_contiguous() {
        let grid = small_grid();
        for kind in [
            PatternKind::Temporal,
            PatternKind::SpatialRow,
            PatternKind::SpatialCol,
        ] {
            let order = kind.preferred_order();
            let idx = grid.reorder_indices(order);
            // Walk the reordered sequence; group ids must never revisit an
            // earlier group.
            let mut seen = std::collections::HashSet::new();
            let mut current = usize::MAX;
            for &t in &idx {
                let g = kind.group_of(&grid, t);
                if g != current {
                    assert!(
                        seen.insert(g),
                        "{kind}: group {g} not contiguous under {order}"
                    );
                    current = g;
                }
            }
        }
    }

    #[test]
    fn planted_pattern_concentrates_attention() {
        let grid = small_grid();
        for kind in [
            PatternKind::Temporal,
            PatternKind::SpatialRow,
            PatternKind::SpatialCol,
        ] {
            let spec = PatternSpec::new(kind);
            let head = synthesize_head(&grid, 32, &spec, 7);
            let map = attention_map(&head.q, &head.k);
            let n = grid.len();
            // Average in-group mass per row should dominate: with G-sized
            // groups out of N tokens, uniform attention would put G/N ≈ 6%
            // in-group; the planted pattern should exceed 60%.
            let mut in_group = 0.0f32;
            for i in 0..n {
                let gi = kind.group_of(&grid, i);
                for j in 0..n {
                    if kind.group_of(&grid, j) == gi {
                        in_group += map.at(&[i, j]);
                    }
                }
            }
            let frac = in_group / n as f32;
            assert!(
                frac > 0.6,
                "{kind}: in-group attention fraction {frac} too weak"
            );
        }
    }

    #[test]
    fn diffuse_pattern_is_not_concentrated() {
        let grid = small_grid();
        let spec = PatternSpec::new(PatternKind::Diffuse);
        let head = synthesize_head(&grid, 32, &spec, 9);
        let map = attention_map(&head.q, &head.k);
        // Max row entry should be far from 1 (no hard concentration).
        let max = map.max().unwrap();
        assert!(max < 0.5, "diffuse head too concentrated: {max}");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let grid = small_grid();
        let spec = PatternSpec::new(PatternKind::Temporal);
        let a = synthesize_head(&grid, 16, &spec, 42);
        let b = synthesize_head(&grid, 16, &spec, 42);
        assert_eq!(a, b);
        let c = synthesize_head(&grid, 16, &spec, 43);
        assert_ne!(a.q, c.q);
    }

    #[test]
    fn for_head_covers_multiple_kinds() {
        let grid = small_grid();
        let mut names = std::collections::HashSet::new();
        for block in 0..4 {
            for head in 0..8 {
                names.insert(PatternSpec::for_head(&grid, block, head).kind.name());
            }
        }
        assert!(
            names.len() >= 4,
            "head assignment should span several pattern kinds, got {names:?}"
        );
    }

    #[test]
    fn phase_rotation_changes_patterns_but_phase_zero_is_identity() {
        let grid = small_grid();
        let mut changed = 0;
        for block in 0..3 {
            for head in 0..6 {
                let base = PatternSpec::for_head(&grid, block, head);
                assert_eq!(base, PatternSpec::for_head_phase(&grid, block, head, 0));
                let drifted = PatternSpec::for_head_phase(&grid, block, head, 1);
                assert_eq!(base.sharpness, drifted.sharpness);
                if base.kind != drifted.kind {
                    changed += 1;
                }
                // A full cycle returns to the original pattern.
                assert_eq!(base, PatternSpec::for_head_phase(&grid, block, head, 6));
            }
        }
        assert!(changed >= 12, "phase 1 should rotate most heads: {changed}");
    }

    #[test]
    fn window_pattern_groups_are_local() {
        let grid = TokenGrid::new(4, 8, 8);
        let kind = PatternKind::LocalWindow {
            bucket_f: 2,
            bucket_h: 4,
            bucket_w: 4,
        };
        assert_eq!(kind.group_count(&grid), 2 * 2 * 2);
        // Adjacent tokens in the same bucket share a group.
        let a = grid.index(0, 0, 0);
        let b = grid.index(1, 3, 3);
        let c = grid.index(2, 0, 0);
        assert_eq!(kind.group_of(&grid, a), kind.group_of(&grid, b));
        assert_ne!(kind.group_of(&grid, a), kind.group_of(&grid, c));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        synthesize_head(
            &TokenGrid::new(0, 4, 4),
            8,
            &PatternSpec::new(PatternKind::Diffuse),
            0,
        );
    }
}
