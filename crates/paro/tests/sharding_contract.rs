//! Pins the sharding contract of `docs/SHARDING.md` against the code.
//!
//! The document's `<!-- contract:... -->` sections are markdown tables
//! whose rows state limits, defaults, the shard label scheme, the
//! placement cost model, and the guarantee suite. These tests parse the
//! tables and check every row against the live code: the constants
//! against their exported values, the labels against
//! `paro_serve::shard_label`, the cost model against
//! `paro_core::placement::head_cost`, and every guarantee row against
//! the file that claims to pin it. Editing either side without the
//! other fails the suite.

use paro::core::placement::head_cost;
use paro::quant::Bitwidth;
use paro::serve::{shard_label, ServeConfig, MAX_SHARDS};

fn sharding_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SHARDING.md");
    std::fs::read_to_string(path).expect("docs/SHARDING.md must exist")
}

/// The markdown table rows between `<!-- contract:{section} -->` and its
/// closing marker, as `(first backticked cell, second cell)` pairs —
/// header and separator rows carry no leading backtick and are skipped.
fn contract_rows(doc: &str, section: &str) -> Vec<(String, String)> {
    let begin = format!("<!-- contract:{section} -->");
    let end = format!("<!-- /contract:{section} -->");
    let body = doc
        .split(&begin)
        .nth(1)
        .unwrap_or_else(|| panic!("marker {begin} missing from docs/SHARDING.md"))
        .split(&end)
        .next()
        .unwrap_or_else(|| panic!("marker {end} missing from docs/SHARDING.md"));
    let rows: Vec<(String, String)> = body
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("| `")?;
            let (first, tail) = rest.split_once('`')?;
            let second = tail
                .split('|')
                .nth(1)
                .unwrap_or_else(|| panic!("row for `{first}` in {section} has one column"));
            Some((first.to_string(), second.trim().to_string()))
        })
        .collect();
    assert!(!rows.is_empty(), "contract section {section} has no rows");
    rows
}

/// The first backticked span of a table cell (`` `0.25` `` → `0.25`).
fn backticked(cell: &str) -> &str {
    cell.split('`')
        .nth(1)
        .unwrap_or_else(|| panic!("cell {cell:?} has no backticked value"))
}

#[test]
fn cost_model_matches_head_cost() {
    // head_cost with a unit block price exposes the per-bitwidth factor.
    let live = |bits: Bitwidth| head_cost(1.0, &[bits]);
    for (name, cell) in contract_rows(&sharding_doc(), "cost-model") {
        let documented: f64 = backticked(&cell)
            .parse()
            .unwrap_or_else(|e| panic!("cost for {name} is not a number: {e}"));
        let actual = match name.as_str() {
            "B0" => live(Bitwidth::B0),
            "B2" => live(Bitwidth::B2),
            "B4" => live(Bitwidth::B4),
            "B8" => live(Bitwidth::B8),
            other => panic!("cost-model row {other} is not a bitwidth"),
        };
        assert_eq!(
            actual, documented,
            "documented {name} cost diverges from placement::head_cost"
        );
    }
    assert_eq!(
        contract_rows(&sharding_doc(), "cost-model").len(),
        4,
        "cost-model table must cover all four bitwidths"
    );
}

#[test]
fn limits_and_defaults_match_the_constants() {
    let rows = contract_rows(&sharding_doc(), "shard-config");
    let documented = |name: &str| -> f64 {
        let cell = &rows
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("shard-config table misses the `{name}` row"))
            .1;
        backticked(cell)
            .parse()
            .unwrap_or_else(|e| panic!("value for {name} is not a number: {e}"))
    };
    assert_eq!(
        documented("ServeConfig::shards"),
        ServeConfig::default().shards as f64,
        "documented default shard count diverges from ServeConfig::default"
    );
    assert_eq!(
        documented("MAX_SHARDS"),
        MAX_SHARDS as f64,
        "documented MAX_SHARDS diverges from paro_serve::MAX_SHARDS"
    );
    assert_eq!(
        documented("shard-bench --max-imbalance-pct"),
        paro::cli::DEFAULT_MAX_IMBALANCE_PCT,
        "documented imbalance bound diverges from cli::DEFAULT_MAX_IMBALANCE_PCT"
    );
    assert_eq!(rows.len(), 3, "shard-config table gained or lost a row");
}

#[test]
fn label_scheme_matches_shard_label() {
    let rows = contract_rows(&sharding_doc(), "shard-labels");
    assert_eq!(
        rows.len(),
        MAX_SHARDS,
        "shard-labels table must list every shard up to MAX_SHARDS"
    );
    for (index, cell) in rows {
        let shard: usize = index
            .parse()
            .unwrap_or_else(|e| panic!("shard index {index:?} is not a number: {e}"));
        assert_eq!(
            backticked(&cell),
            shard_label(shard),
            "documented label for shard {shard} diverges from shard_label"
        );
    }
}

#[test]
fn every_guarantee_names_a_pinning_file_that_exists() {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let rows = contract_rows(&sharding_doc(), "shard-guarantees");
    for (guarantee, cell) in &rows {
        let pin = backticked(cell);
        let path = std::path::Path::new(repo_root).join(pin);
        assert!(
            path.is_file(),
            "guarantee `{guarantee}` claims to be pinned by {pin}, which does not exist"
        );
    }
    // The suite this document promises: bit-identity, the LPT bound, the
    // CI smoke gate, and the telemetry field contract.
    for required in ["bit-identity", "lpt-bound", "shard-smoke", "telemetry"] {
        assert!(
            rows.iter().any(|(g, _)| g.starts_with(required)),
            "shard-guarantees table lost the `{required}` row"
        );
    }
}

#[test]
fn shard_smoke_gate_is_wired_in_ci() {
    let ci = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../.github/workflows/ci.yml"
    );
    let ci = std::fs::read_to_string(ci).expect(".github/workflows/ci.yml must exist");
    assert!(
        ci.contains("shard-bench --shards 2"),
        "ci.yml must run `paro shard-bench --shards 2` (the shard-smoke guarantee)"
    );
    assert!(
        ci.contains("shard-smoke"),
        "ci.yml must carry the shard-smoke job the guarantees table promises"
    );
}
