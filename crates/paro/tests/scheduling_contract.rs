//! Pins the scheduling contract of `docs/SCHEDULING.md` against the code.
//!
//! The document's `<!-- contract:... -->` tables describe the work
//! graph's public surface and semantics. These tests parse each table
//! and check it against the live types — field listings against the
//! structs' `Debug` output, the worked SFQ example against an actual
//! `WorkGraph` dispatch run, and the shedding ladder against real
//! admission decisions — so the document cannot drift from the
//! scheduler.

use paro::serve::scheduler::Admission;
use paro::serve::{ServeError, TenantClass, WavePolicy, WorkGraph};
use std::collections::BTreeSet;

fn scheduling_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SCHEDULING.md");
    std::fs::read_to_string(path).expect("docs/SCHEDULING.md must exist")
}

/// The markdown table body between `<!-- contract:{section} -->` and its
/// closing marker.
fn section<'a>(doc: &'a str, name: &str) -> &'a str {
    let begin = format!("<!-- contract:{name} -->");
    let end = format!("<!-- /contract:{name} -->");
    doc.split(&begin)
        .nth(1)
        .unwrap_or_else(|| panic!("marker {begin} missing from docs/SCHEDULING.md"))
        .split(&end)
        .next()
        .unwrap_or_else(|| panic!("marker {end} missing from docs/SCHEDULING.md"))
}

/// First backticked token of every table row, in document order (the
/// header and separator rows carry no backticks and are skipped).
fn rows_in_order(doc: &str, name: &str) -> Vec<String> {
    let rows: Vec<String> = section(doc, name)
        .lines()
        .filter_map(|line| {
            let line = line.trim().strip_prefix('|')?;
            let (_, rest) = line.split_once('`')?;
            let (cell, _) = rest.split_once('`')?;
            Some(cell.to_string())
        })
        .collect();
    assert!(!rows.is_empty(), "contract section {name} lists no rows");
    rows
}

fn rows_as_set(doc: &str, name: &str) -> BTreeSet<String> {
    rows_in_order(doc, name).into_iter().collect()
}

/// Field names of a `#[derive(Debug)]` struct rendered with `{:?}`:
/// identifiers immediately preceding a `:` between the outer braces.
fn debug_field_names(dbg: &str) -> BTreeSet<String> {
    let body = dbg
        .split_once('{')
        .map(|(_, rest)| rest)
        .unwrap_or(dbg)
        .rsplit_once('}')
        .map(|(body, _)| body)
        .unwrap_or(dbg);
    body.split(", ")
        .filter_map(|chunk| {
            let (key, _) = chunk.split_once(':')?;
            let key = key.trim();
            let is_ident =
                !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            is_ident.then(|| key.to_string())
        })
        .collect()
}

#[test]
fn wave_policy_table_matches_the_enum() {
    let variants: BTreeSet<String> = [WavePolicy::Continuous, WavePolicy::Drain]
        .iter()
        .map(|p| format!("{p:?}"))
        .collect();
    assert_eq!(
        rows_as_set(&scheduling_doc(), "wave-policies"),
        variants,
        "wave-policy table diverges from WavePolicy"
    );
}

#[test]
fn tenant_class_table_matches_the_struct() {
    let fields = debug_field_names(&format!("{:?}", TenantClass::default()));
    assert_eq!(
        rows_as_set(&scheduling_doc(), "tenant-class"),
        fields,
        "tenant-class table diverges from TenantClass"
    );
}

#[test]
fn graph_stats_table_matches_the_struct() {
    let graph: WorkGraph<u8> = WorkGraph::new(&[TenantClass::default()], 4, WavePolicy::Continuous);
    let fields = debug_field_names(&format!("{:?}", graph.stats()));
    assert_eq!(
        rows_as_set(&scheduling_doc(), "graph-stats"),
        fields,
        "graph-stats table diverges from GraphStats"
    );
}

#[test]
fn sched_stage_table_matches_the_catalogue() {
    let sched: BTreeSet<String> = paro::trace::stage::ALL
        .iter()
        .filter(|s| s.starts_with("sched."))
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        rows_as_set(&scheduling_doc(), "sched-stages"),
        sched,
        "sched-stages table diverges from the stage catalogue"
    );
}

/// Replays the documented worked example through a real `WorkGraph` and
/// asserts the dispatch order the table claims.
#[test]
fn sfq_worked_example_matches_the_scheduler() {
    let classes = [
        TenantClass::new("interactive", 3.0),
        TenantClass::new("batch", 1.0),
    ];
    let graph: WorkGraph<&'static str> = WorkGraph::new(&classes, 64, WavePolicy::Continuous);
    for _ in 0..4 {
        graph
            .submit(0, 60.0, 0, false, |_| "interactive")
            .expect("interactive admits");
    }
    for _ in 0..4 {
        graph
            .submit(1, 60.0, 0, false, |_| "batch")
            .expect("batch admits");
    }
    let dispatched: Vec<&str> = (0..8)
        .map(|_| {
            let t = graph.next().expect("8 tasks are queued");
            graph.task_done();
            t
        })
        .collect();
    let documented = rows_in_order(&scheduling_doc(), "sfq-example");
    assert_eq!(
        dispatched, documented,
        "worked SFQ example diverges from actual dispatch order"
    );
}

/// Drives a real graph through every tier of the documented ladder.
#[test]
fn shed_ladder_matches_the_documented_tiers() {
    let tiers = rows_in_order(&scheduling_doc(), "shed-ladder");
    assert_eq!(tiers, ["0", "1", "2"], "ladder must document three tiers");

    let classes = [
        TenantClass {
            name: "shedding".to_string(),
            weight: 1.0,
            quota: 2,
            shed_budget: Some(2.0),
        },
        TenantClass {
            name: "hard".to_string(),
            weight: 1.0,
            quota: 2,
            shed_budget: None,
        },
    ];
    let graph: WorkGraph<Admission> = WorkGraph::new(&classes, 64, WavePolicy::Continuous);

    // Tier 0: below quota, full fidelity.
    for _ in 0..2 {
        assert_eq!(
            graph.submit(0, 10.0, 0, false, |a| a).expect("admits"),
            Admission::Full
        );
    }
    // Tier 1: the grace band degrades when a shed budget is configured.
    for _ in 0..2 {
        assert_eq!(
            graph.submit(0, 10.0, 0, false, |a| a).expect("admits"),
            Admission::Shed
        );
    }
    // Tier 2: beyond twice the quota, reject.
    match graph.submit(0, 10.0, 0, false, |a| a) {
        Err(ServeError::Shed {
            tenant,
            depth,
            quota,
        }) => {
            assert_eq!(tenant, "shedding");
            assert_eq!((depth, quota), (4, 2));
        }
        other => panic!("expected a tier-2 rejection, got {other:?}"),
    }
    // Without a shed budget, tier 1 is skipped: reject straight at quota.
    for _ in 0..2 {
        assert_eq!(
            graph.submit(1, 10.0, 0, false, |a| a).expect("admits"),
            Admission::Full
        );
    }
    assert!(matches!(
        graph.submit(1, 10.0, 0, false, |a| a),
        Err(ServeError::Shed { .. })
    ));
    let stats = graph.stats();
    assert_eq!((stats.shed_degraded, stats.shed_rejected), (2, 2));
}

/// Whole-graph capacity rejects before the per-tenant ladder runs, as
/// the ladder section states.
#[test]
fn queue_full_takes_precedence_over_the_ladder() {
    let graph: WorkGraph<Admission> =
        WorkGraph::new(&[TenantClass::default()], 2, WavePolicy::Continuous);
    for _ in 0..2 {
        assert_eq!(
            graph.submit(0, 10.0, 0, false, |a| a).expect("admits"),
            Admission::Full
        );
    }
    assert!(matches!(
        graph.submit(0, 10.0, 0, false, |a| a),
        Err(ServeError::QueueFull { capacity: 2 })
    ));
}
