//! End-to-end tests of `paro plan build/inspect/verify` and `paro tune`
//! through the library layer the binary wraps (`paro::plans`), including
//! the file-writing paths the CLI exercises.

use paro::cli::{PlanBuildOpts, TuneOpts};
use paro::model::TokenGrid;
use paro::plans::{build_plan_bytes, inspect_text, run_tune, verify_text, write_output};
use paro::serve::workload::{scaled_config, synthetic_requests, SyntheticSource, WorkloadSpec};
use paro::serve::{Engine, ServeConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn build_opts(out: &Path) -> PlanBuildOpts {
    PlanBuildOpts {
        grid: TokenGrid::new(2, 4, 4),
        blocks: 2,
        heads: 2,
        block_edge: 4,
        budget: 4.8,
        seed: 42,
        out: out.to_string_lossy().into_owned(),
    }
}

#[test]
fn plan_build_writes_into_missing_directories_and_verifies() {
    // The --out parent does not exist; write_output must create it
    // rather than surfacing a bare io error.
    let out = tmp("plan_build/nested/dir/plans.paro");
    let opts = build_opts(&out);
    let bytes = build_plan_bytes(&opts).unwrap();
    write_output(&opts.out, &bytes).unwrap();
    let back = std::fs::read(&out).unwrap();
    assert_eq!(back, bytes);
    let ok = verify_text(&back).unwrap();
    assert!(ok.contains("artifact OK"), "{ok}");
    let text = inspect_text(&back).unwrap();
    assert!(text.contains("CogVideoX-2B@2x4x4"), "{text}");
    // One table row per (block, head) pair after the three metadata
    // lines (format/model, epoch/timestamp, knobs) and the table header.
    assert_eq!(text.lines().count(), 4 + opts.blocks * opts.heads, "{text}");
}

#[test]
fn write_output_errors_name_the_offending_path() {
    // Parent "directory" is a regular file: creation must fail with a
    // message carrying the full output path.
    let blocker = tmp("write_output_blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let target = blocker.join("sub").join("x.json");
    let path = target.to_string_lossy().into_owned();
    let err = write_output(&path, b"{}").unwrap_err();
    assert!(err.contains(&path), "error must name the path: {err}");
    assert!(err.contains("cannot write"), "{err}");
}

#[test]
fn engine_serves_a_built_artifact_without_recalibrating() {
    let out = tmp("plan_serve/plans.paro");
    let opts = build_opts(&out);
    let bytes = build_plan_bytes(&opts).unwrap();
    write_output(&opts.out, &bytes).unwrap();

    let model = scaled_config(
        &paro::model::ModelConfig::cogvideox_2b(),
        opts.grid.frames(),
        opts.grid.height(),
        opts.grid.width(),
    );
    // The engine must mirror the build's calibration knobs or the
    // artifact is (correctly) rejected at construction.
    let cfg = ServeConfig {
        workers: 2,
        block_edge: opts.block_edge,
        budget: opts.budget,
        plan_artifact: Some(out.clone()),
        ..ServeConfig::default()
    };
    let source = Arc::new(SyntheticSource::new(model.clone(), 2, opts.seed ^ 0xca11b));
    let engine = Engine::new(cfg, model.clone(), source).unwrap();
    let spec = WorkloadSpec {
        model,
        requests: 8,
        blocks: opts.blocks,
        heads: opts.heads,
        seed: opts.seed,
    };
    let outcome = engine.run_batch(synthetic_requests(&spec));
    assert_eq!(outcome.completed(), 8);
    assert_eq!(outcome.failed(), 0);
    let snap = engine.metrics_snapshot();
    // Every cold key was a cache miss satisfied by the frozen store, so
    // no time was spent calibrating.
    assert_eq!(snap.cache.misses, (opts.blocks * opts.heads) as u64);
    assert_eq!(snap.calibration_ms, 0.0);
}

fn tune_opts(slo_us: f64) -> TuneOpts {
    TuneOpts {
        grid: TokenGrid::new(2, 4, 4),
        blocks: 1,
        heads: 2,
        block_edge: 4,
        seed: 42,
        bench: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ci_baseline.json").to_string(),
        slo_us,
        out: tmp("tune/PLAN_tuned.paro").to_string_lossy().into_owned(),
        report: tmp("tune/TUNE_report.json").to_string_lossy().into_owned(),
    }
}

#[test]
fn tune_against_the_committed_baseline_meets_a_loose_slo() {
    let opts = tune_opts(1e9);
    let (report, bytes) = run_tune(&opts).unwrap();
    assert!(report.meets_slo);
    assert_eq!(report.moves, 0);
    assert_eq!(report.heads.len(), 2);
    assert!(report.predicted_mean_us > 0.0);
    assert!(report.predicted_mean_us <= opts.slo_us);
    assert!(report.validation.measured_us > 0.0);
    // The emitted artifact is servable: it parses and deep-verifies.
    write_output(&opts.out, &bytes).unwrap();
    let back = std::fs::read(&opts.out).unwrap();
    assert!(verify_text(&back).unwrap().contains("artifact OK"));
    // The report round-trips through JSON (what the binary writes).
    let json = serde_json::to_string_pretty(&report).unwrap();
    write_output(&opts.report, json.as_bytes()).unwrap();
    let text = std::fs::read_to_string(&opts.report).unwrap();
    let parsed: paro::report::TuneReport = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed.heads.len(), report.heads.len());
    assert_eq!(parsed.meets_slo, report.meets_slo);
}

#[test]
fn tune_reports_an_infeasible_slo_as_unmet() {
    let (report, _bytes) = run_tune(&tune_opts(1e-3)).unwrap();
    assert!(!report.meets_slo);
    assert!(report.moves > 0);
    assert!(report.fidelity_sacrificed > 0.0);
    // Best effort: every head at the fastest trial budget.
    assert!(report.heads.iter().all(|h| h.budget_bits == 2.0));
}
