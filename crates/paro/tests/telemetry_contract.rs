//! Pins the telemetry contract of `docs/TELEMETRY.md` against the code.
//!
//! The document's `<!-- contract:... -->` sections list every JSON field
//! the `paro` binary emits, as backticked dotted paths in markdown table
//! rows. These tests serialize real report/trace values, walk every key
//! path in the resulting JSON, and assert set equality both ways: a field
//! added to the code without documenting it fails, and so does a
//! documented field the code no longer emits.

use paro::report::{
    AttnVThroughput, ChaosBenchReport, DriftBenchReport, InjectedFaultRow, IntPathComparison,
    PerfBenchReport, PerfStageRow, ServeBenchReport, ShardBenchReport, ShardScaleRow, ShardSpanRow,
    SoakBenchReport, SoakRunReport, SoakTenantRow, StageSummaryRow, TuneHeadRow, TuneReport,
    TuneValidation,
};
use paro::serve::{CacheStats, Metrics, ShardSnapshot};
use paro::sim::tune::RooflineModel;
use paro::trace::{stage, SpanOutcome, SpanRecord, Trace, NO_CTX, NO_DETAIL};
use serde_json::Value;
use std::collections::BTreeSet;
use std::time::Duration;

fn telemetry_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/TELEMETRY.md");
    std::fs::read_to_string(path).expect("docs/TELEMETRY.md must exist")
}

/// Extracts the backticked first-column entries of the markdown table
/// rows between `<!-- contract:{section} -->` and its closing marker.
fn documented(doc: &str, section: &str) -> BTreeSet<String> {
    let begin = format!("<!-- contract:{section} -->");
    let end = format!("<!-- /contract:{section} -->");
    let body = doc
        .split(&begin)
        .nth(1)
        .unwrap_or_else(|| panic!("marker {begin} missing from docs/TELEMETRY.md"))
        .split(&end)
        .next()
        .unwrap_or_else(|| panic!("marker {end} missing from docs/TELEMETRY.md"));
    let fields: BTreeSet<String> = body
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("| `")?;
            let (path, _) = rest.split_once('`')?;
            Some(path.to_string())
        })
        .collect();
    assert!(
        !fields.is_empty(),
        "contract section {section} documents no fields"
    );
    fields
}

/// Collects every key path in a JSON value: map entries become dotted
/// paths, array elements are walked under `name[]`.
fn key_paths(value: &Value, prefix: &str, out: &mut BTreeSet<String>) {
    match value {
        Value::Map(entries) => {
            for (key, child) in entries {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.insert(path.clone());
                key_paths(child, &path, out);
            }
        }
        Value::Seq(items) => {
            let elem = format!("{prefix}[]");
            for child in items {
                key_paths(child, &elem, out);
            }
        }
        _ => {}
    }
}

fn assert_contract(emitted: &BTreeSet<String>, documented: &BTreeSet<String>, what: &str) {
    let undocumented: Vec<&String> = emitted.difference(documented).collect();
    let stale: Vec<&String> = documented.difference(emitted).collect();
    assert!(
        undocumented.is_empty() && stale.is_empty(),
        "{what} diverges from docs/TELEMETRY.md\n  emitted but undocumented: \
         {undocumented:?}\n  documented but not emitted: {stale:?}"
    );
}

/// A fully-populated report: one trace stage row so the array element
/// fields serialize, and a snapshot off a live two-tenant `Metrics` so
/// every latency block and the per-tenant rows are present.
fn sample_report() -> ServeBenchReport {
    let metrics = Metrics::with_tenants(&["interactive", "batch"]);
    metrics.queue_wait.record(Duration::from_micros(40));
    metrics.service.record(Duration::from_micros(900));
    metrics.total.record(Duration::from_micros(950));
    let tenant = metrics.tenant(0).expect("tenant 0 configured");
    tenant
        .submitted
        .store(1, std::sync::atomic::Ordering::Relaxed);
    tenant.total.record(Duration::from_micros(950));
    let snapshot = metrics.snapshot(
        0,
        Duration::from_secs(1),
        CacheStats {
            entries: 1,
            capacity: 64,
            hits: 1,
            misses: 1,
            evictions: 0,
            inflight_waits: 1,
            hit_rate: 0.5,
        },
        // A populated shard row: `key_paths` walks array *elements*, so
        // an empty vec would leave the `metrics.shards[].*` fields out
        // of the emitted set and the contract could not pin them.
        vec![ShardSnapshot {
            shard: 0,
            label: "shard0".to_string(),
            threads: 2,
            queue_depth: 0,
            executed_jobs: 2,
            busy_ms: 1.2,
        }],
    );
    ServeBenchReport {
        model: "CogVideoX-2B@3x4x4".to_string(),
        tokens: 48,
        head_dim: 64,
        threads: 2,
        queue_capacity: 32,
        requests: 2,
        distinct_heads: 1,
        completed: 2,
        failed: 0,
        wall_ms: 1.5,
        requests_per_sec: 1333.3,
        trace_compiled_in: paro::trace::COMPILED_IN,
        trace_stages: vec![StageSummaryRow {
            stage: stage::POOL_EXECUTE.to_string(),
            count: 2,
            total_us: 800.0,
            p50_us: 400.0,
            p95_us: 410.0,
            max_us: 410.0,
        }],
        int_path: IntPathComparison {
            iters: 3,
            int_ms_per_head: 1.6,
            f32_ms_per_head: 1.8,
            int_over_f32_speedup: 1.125,
            packed_map_bytes_per_head: 11_620,
            packed_v_bytes_per_head: 4_736,
            macs_skipped_fraction: 0.034,
            kernel: "avx2".to_string(),
        },
        metrics: snapshot,
    }
}

#[test]
fn serve_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "serve-bench"),
        "serve-bench report",
    );
}

#[test]
fn chrome_trace_event_fields_match_docs() {
    // One span inside a request (carries `args.ctx`) and one outside
    // (omits it); the first ended non-ok so it carries `args.outcome`.
    // The union covers every documented key, including the optional ones.
    let trace = Trace {
        records: vec![
            SpanRecord {
                id: 2,
                parent: 0,
                stage: stage::SERVE_SERVICE,
                start_ns: 1_000,
                end_ns: 9_000,
                ctx: 4,
                thread: 2,
                outcome: SpanOutcome::Failed,
                detail: "avx2",
            },
            SpanRecord {
                id: 1,
                parent: 0,
                stage: stage::SERVE_ADMIT,
                start_ns: 500,
                end_ns: 12_000,
                ctx: NO_CTX,
                thread: 1,
                outcome: SpanOutcome::Ok,
                detail: NO_DETAIL,
            },
        ],
        dropped: 0,
    };
    let value = serde_json::parse_value(&trace.chrome_json()).expect("chrome JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "chrome-event"),
        "chrome trace-event file",
    );
}

/// A fully-populated chaos report: one injected-fault row so the array
/// element fields serialize.
fn sample_chaos_report() -> ChaosBenchReport {
    ChaosBenchReport {
        model: "CogVideoX-2B@3x4x4".to_string(),
        requests: 24,
        threads: 4,
        failpoints_compiled_in: true,
        injected: vec![InjectedFaultRow {
            site: "pool.job".to_string(),
            kind: "panic".to_string(),
            skip: 3,
            times: 1,
            fired: 1,
        }],
        chaos_completed: 23,
        chaos_failed: 1,
        clean_completed: 24,
        clean_bit_identical: true,
        faulted: 1,
        retried: 2,
        degraded: 0,
        timed_out: 0,
        wall_ms: 41.7,
    }
}

#[test]
fn chaos_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_chaos_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "chaos-bench"),
        "chaos-bench report",
    );
}

/// A fully-populated perf-bench report: one stage row so the array
/// element fields serialize.
fn sample_perf_report() -> PerfBenchReport {
    let pass = |kernel: &str| AttnVThroughput {
        kernel: kernel.to_string(),
        ms_per_head: 3.2,
        mac_p50_us: 410.0,
        macs_per_sec: 1.8e9,
        packed_map_gb_per_sec: 0.35,
    };
    PerfBenchReport {
        label: "ci_baseline".to_string(),
        model: "CogVideoX-2B@6x8x8".to_string(),
        tokens: 384,
        head_dim: 64,
        iters: 5,
        kernel: "avx2".to_string(),
        kernel_forced: false,
        pool_threads: 8,
        trace_compiled_in: true,
        stages: vec![PerfStageRow {
            stage: stage::ATTNV_MAC.to_string(),
            count: 5,
            p50_us: 410.0,
        }],
        attn_v: pass("avx2"),
        scalar_attn_v: pass("scalar"),
        attn_v_speedup_vs_scalar: 2.4,
    }
}

#[test]
fn perf_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_perf_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "perf-bench"),
        "perf-bench report",
    );
}

/// A fully-populated tune report: one head row so the array element
/// fields serialize.
fn sample_tune_report() -> TuneReport {
    TuneReport {
        model: "CogVideoX-2B@4x6x6".to_string(),
        tokens: 144,
        head_dim: 64,
        bench: "BENCH_ci_baseline.json".to_string(),
        slo_us: 1500.0,
        meets_slo: true,
        predicted_mean_us: 1120.4,
        fidelity_sacrificed: 0.0,
        moves: 0,
        mean_budget_bits: 8.0,
        roofline: RooflineModel {
            macs_per_sec: 7.1e9,
            packed_map_bytes_per_sec: 7.9e7,
            fixed_us: 63.4,
            tokens: 144,
            head_dim: 64,
        },
        heads: vec![TuneHeadRow {
            block: 0,
            head: 0,
            budget_bits: 8.0,
            predicted_us: 1120.4,
            fidelity_cost: 0.8,
            avg_bits: 7.9,
            mean_error: 0.012,
        }],
        validation: TuneValidation {
            block: 0,
            head: 0,
            iters: 5,
            predicted_us: 1120.4,
            measured_us: 980.2,
            predicted_over_measured: 1.14,
        },
        artifact: "PLAN_tuned.paro".to_string(),
        artifact_bytes: 1024,
    }
}

#[test]
fn tune_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_tune_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "tune"),
        "tune report",
    );
}

/// A fully-populated soak report: both policy runs carry both tenant
/// rows so every array element field serializes.
fn sample_soak_report() -> SoakBenchReport {
    let run = |policy: &str, busy: f64| SoakRunReport {
        wave_policy: policy.to_string(),
        wall_ms: 158.0,
        completed: 192,
        failed: 0,
        rejected: 0,
        timed_out: 0,
        faulted: 0,
        shed_degraded: 0,
        shed_rejected: 0,
        waves: 19,
        dispatched: 192,
        pool_busy_fraction: busy,
        total_p50_ms: 65.5,
        total_p95_ms: 83.5,
        total_p99_ms: 83.5,
        tenants: ["interactive", "batch"]
            .iter()
            .map(|name| SoakTenantRow {
                name: name.to_string(),
                weight: 1.0,
                submitted: 96,
                completed: 96,
                shed_degraded: 0,
                shed_rejected: 0,
                failed: 0,
                mean_ms: 44.4,
                p50_ms: 65.5,
                p95_ms: 79.2,
                p99_ms: 79.2,
            })
            .collect(),
    };
    SoakBenchReport {
        model: "CogVideoX-2B@4x6x6".to_string(),
        tokens: 144,
        head_dim: 64,
        threads: 4,
        queue_capacity: 64,
        requests: 64,
        rate_per_sec: 400.0,
        seed: 42,
        repeat: 3,
        predicted_wave_occupancy: 1.0,
        drain: run("drain", 0.57),
        continuous: run("continuous", 0.65),
        occupancy_gain: 0.08,
        p99_speedup: 1.05,
        outputs_bit_identical: true,
    }
}

#[test]
fn soak_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_soak_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "soak-bench"),
        "soak-bench report",
    );
}

/// A fully-populated drift report: `detected_after_batches` is `Some`
/// so the optional field serializes and its path is walked.
fn sample_drift_report() -> DriftBenchReport {
    DriftBenchReport {
        model: "CogVideoX-2B@4x6x6".to_string(),
        tokens: 144,
        threads: 4,
        requests_per_batch: 24,
        blocks: 3,
        heads: 4,
        seed: 42,
        warmup_batches: 3,
        detect_bound_batches: 2,
        post_batches: 3,
        wall_ms: 410.0,
        detected_after_batches: Some(1),
        detected_within_bound: true,
        recalibrated: true,
        recovered: true,
        swap_bit_identical: true,
        passed: true,
        epoch_before: 0,
        epoch_after: 1,
        fresh_ewma: 0.012,
        drift_ewma: 0.16,
        recovered_ewma: 0.016,
        stale_detected: 2,
        recalibrations: 1,
        recalib_failed: 0,
        stale_served: 19,
        watchdog_observe_ns: 31.0,
    }
}

#[test]
fn drift_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_drift_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "drift-bench"),
        "drift-bench report",
    );
}

/// A fully-populated shard-bench report: one scaling row and one
/// per-shard span row so the array element fields serialize.
fn sample_shard_report() -> ShardBenchReport {
    ShardBenchReport {
        model: "CogVideoX-2B@3x4x4".to_string(),
        tokens: 48,
        head_dim: 64,
        threads: 2,
        pool_threads: 4,
        requests: 24,
        distinct_heads: 4,
        shards: 2,
        max_imbalance_pct: 75.0,
        bit_identical: true,
        measured_imbalance_pct: 12.5,
        passed: true,
        scaling: vec![ShardScaleRow {
            shards: 2,
            wall_ms: 21.0,
            speedup: 1.6,
            predicted_speedup: 1.9,
            predicted_imbalance_pct: 5.0,
            planned_imbalance_pct: 4.2,
            measured_imbalance_pct: 12.5,
            bit_identical: true,
        }],
        shard_spans: vec![ShardSpanRow {
            shard: 0,
            label: "shard0".to_string(),
            threads: 2,
            executed_jobs: 12,
            spans: 12,
            total_us: 9_800.0,
            p50_us: 810.0,
            p95_us: 930.0,
        }],
    }
}

#[test]
fn shard_bench_report_fields_match_docs() {
    let json = serde_json::to_string(&sample_shard_report()).expect("report serializes");
    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let mut emitted = BTreeSet::new();
    key_paths(&value, "", &mut emitted);
    assert_contract(
        &emitted,
        &documented(&telemetry_doc(), "shard-bench"),
        "shard-bench report",
    );
}

#[test]
fn stage_catalogue_matches_docs() {
    let listed: BTreeSet<String> = stage::ALL.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        listed.len(),
        stage::ALL.len(),
        "stage::ALL contains duplicates"
    );
    assert_contract(
        &listed,
        &documented(&telemetry_doc(), "stages"),
        "stage catalogue",
    );
}
