//! Pins the calibration-drift lifecycle contract of `docs/LIFECYCLE.md`
//! against the code.
//!
//! The document's `<!-- contract:... -->` tables list the health
//! states, watchdog configuration (with defaults), recalibration
//! policies, and the lifecycle metric/stage names. These tests parse
//! each table and check it against the live types, so the document
//! cannot drift from the lifecycle machinery. The *dynamic* guarantees
//! (detection bounds, swap atomicity, fault isolation) are pinned by
//! `crates/serve/tests/lifecycle.rs` and `crates/serve/tests/chaos.rs`.

use paro::serve::{CacheStats, Metrics, PlanHealth, RecalibrationPolicy, WatchdogConfig};
use paro::trace::stage;
use serde::Serialize;
use std::collections::BTreeSet;
use std::time::Duration;

fn lifecycle_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/LIFECYCLE.md");
    std::fs::read_to_string(path).expect("docs/LIFECYCLE.md must exist")
}

/// The markdown table body between `<!-- contract:{section} -->` and its
/// closing marker.
fn section<'a>(doc: &'a str, name: &str) -> &'a str {
    let begin = format!("<!-- contract:{name} -->");
    let end = format!("<!-- /contract:{name} -->");
    doc.split(&begin)
        .nth(1)
        .unwrap_or_else(|| panic!("marker {begin} missing from docs/LIFECYCLE.md"))
        .split(&end)
        .next()
        .unwrap_or_else(|| panic!("marker {end} missing from docs/LIFECYCLE.md"))
}

/// The backticked tokens of every table row, in document order — one
/// `Vec` per row (header and separator rows carry no backticks and are
/// skipped).
fn rows(doc: &str, name: &str) -> Vec<Vec<String>> {
    let rows: Vec<Vec<String>> = section(doc, name)
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            line.strip_prefix('|')?;
            let cells: Vec<String> = line
                .split('`')
                .skip(1)
                .step_by(2)
                .map(str::to_string)
                .collect();
            (!cells.is_empty()).then_some(cells)
        })
        .collect();
    assert!(!rows.is_empty(), "contract section {name} lists no rows");
    rows
}

fn first_column(doc: &str, name: &str) -> Vec<String> {
    rows(doc, name).into_iter().map(|r| r[0].clone()).collect()
}

#[test]
fn health_state_table_matches_the_enum() {
    let doc = lifecycle_doc();
    let table = rows(&doc, "health-states");
    let states = [PlanHealth::Fresh, PlanHealth::Suspect, PlanHealth::Stale];
    assert_eq!(table.len(), states.len(), "one row per health state");
    for (row, state) in table.iter().zip(states) {
        assert_eq!(row[0], format!("{state:?}"), "variant name");
        assert_eq!(row[1], state.name(), "serialized name");
        // The serialized form the report/trace consumers see is the
        // lowercase name, exactly as documented.
        assert_eq!(
            state.to_value(),
            serde::Value::Str(state.name().to_string())
        );
    }
}

#[test]
fn watchdog_config_table_matches_defaults() {
    let doc = lifecycle_doc();
    let table = rows(&doc, "watchdog-config");
    let d = WatchdogConfig::default();
    let expected: Vec<(&str, String)> = vec![
        ("sample_every", d.sample_every.to_string()),
        ("baseline_samples", d.baseline_samples.to_string()),
        ("ewma_alpha", format!("{}", d.ewma_alpha)),
        ("suspect_threshold", format!("{}", d.suspect_threshold)),
        ("stale_threshold", format!("{}", d.stale_threshold)),
        ("hysteresis", d.hysteresis.to_string()),
    ];
    assert_eq!(table.len(), expected.len(), "one row per config field");
    for (row, (field, default)) in table.iter().zip(expected) {
        assert_eq!(row[0], field, "field name");
        assert_eq!(row[1], default, "documented default of {field}");
    }
}

#[test]
fn recalibration_policy_table_matches_the_enum() {
    let doc = lifecycle_doc();
    let listed = first_column(&doc, "recalibration-policies");
    // One row per variant, in declaration order; the Debug name of each
    // variant must start with the documented token.
    let variants = [
        RecalibrationPolicy::Off,
        RecalibrationPolicy::OnStale,
        RecalibrationPolicy::Periodic { every_requests: 1 },
    ];
    assert_eq!(listed.len(), variants.len(), "one row per policy");
    for (name, variant) in listed.iter().zip(variants) {
        let dbg = format!("{variant:?}");
        assert!(
            dbg.starts_with(name.as_str()),
            "policy row `{name}` does not match variant `{dbg}`"
        );
    }
}

#[test]
fn lifecycle_metric_rows_are_real_snapshot_fields() {
    let doc = lifecycle_doc();
    let listed = first_column(&doc, "lifecycle-metrics");
    // Serialize a live snapshot and collect its top-level keys; every
    // documented lifecycle counter must be one of them.
    let snapshot = Metrics::new().snapshot(
        0,
        Duration::from_secs(1),
        CacheStats {
            entries: 0,
            capacity: 64,
            hits: 0,
            misses: 0,
            evictions: 0,
            inflight_waits: 0,
            hit_rate: 0.0,
        },
        Vec::new(),
    );
    let keys: BTreeSet<String> = match snapshot.to_value() {
        serde::Value::Map(entries) => entries.into_iter().map(|(k, _)| k).collect(),
        other => panic!("snapshot serializes to a map, got {other:?}"),
    };
    assert_eq!(
        listed,
        vec![
            "stale_detected".to_string(),
            "recalibrations".to_string(),
            "recalib_failed".to_string(),
            "stale_served".to_string(),
        ],
        "the four lifecycle counters, in order"
    );
    for counter in &listed {
        assert!(
            keys.contains(counter),
            "documented counter {counter} is not a MetricsSnapshot field"
        );
    }
}

#[test]
fn lifecycle_stage_rows_match_the_catalogue() {
    let doc = lifecycle_doc();
    let listed: BTreeSet<String> = first_column(&doc, "lifecycle-stages").into_iter().collect();
    // Exactly the runtime plan.* stages (plan.load / plan.verify are
    // engine-construction stages owned by the artifact path).
    let expected: BTreeSet<String> = [
        stage::PLAN_HEALTH,
        stage::PLAN_RECALIBRATE,
        stage::PLAN_SWAP,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(listed, expected);
    for s in &listed {
        assert!(
            stage::ALL.contains(&s.as_str()),
            "documented stage {s} is not in stage::ALL"
        );
    }
}
