//! Argument parsing for the `paro` command-line tool.
//!
//! Hand-rolled (no external argument-parser dependency): three
//! subcommands, each with `--flag value` options. Parsing is pure and unit
//! tested; the binary in `src/bin/paro.rs` dispatches on the result.

use paro_core::methods::AttentionMethod;
use paro_model::patterns::PatternKind;
use paro_model::{ModelConfig, TokenGrid};
use paro_quant::Bitwidth;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// `paro quantize`: run one synthetic head under a method and print
    /// fidelity metrics.
    Quantize {
        /// Token grid.
        grid: TokenGrid,
        /// Planted pattern.
        pattern: PatternKind,
        /// Quantization method.
        method: AttentionMethod,
        /// RNG seed.
        seed: u64,
    },
    /// `paro simulate`: run a machine model on a CogVideoX config.
    Simulate {
        /// Model config (2b or 5b).
        model: ModelConfig,
        /// Machine name: paro, sanger, vitcod, a100, align.
        machine: String,
    },
    /// `paro plan`: offline reorder-plan selection trace for one head.
    Plan {
        /// Token grid.
        grid: TokenGrid,
        /// Planted pattern.
        pattern: PatternKind,
        /// Quantization block edge.
        block_edge: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `paro serve-bench`: drive the concurrent serving engine with a
    /// synthetic CogVideoX-2B workload and print a JSON metrics snapshot.
    ServeBench(ServeBenchOpts),
    /// `paro trace`: run a serving workload under a trace session, write
    /// Chrome trace-event JSON, and print per-stage summaries.
    Trace(TraceOpts),
    /// `paro chaos-bench`: run a serving workload with deterministic
    /// fault injection and verify the engine's fault-tolerance contract.
    ChaosBench(ChaosBenchOpts),
    /// `paro soak-bench`: drive a two-tenant open-loop arrival stream
    /// against the engine under both wave policies and print per-tenant
    /// latency histograms plus the drain-vs-continuous comparison.
    SoakBench(SoakBenchOpts),
    /// `paro drift-bench`: inject calibration drift into a watchdog-armed
    /// engine and verify the detect → recalibrate → recover loop plus
    /// mid-batch hot-swap bit-identity, printing a JSON report.
    DriftBench(DriftBenchOpts),
    /// `paro perf-bench`: time the single-head packed-integer pipeline
    /// under the dispatched micro-kernel (plus a forced-scalar reference
    /// pass), write a `BENCH_<label>.json` baseline, and optionally gate
    /// against a committed baseline.
    PerfBench(PerfBenchOpts),
    /// `paro shard-bench`: run one workload at every shard count from 1
    /// to `--shards`, verify each sharded run is bit-identical to the
    /// 1-shard run, and print a JSON report with the measured per-shard
    /// `pool.execute` skew against the LPT-planned balance and the
    /// simulator's roofline scaling prediction.
    ShardBench(ShardBenchOpts),
    /// `paro plan build`: calibrate every head of a synthetic workload
    /// and freeze the plans into a `.paro` artifact.
    PlanBuild(PlanBuildOpts),
    /// `paro plan inspect`: print an artifact's metadata and per-head
    /// plan table.
    PlanInspect {
        /// Artifact path.
        file: String,
    },
    /// `paro plan verify`: structurally verify an artifact — header,
    /// checksum, section bounds and per-head value domains.
    PlanVerify {
        /// Artifact path.
        file: String,
    },
    /// `paro tune`: search per-head bit budgets under a latency SLO with
    /// a roofline model seeded from a measured `BENCH_*.json`, freezing
    /// the tuned plans into an artifact plus a JSON report.
    Tune(TuneOpts),
    /// `paro help`: print usage.
    Help,
}

/// Options for `paro plan build`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBuildOpts {
    /// Scaled-down token grid of the synthetic workload.
    pub grid: TokenGrid,
    /// Transformer blocks to freeze.
    pub blocks: usize,
    /// Heads per block to freeze.
    pub heads: usize,
    /// Quantization block edge.
    pub block_edge: usize,
    /// Mixed-precision bit budget.
    pub budget: f32,
    /// RNG seed — must match the serving workload's seed for the frozen
    /// plans to be the ones serving would have calibrated.
    pub seed: u64,
    /// Artifact output path.
    pub out: String,
}

/// Options for `paro tune`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOpts {
    /// Scaled-down token grid of the synthetic workload.
    pub grid: TokenGrid,
    /// Transformer blocks to tune.
    pub blocks: usize,
    /// Heads per block to tune.
    pub heads: usize,
    /// Quantization block edge.
    pub block_edge: usize,
    /// RNG seed.
    pub seed: u64,
    /// Measured `BENCH_*.json` perf baseline seeding the roofline model.
    pub bench: String,
    /// Mean per-head latency SLO, microseconds.
    pub slo_us: f64,
    /// Tuned-artifact output path.
    pub out: String,
    /// Tune-report JSON output path.
    pub report: String,
}

/// Options for `paro serve-bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchOpts {
    /// Scaled-down token grid the synthetic 2B workload runs on.
    pub grid: TokenGrid,
    /// Worker threads.
    pub threads: usize,
    /// Submission-queue capacity.
    pub queue: usize,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Transformer blocks the stream cycles through.
    pub blocks: usize,
    /// Heads per block the stream cycles through.
    pub heads: usize,
    /// Mixed-precision bit budget.
    pub budget: f32,
    /// Quantization block edge.
    pub block_edge: usize,
    /// Per-request deadline in milliseconds (0 disables deadlines).
    pub deadline_ms: u64,
    /// RNG seed.
    pub seed: u64,
    /// Plan artifact to serve frozen calibrations from (`--plan`).
    pub plan: Option<String>,
    /// Optional path the JSON report is also written to (`--out`);
    /// parent directories are created as needed.
    pub out: Option<String>,
}

/// Options for `paro trace`: a serving workload plus the output path for
/// the Chrome trace-event JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOpts {
    /// The workload to run (same knobs as `paro serve-bench`, smaller
    /// default request count).
    pub bench: ServeBenchOpts,
    /// Path the Chrome trace-event JSON is written to.
    pub out: String,
}

/// Options for `paro chaos-bench`: a serving workload plus fault
/// arming parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBenchOpts {
    /// The workload to run (same knobs as `paro serve-bench`, smaller
    /// default request count).
    pub bench: ServeBenchOpts,
    /// Seed deriving each armed site's skip offset.
    pub fault_seed: u64,
    /// Faults injected per armed site.
    pub faults: u64,
}

/// Options for `paro soak-bench`: a serving workload plus the open-loop
/// arrival rate and two-tenant weight split.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakBenchOpts {
    /// The workload to run (same knobs as `paro serve-bench`; the request
    /// stream is split across two tenants, even indices to the first).
    pub bench: ServeBenchOpts,
    /// Offered open-loop arrival rate, requests per second.
    pub rate: f64,
    /// WFQ weights of the two tenant classes (`--weights A,B`).
    pub weights: (f64, f64),
    /// Alternating drain/continuous run pairs to aggregate (`--repeat N`).
    pub repeat: usize,
}

/// Options for `paro drift-bench`: a serving workload driven in batches
/// through the calibration-drift lifecycle (warm → drift → detect →
/// recalibrate → recover).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftBenchOpts {
    /// The per-batch workload (same knobs as `paro serve-bench`;
    /// `--requests` is the batch size).
    pub bench: ServeBenchOpts,
    /// Fresh-traffic batches served before drift is injected
    /// (`--warmup N`).
    pub warmup: usize,
    /// Drifted-traffic batches the watchdog gets to flag the plan
    /// `Stale` (`--detect-within N`); detection past the bound fails
    /// the command.
    pub detect_within: usize,
    /// Post-recalibration batches that must serve un-flagged
    /// (`--post N`).
    pub post: usize,
}

/// Default `--max-imbalance-pct` for `paro shard-bench`: the bound the
/// measured per-shard busy-time skew must stay under for the command to
/// exit zero. Documented (and contract-pinned) in `docs/SHARDING.md` —
/// generous because the CI smoke workload is short enough for scheduler
/// noise to dominate a perfectly balanced plan.
pub const DEFAULT_MAX_IMBALANCE_PCT: f64 = 75.0;

/// Options for `paro shard-bench`: the workload, the shard count to
/// scale up to, and the imbalance gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBenchOpts {
    /// The workload to run at each shard count (same knobs as
    /// `paro serve-bench`, smaller default request count).
    pub bench: ServeBenchOpts,
    /// Maximum shard count: the bench runs 1..=shards and compares each
    /// run to the 1-shard baseline.
    pub shards: usize,
    /// Bound on the measured busy-time imbalance at the top shard count;
    /// exceeding it fails the command.
    pub max_imbalance_pct: f64,
}

/// Options for `paro perf-bench`: the single-head workload, the run
/// label/output path, and the optional baseline gate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBenchOpts {
    /// Token grid of the single benchmarked head.
    pub grid: TokenGrid,
    /// Mixed-precision bit budget.
    pub budget: f32,
    /// Quantization block edge.
    pub block_edge: usize,
    /// RNG seed.
    pub seed: u64,
    /// Run label, embedded in the report and the default output name.
    pub label: String,
    /// Path the report JSON is written to (default `BENCH_<label>.json`).
    pub out: String,
    /// Timed pipeline iterations per pass (medians are taken over these).
    pub iters: usize,
    /// Baseline report to diff against; a regression fails the command.
    pub compare: Option<String>,
    /// Regression tolerance in percent for the baseline gate.
    pub tolerance: f64,
}

/// Usage text.
pub const USAGE: &str = "\
paro — PARO attention-quantization toolkit

USAGE:
  paro quantize [--grid FxHxW] [--pattern KIND] [--method NAME] [--budget B] [--bits N] [--seed S]
  paro simulate [--model 2b|5b] [--machine paro|sanger|vitcod|a100|align]
  paro plan     [--grid FxHxW] [--pattern KIND] [--block EDGE] [--seed S]
  paro plan build   [--grid FxHxW] [--blocks N] [--heads N] [--block EDGE]
                    [--budget B] [--seed S] [--out FILE]
  paro plan inspect --file FILE
  paro plan verify  --file FILE
  paro tune     [--grid FxHxW] [--blocks N] [--heads N] [--block EDGE]
                [--seed S] [--bench FILE] [--slo-us US] [--out FILE]
                [--report FILE]
  paro serve-bench [--threads N] [--queue N] [--requests N] [--deadline-ms MS]
                   [--grid FxHxW] [--blocks N] [--heads N] [--budget B]
                   [--block EDGE] [--seed S] [--plan FILE] [--out FILE]
  paro trace    [--out FILE] [--threads N] [--queue N] [--requests N]
                [--deadline-ms MS] [--grid FxHxW] [--blocks N] [--heads N]
                [--budget B] [--block EDGE] [--seed S]
  paro chaos-bench [--fault-seed S] [--faults N] [--threads N] [--queue N]
                   [--requests N] [--deadline-ms MS] [--grid FxHxW]
                   [--blocks N] [--heads N] [--budget B] [--block EDGE]
                   [--seed S] [--out FILE]
  paro soak-bench [--rate R] [--weights A,B] [--repeat N] [--threads N]
                  [--queue N] [--requests N] [--deadline-ms MS]
                  [--grid FxHxW] [--blocks N] [--heads N] [--budget B]
                  [--block EDGE] [--seed S] [--plan FILE] [--out FILE]
  paro drift-bench [--warmup N] [--detect-within N] [--post N] [--threads N]
                   [--queue N] [--requests N] [--deadline-ms MS]
                   [--grid FxHxW] [--blocks N] [--heads N] [--budget B]
                   [--block EDGE] [--seed S] [--out FILE]
  paro perf-bench [--label NAME] [--out FILE] [--iters N] [--grid FxHxW]
                  [--budget B] [--block EDGE] [--seed S]
                  [--compare FILE] [--tolerance PCT]
  paro shard-bench [--shards K] [--max-imbalance-pct PCT] [--threads N]
                   [--queue N] [--requests N] [--deadline-ms MS]
                   [--grid FxHxW] [--blocks N] [--heads N] [--budget B]
                   [--block EDGE] [--seed S] [--plan FILE] [--out FILE]
  paro help

serve-bench drives the concurrent serving engine with a synthetic
CogVideoX-2B workload (scaled to --grid) and prints a JSON metrics
snapshot (requests/sec, latency percentiles, plan-cache hit/miss/
in-flight-wait counters) to stdout; --out also writes it to a file and
--plan serves frozen calibrations from a plan artifact instead of
recalibrating (the artifact must match the workload configuration).

plan build freezes every (block, head) calibration of the synthetic
workload into a versioned, checksummed .paro plan artifact that
serve-bench --plan (or ServeConfig::plan_artifact) loads zero-copy;
plan inspect prints an artifact's metadata and per-head table, and
plan verify checks its header, checksum and value domains
(see docs/ARTIFACT.md for the byte-level format contract).

tune searches per-head bit budgets ({2,4,8}-bit trial calibrations per
head) under a mean per-head latency SLO (--slo-us), scoring candidates
with a roofline model seeded from a measured perf-bench baseline
(--bench, default BENCH_ci_baseline.json). It writes the tuned plans as
an artifact (--out) plus a JSON report (--report) with the predicted
latency of every head and a predicted-vs-measured validation pass, and
exits non-zero when the SLO is infeasible.

soak-bench submits the workload on a deterministic open-loop (Poisson)
arrival clock at --rate requests/sec, split across two weighted-fair
tenant classes (--weights, default 4,1), and runs it at the same
offered rate under both wave policies: the drain barrier (emulating the
old per-request engine) and continuous batching, alternating --repeat
times to average out scheduler noise. The JSON report carries per-tenant
latency histograms, pool busy fractions, wave/dispatch counts and the
occupancy/p99 comparison pinned by docs/SCHEDULING.md; outputs must stay
bit-identical across every policy and repeat or the command fails.

drift-bench drives the calibration-drift lifecycle end to end
(docs/LIFECYCLE.md): a watchdog-armed engine serves --warmup fresh
batches, the traffic's pattern families then rotate (calibration
drift), and the watchdog must flag the plan Stale within
--detect-within batches, counting every request served meanwhile as
stale_served. The bench then recalibrates against the drifted source —
an atomic epoch hot-swap whose mid-batch bit-identity it also proves —
and --post recovery batches must serve un-flagged with the fidelity
proxy back in its fresh band. The JSON report (stdout, --out) carries
the detection/recovery verdicts, the lifecycle counters and the
measured per-observation watchdog overhead; any failed verdict exits
non-zero.

chaos-bench runs a baseline batch, injects deterministic faults
(worker/pool panics, transient quant/pipeline errors) into a second
engine via paro-failpoint sites, then verifies every request resolves,
the engine survives, and a clean batch afterwards is bit-identical to
the baseline. Requires a binary built with --features failpoints to
actually fire faults; compiled out, it degenerates to a clean-vs-clean
determinism check and says so in the report.

trace runs the same workload under a span-recording session, writes
Chrome trace-event JSON (loadable in Perfetto / about://tracing) to
--out (default trace.json), and prints per-stage and per-head summary
tables. Requires a binary built with tracing compiled in (the default
build; see docs/TELEMETRY.md).

perf-bench times the single-head packed-integer pipeline for --iters
iterations under the runtime-dispatched SIMD micro-kernel, repeats the
pass with the kernel forced to scalar in the same process, and writes
per-stage span medians plus packed-AttnV MACs/s and packed-map GB/s to
--out (default BENCH_<label>.json). With --compare BASELINE.json it
prints a diff table and fails on any per-stage median regression above
--tolerance percent (stages under the noise floor are reported but
never gated); see docs/EXPERIMENTS.md \"Perf baselines\".

shard-bench runs the identical workload at every shard count from 1 to
--shards under a trace session. Each sharded run must be bit-identical
to the 1-shard baseline, and at the top shard count the measured
per-shard busy-time imbalance must stay under --max-imbalance-pct
(default 75); either violation exits non-zero. The JSON report (stdout,
--out) carries the scaling curve — wall-clock speedup and measured
imbalance per shard count, next to the LPT-planned balance and the
roofline prediction from paro-sim's dispatch model — plus per-shard
pool.execute span summaries from the trace. The contract is documented
in docs/SHARDING.md and gated in CI by the shard-smoke job.

PATTERNS: temporal, spatial-row, spatial-col, window, diffuse
METHODS:  fp16, sage, sage2, sanger, naive-int8, naive-int4,
          block-int8, block-int4, paro-int8, paro-int4, paro-mp";

/// Parses CLI arguments (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, flags or
/// malformed values.
pub fn parse_args(args: &[String]) -> Result<CliCommand, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(CliCommand::Help);
    };
    let rest: Vec<&String> = it.collect();
    // `plan` grew subcommands; the bare-token peek must happen before
    // flag parsing, which rejects non-`--` tokens. Bare `paro plan`
    // (the legacy single-head selection trace) is untouched.
    if cmd == "plan" {
        match rest.first().map(|s| s.as_str()) {
            Some("build") => return parse_plan_build(&parse_flags(&rest[1..])?),
            Some("inspect") => return parse_plan_file(&parse_flags(&rest[1..])?, "inspect"),
            Some("verify") => return parse_plan_file(&parse_flags(&rest[1..])?, "verify"),
            _ => {}
        }
    }
    let opts = parse_flags(&rest)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(CliCommand::Help),
        "quantize" => {
            reject_unknown(
                &opts,
                &["grid", "pattern", "budget", "bits", "method", "seed"],
            )?;
            let grid = parse_grid(opts_get(&opts, "grid").unwrap_or("6x6x6"))?;
            let pattern = parse_pattern(opts_get(&opts, "pattern").unwrap_or("temporal"), &grid)?;
            let budget: f32 = parse_num(opts_get(&opts, "budget").unwrap_or("4.8"))?;
            let bits = parse_bits(opts_get(&opts, "bits").unwrap_or("4"))?;
            let method =
                parse_method(opts_get(&opts, "method").unwrap_or("paro-mp"), budget, bits)?;
            let seed: u64 = parse_num(opts_get(&opts, "seed").unwrap_or("42"))?;
            Ok(CliCommand::Quantize {
                grid,
                pattern,
                method,
                seed,
            })
        }
        "simulate" => {
            reject_unknown(&opts, &["model", "machine"])?;
            let model = match opts_get(&opts, "model").unwrap_or("5b") {
                "2b" => ModelConfig::cogvideox_2b(),
                "5b" => ModelConfig::cogvideox_5b(),
                other => return Err(format!("unknown model '{other}' (use 2b or 5b)")),
            };
            let machine = opts_get(&opts, "machine").unwrap_or("paro").to_string();
            if !["paro", "sanger", "vitcod", "a100", "align"].contains(&machine.as_str()) {
                return Err(format!("unknown machine '{machine}'"));
            }
            Ok(CliCommand::Simulate { model, machine })
        }
        "plan" => {
            reject_unknown(&opts, &["grid", "pattern", "block", "seed"])?;
            let grid = parse_grid(opts_get(&opts, "grid").unwrap_or("6x6x6"))?;
            let pattern = parse_pattern(opts_get(&opts, "pattern").unwrap_or("temporal"), &grid)?;
            let block_edge: usize = parse_num(opts_get(&opts, "block").unwrap_or("6"))?;
            let seed: u64 = parse_num(opts_get(&opts, "seed").unwrap_or("42"))?;
            Ok(CliCommand::Plan {
                grid,
                pattern,
                block_edge,
                seed,
            })
        }
        "serve-bench" => {
            let mut allowed = vec!["out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            let mut bench = parse_bench_opts(&opts, "150")?;
            bench.out = opts_get(&opts, "out").map(str::to_string);
            Ok(CliCommand::ServeBench(bench))
        }
        "chaos-bench" => {
            let mut allowed = vec!["fault-seed", "faults", "out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            // Chaos runs verify behavior, not throughput: short stream.
            let mut bench = parse_bench_opts(&opts, "24")?;
            bench.out = opts_get(&opts, "out").map(str::to_string);
            let fault_seed: u64 = parse_num(opts_get(&opts, "fault-seed").unwrap_or("1"))?;
            let faults: u64 = parse_num(opts_get(&opts, "faults").unwrap_or("1"))?;
            if faults == 0 {
                return Err("--faults must be at least 1".to_string());
            }
            Ok(CliCommand::ChaosBench(ChaosBenchOpts {
                bench,
                fault_seed,
                faults,
            }))
        }
        "soak-bench" => {
            let mut allowed = vec!["rate", "weights", "repeat", "out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            // A soak is open-loop and time-bounded by requests/rate; the
            // default stays well under the CI smoke budget.
            let mut bench = parse_bench_opts(&opts, "48")?;
            bench.out = opts_get(&opts, "out").map(str::to_string);
            let rate: f64 = parse_num(opts_get(&opts, "rate").unwrap_or("40"))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!("--rate must be positive, got {rate}"));
            }
            let weights = parse_weights(opts_get(&opts, "weights").unwrap_or("4,1"))?;
            let repeat: usize = parse_num(opts_get(&opts, "repeat").unwrap_or("1"))?;
            if repeat == 0 {
                return Err("--repeat must be at least 1".to_string());
            }
            Ok(CliCommand::SoakBench(SoakBenchOpts {
                bench,
                rate,
                weights,
                repeat,
            }))
        }
        "drift-bench" => {
            let mut allowed = vec!["warmup", "detect-within", "post", "out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            // Batches are small and the bench's watchdog knobs are
            // fast-reacting, so the whole loop stays inside the CI
            // smoke budget.
            let mut bench = parse_bench_opts(&opts, "24")?;
            bench.out = opts_get(&opts, "out").map(str::to_string);
            if bench.plan.is_some() {
                return Err(
                    "drift-bench recalibrates live and cannot serve a frozen --plan artifact"
                        .to_string(),
                );
            }
            let warmup: usize = parse_num(opts_get(&opts, "warmup").unwrap_or("3"))?;
            if warmup == 0 {
                return Err("--warmup must be at least 1".to_string());
            }
            let detect_within: usize = parse_num(opts_get(&opts, "detect-within").unwrap_or("2"))?;
            if detect_within == 0 {
                return Err("--detect-within must be at least 1".to_string());
            }
            let post: usize = parse_num(opts_get(&opts, "post").unwrap_or("3"))?;
            if post == 0 {
                return Err("--post must be at least 1".to_string());
            }
            Ok(CliCommand::DriftBench(DriftBenchOpts {
                bench,
                warmup,
                detect_within,
                post,
            }))
        }
        "perf-bench" => {
            reject_unknown(
                &opts,
                &[
                    "label",
                    "out",
                    "iters",
                    "grid",
                    "budget",
                    "block",
                    "seed",
                    "compare",
                    "tolerance",
                ],
            )?;
            // A bigger head than serve-bench's default: medians over a
            // sub-millisecond AttnV would be timer noise.
            let grid = parse_grid(opts_get(&opts, "grid").unwrap_or("6x8x8"))?;
            let budget: f32 = parse_num(opts_get(&opts, "budget").unwrap_or("4.8"))?;
            let block_edge: usize = parse_num(opts_get(&opts, "block").unwrap_or("6"))?;
            let seed: u64 = parse_num(opts_get(&opts, "seed").unwrap_or("42"))?;
            let label = opts_get(&opts, "label").unwrap_or("local").to_string();
            if label.is_empty() || label.contains(['/', '\\']) {
                return Err(format!("--label must be a bare name, got '{label}'"));
            }
            let iters: usize = parse_num(opts_get(&opts, "iters").unwrap_or("5"))?;
            if iters == 0 {
                return Err("--iters must be at least 1".to_string());
            }
            let tolerance: f64 = parse_num(opts_get(&opts, "tolerance").unwrap_or("30"))?;
            if !tolerance.is_finite() || tolerance <= 0.0 {
                return Err(format!("--tolerance must be positive, got {tolerance}"));
            }
            let out = opts_get(&opts, "out")
                .map(str::to_string)
                .unwrap_or_else(|| format!("BENCH_{label}.json"));
            let compare = opts_get(&opts, "compare").map(str::to_string);
            Ok(CliCommand::PerfBench(PerfBenchOpts {
                grid,
                budget,
                block_edge,
                seed,
                label,
                out,
                iters,
                compare,
                tolerance,
            }))
        }
        "shard-bench" => {
            let mut allowed = vec!["shards", "max-imbalance-pct", "out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            // The bench runs the stream once per shard count; keep the
            // default short so the full 1..=K sweep fits the CI smoke
            // budget.
            let mut bench = parse_bench_opts(&opts, "24")?;
            bench.out = opts_get(&opts, "out").map(str::to_string);
            let shards: usize = parse_num(opts_get(&opts, "shards").unwrap_or("2"))?;
            if !(2..=paro_serve::MAX_SHARDS).contains(&shards) {
                return Err(format!(
                    "--shards must be in 2..={} (the 1-shard baseline always runs), got {shards}",
                    paro_serve::MAX_SHARDS
                ));
            }
            let max_imbalance_pct: f64 = match opts_get(&opts, "max-imbalance-pct") {
                Some(v) => parse_num(v)?,
                None => DEFAULT_MAX_IMBALANCE_PCT,
            };
            if !max_imbalance_pct.is_finite() || max_imbalance_pct <= 0.0 {
                return Err(format!(
                    "--max-imbalance-pct must be positive, got {max_imbalance_pct}"
                ));
            }
            Ok(CliCommand::ShardBench(ShardBenchOpts {
                bench,
                shards,
                max_imbalance_pct,
            }))
        }
        "trace" => {
            let mut allowed = vec!["out"];
            allowed.extend_from_slice(BENCH_FLAGS);
            reject_unknown(&opts, &allowed)?;
            // A trace of every request is the point here, not steady-state
            // throughput: default to a short stream.
            let bench = parse_bench_opts(&opts, "24")?;
            let out = opts_get(&opts, "out").unwrap_or("trace.json").to_string();
            Ok(CliCommand::Trace(TraceOpts { bench, out }))
        }
        "tune" => {
            reject_unknown(
                &opts,
                &[
                    "grid", "blocks", "heads", "block", "seed", "bench", "slo-us", "out", "report",
                ],
            )?;
            // Defaults mirror perf-bench's head so the default --bench
            // baseline (measured on the same 6x8x8 grid) seeds a
            // roofline for the very workload being tuned.
            let grid = parse_grid(opts_get(&opts, "grid").unwrap_or("6x8x8"))?;
            let blocks: usize = parse_num(opts_get(&opts, "blocks").unwrap_or("2"))?;
            let heads: usize = parse_num(opts_get(&opts, "heads").unwrap_or("2"))?;
            let block_edge: usize = parse_num(opts_get(&opts, "block").unwrap_or("6"))?;
            let seed: u64 = parse_num(opts_get(&opts, "seed").unwrap_or("42"))?;
            if blocks == 0 || heads == 0 {
                return Err("--blocks and --heads must be at least 1".to_string());
            }
            let bench = opts_get(&opts, "bench")
                .unwrap_or("BENCH_ci_baseline.json")
                .to_string();
            let slo_us: f64 = parse_num(opts_get(&opts, "slo-us").unwrap_or("1500"))?;
            if !slo_us.is_finite() || slo_us <= 0.0 {
                return Err(format!("--slo-us must be positive, got {slo_us}"));
            }
            let out = opts_get(&opts, "out")
                .unwrap_or("PLAN_tuned.paro")
                .to_string();
            let report = opts_get(&opts, "report")
                .unwrap_or("TUNE_report.json")
                .to_string();
            Ok(CliCommand::Tune(TuneOpts {
                grid,
                blocks,
                heads,
                block_edge,
                seed,
                bench,
                slo_us,
                out,
                report,
            }))
        }
        other => Err(format!("unknown command '{other}'; see `paro help`")),
    }
}

fn parse_plan_build(opts: &[(&str, &str)]) -> Result<CliCommand, String> {
    reject_unknown(
        opts,
        &["grid", "blocks", "heads", "block", "budget", "seed", "out"],
    )?;
    // Defaults mirror serve-bench so `plan build` freezes exactly the
    // plans a default serve-bench run would calibrate.
    let grid = parse_grid(opts_get(opts, "grid").unwrap_or("4x6x6"))?;
    let blocks: usize = parse_num(opts_get(opts, "blocks").unwrap_or("3"))?;
    let heads: usize = parse_num(opts_get(opts, "heads").unwrap_or("4"))?;
    let block_edge: usize = parse_num(opts_get(opts, "block").unwrap_or("6"))?;
    let budget: f32 = parse_num(opts_get(opts, "budget").unwrap_or("4.8"))?;
    let seed: u64 = parse_num(opts_get(opts, "seed").unwrap_or("42"))?;
    if blocks == 0 || heads == 0 {
        return Err("--blocks and --heads must be at least 1".to_string());
    }
    let out = opts_get(opts, "out").unwrap_or("plans.paro").to_string();
    Ok(CliCommand::PlanBuild(PlanBuildOpts {
        grid,
        blocks,
        heads,
        block_edge,
        budget,
        seed,
        out,
    }))
}

fn parse_plan_file(opts: &[(&str, &str)], sub: &str) -> Result<CliCommand, String> {
    reject_unknown(opts, &["file"])?;
    let file = opts_get(opts, "file")
        .ok_or_else(|| format!("plan {sub} needs --file ARTIFACT"))?
        .to_string();
    Ok(if sub == "inspect" {
        CliCommand::PlanInspect { file }
    } else {
        CliCommand::PlanVerify { file }
    })
}

/// Flags shared by `serve-bench` and `trace` (which adds `--out`).
const BENCH_FLAGS: &[&str] = &[
    "grid",
    "threads",
    "queue",
    "requests",
    "blocks",
    "heads",
    "budget",
    "block",
    "deadline-ms",
    "seed",
    "plan",
];

fn parse_bench_opts(
    opts: &[(&str, &str)],
    default_requests: &str,
) -> Result<ServeBenchOpts, String> {
    let grid = parse_grid(opts_get(opts, "grid").unwrap_or("4x6x6"))?;
    let threads: usize = parse_num(opts_get(opts, "threads").unwrap_or("4"))?;
    let queue: usize = parse_num(opts_get(opts, "queue").unwrap_or("64"))?;
    let requests: usize = parse_num(opts_get(opts, "requests").unwrap_or(default_requests))?;
    let blocks: usize = parse_num(opts_get(opts, "blocks").unwrap_or("3"))?;
    let heads: usize = parse_num(opts_get(opts, "heads").unwrap_or("4"))?;
    let budget: f32 = parse_num(opts_get(opts, "budget").unwrap_or("4.8"))?;
    let block_edge: usize = parse_num(opts_get(opts, "block").unwrap_or("6"))?;
    let deadline_ms: u64 = parse_num(opts_get(opts, "deadline-ms").unwrap_or("0"))?;
    let seed: u64 = parse_num(opts_get(opts, "seed").unwrap_or("42"))?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if queue == 0 {
        return Err("--queue must be at least 1".to_string());
    }
    if requests == 0 {
        return Err("--requests must be at least 1".to_string());
    }
    if blocks == 0 || heads == 0 {
        return Err("--blocks and --heads must be at least 1".to_string());
    }
    Ok(ServeBenchOpts {
        grid,
        threads,
        queue,
        requests,
        blocks,
        heads,
        budget,
        block_edge,
        deadline_ms,
        seed,
        plan: opts_get(opts, "plan").map(str::to_string),
        // `--out` means different things per command (trace owns it for
        // the Chrome JSON), so each arm fills it in itself.
        out: None,
    })
}

fn parse_weights(s: &str) -> Result<(f64, f64), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 2 {
        return Err(format!("--weights must be A,B (two numbers), got '{s}'"));
    }
    let a: f64 = parse_num(parts[0])?;
    let b: f64 = parse_num(parts[1])?;
    if !(a.is_finite() && a > 0.0 && b.is_finite() && b > 0.0) {
        return Err(format!("--weights must both be positive, got '{s}'"));
    }
    Ok((a, b))
}

fn parse_flags<'a>(rest: &[&'a String]) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{flag}'"));
        };
        let Some(value) = rest.get(i + 1) else {
            return Err(format!("flag --{name} needs a value"));
        };
        out.push((name, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn opts_get<'a>(opts: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    opts.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

fn reject_unknown(opts: &[(&str, &str)], allowed: &[&str]) -> Result<(), String> {
    for (name, _) in opts {
        if !allowed.contains(name) {
            return Err(format!("unknown flag --{name}"));
        }
    }
    Ok(())
}

fn parse_grid(s: &str) -> Result<TokenGrid, String> {
    let parts: Vec<&str> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("grid must be FxHxW, got '{s}'"));
    }
    let dims: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse::<usize>()).collect();
    let dims = dims.map_err(|_| format!("grid must be FxHxW with integers, got '{s}'"))?;
    if dims.contains(&0) {
        return Err("grid dimensions must be positive".to_string());
    }
    Ok(TokenGrid::new(dims[0], dims[1], dims[2]))
}

fn parse_pattern(s: &str, grid: &TokenGrid) -> Result<PatternKind, String> {
    match s {
        "temporal" => Ok(PatternKind::Temporal),
        "spatial-row" => Ok(PatternKind::SpatialRow),
        "spatial-col" => Ok(PatternKind::SpatialCol),
        "window" => Ok(PatternKind::default_window(grid)),
        "diffuse" => Ok(PatternKind::Diffuse),
        other => Err(format!("unknown pattern '{other}'")),
    }
}

fn parse_bits(s: &str) -> Result<Bitwidth, String> {
    s.parse::<Bitwidth>()
        .map_err(|e| format!("bits must be one of 0/2/4/8: {e}"))
}

fn parse_method(s: &str, budget: f32, bits: Bitwidth) -> Result<AttentionMethod, String> {
    Ok(match s {
        "fp16" => AttentionMethod::Fp16,
        "sage" => AttentionMethod::SageAttention,
        "sage2" => AttentionMethod::SageAttentionV2,
        "sanger" => AttentionMethod::SangerSparse { threshold: 1e-3 },
        "naive-int8" => AttentionMethod::NaiveInt { bits: Bitwidth::B8 },
        "naive-int4" => AttentionMethod::NaiveInt { bits: Bitwidth::B4 },
        "block-int8" => AttentionMethod::blockwise_int(Bitwidth::B8),
        "block-int4" => AttentionMethod::blockwise_int(Bitwidth::B4),
        "paro-int8" => AttentionMethod::paro_int(Bitwidth::B8),
        "paro-int4" => AttentionMethod::paro_int(Bitwidth::B4),
        "paro-mp" => AttentionMethod::paro_mixed(budget),
        "paro-int" => AttentionMethod::paro_int(bits),
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("invalid number '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), CliCommand::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), CliCommand::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), CliCommand::Help);
    }

    #[test]
    fn quantize_defaults() {
        let cmd = parse_args(&args(&["quantize"])).unwrap();
        match cmd {
            CliCommand::Quantize {
                grid,
                pattern,
                method,
                seed,
            } => {
                assert_eq!(grid, TokenGrid::new(6, 6, 6));
                assert_eq!(pattern, PatternKind::Temporal);
                assert_eq!(method, AttentionMethod::paro_mixed(4.8));
                assert_eq!(seed, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_with_flags() {
        let cmd = parse_args(&args(&[
            "quantize",
            "--grid",
            "4x8x8",
            "--pattern",
            "spatial-col",
            "--method",
            "naive-int4",
            "--seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Quantize {
                grid,
                pattern,
                method,
                seed,
            } => {
                assert_eq!(grid, TokenGrid::new(4, 8, 8));
                assert_eq!(pattern, PatternKind::SpatialCol);
                assert_eq!(method, AttentionMethod::NaiveInt { bits: Bitwidth::B4 });
                assert_eq!(seed, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simulate_parses_machine_and_model() {
        let cmd = parse_args(&args(&["simulate", "--model", "2b", "--machine", "vitcod"])).unwrap();
        match cmd {
            CliCommand::Simulate { model, machine } => {
                assert_eq!(model.name, "CogVideoX-2B");
                assert_eq!(machine, "vitcod");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plan_parses() {
        let cmd = parse_args(&args(&["plan", "--pattern", "window", "--block", "3"])).unwrap();
        match cmd {
            CliCommand::Plan {
                block_edge,
                pattern,
                ..
            } => {
                assert_eq!(block_edge, 3);
                assert!(matches!(pattern, PatternKind::LocalWindow { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_args(&args(&["bogus"])).unwrap_err().contains("bogus"));
        assert!(parse_args(&args(&["quantize", "--grid", "4x4"]))
            .unwrap_err()
            .contains("FxHxW"));
        assert!(parse_args(&args(&["quantize", "--grid", "0x4x4"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_args(&args(&["quantize", "--method", "magic"]))
            .unwrap_err()
            .contains("magic"));
        assert!(parse_args(&args(&["simulate", "--machine", "tpu"]))
            .unwrap_err()
            .contains("tpu"));
        assert!(parse_args(&args(&["quantize", "--seed"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&args(&["quantize", "seed", "1"]))
            .unwrap_err()
            .contains("--flag"));
        assert!(parse_args(&args(&["quantize", "--bits", "3"]))
            .unwrap_err()
            .contains("0/2/4/8"));
    }

    #[test]
    fn serve_bench_defaults() {
        let cmd = parse_args(&args(&["serve-bench"])).unwrap();
        match cmd {
            CliCommand::ServeBench(opts) => {
                assert_eq!(opts.grid, TokenGrid::new(4, 6, 6));
                assert_eq!(opts.threads, 4);
                assert_eq!(opts.queue, 64);
                assert_eq!(opts.requests, 150);
                assert_eq!(opts.blocks, 3);
                assert_eq!(opts.heads, 4);
                assert_eq!(opts.budget, 4.8);
                assert_eq!(opts.block_edge, 6);
                assert_eq!(opts.deadline_ms, 0);
                assert_eq!(opts.seed, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_bench_with_flags() {
        let cmd = parse_args(&args(&[
            "serve-bench",
            "--threads",
            "8",
            "--queue",
            "16",
            "--requests",
            "32",
            "--deadline-ms",
            "250",
            "--grid",
            "3x4x4",
            "--blocks",
            "2",
            "--heads",
            "5",
        ]))
        .unwrap();
        match cmd {
            CliCommand::ServeBench(opts) => {
                assert_eq!(opts.threads, 8);
                assert_eq!(opts.queue, 16);
                assert_eq!(opts.requests, 32);
                assert_eq!(opts.deadline_ms, 250);
                assert_eq!(opts.grid, TokenGrid::new(3, 4, 4));
                assert_eq!(opts.blocks, 2);
                assert_eq!(opts.heads, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_bench_rejects_degenerate_values() {
        assert!(parse_args(&args(&["serve-bench", "--threads", "0"]))
            .unwrap_err()
            .contains("threads"));
        assert!(parse_args(&args(&["serve-bench", "--queue", "0"]))
            .unwrap_err()
            .contains("queue"));
        assert!(parse_args(&args(&["serve-bench", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
        assert!(parse_args(&args(&["serve-bench", "--heads", "0"]))
            .unwrap_err()
            .contains("heads"));
        assert!(parse_args(&args(&["serve-bench", "--threads", "many"]))
            .unwrap_err()
            .contains("many"));
    }

    #[test]
    fn usage_documents_serve_bench() {
        assert!(USAGE.contains("serve-bench"));
        assert!(USAGE.contains("--deadline-ms"));
    }

    #[test]
    fn trace_defaults() {
        let cmd = parse_args(&args(&["trace"])).unwrap();
        match cmd {
            CliCommand::Trace(opts) => {
                assert_eq!(opts.out, "trace.json");
                // Shares serve-bench knobs but defaults to a short stream.
                assert_eq!(opts.bench.requests, 24);
                assert_eq!(opts.bench.grid, TokenGrid::new(4, 6, 6));
                assert_eq!(opts.bench.threads, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_with_flags() {
        let cmd = parse_args(&args(&[
            "trace",
            "--out",
            "/tmp/t.json",
            "--requests",
            "8",
            "--threads",
            "2",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Trace(opts) => {
                assert_eq!(opts.out, "/tmp/t.json");
                assert_eq!(opts.bench.requests, 8);
                assert_eq!(opts.bench.threads, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_rejects_degenerate_values() {
        assert!(parse_args(&args(&["trace", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
        assert!(parse_args(&args(&["trace", "--threads", "0"]))
            .unwrap_err()
            .contains("threads"));
    }

    #[test]
    fn usage_documents_trace() {
        assert!(USAGE.contains("paro trace"));
        assert!(USAGE.contains("--out"));
    }

    #[test]
    fn chaos_bench_defaults_and_flags() {
        let cmd = parse_args(&args(&["chaos-bench"])).unwrap();
        match cmd {
            CliCommand::ChaosBench(opts) => {
                assert_eq!(opts.bench.requests, 24);
                assert_eq!(opts.fault_seed, 1);
                assert_eq!(opts.faults, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "chaos-bench",
            "--fault-seed",
            "9",
            "--faults",
            "3",
            "--requests",
            "12",
        ]))
        .unwrap();
        match cmd {
            CliCommand::ChaosBench(opts) => {
                assert_eq!(opts.fault_seed, 9);
                assert_eq!(opts.faults, 3);
                assert_eq!(opts.bench.requests, 12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chaos_bench_rejects_degenerate_values() {
        assert!(parse_args(&args(&["chaos-bench", "--faults", "0"]))
            .unwrap_err()
            .contains("faults"));
        assert!(parse_args(&args(&["chaos-bench", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
    }

    #[test]
    fn usage_documents_chaos_bench() {
        assert!(USAGE.contains("chaos-bench"));
        assert!(USAGE.contains("--fault-seed"));
    }

    #[test]
    fn soak_bench_defaults_and_flags() {
        let cmd = parse_args(&args(&["soak-bench"])).unwrap();
        match cmd {
            CliCommand::SoakBench(opts) => {
                assert_eq!(opts.bench.requests, 48);
                assert_eq!(opts.rate, 40.0);
                assert_eq!(opts.weights, (4.0, 1.0));
                assert_eq!(opts.repeat, 1);
                assert_eq!(opts.bench.out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "soak-bench",
            "--rate",
            "25",
            "--weights",
            "8,0.5",
            "--repeat",
            "3",
            "--requests",
            "16",
            "--out",
            "soak.json",
        ]))
        .unwrap();
        match cmd {
            CliCommand::SoakBench(opts) => {
                assert_eq!(opts.rate, 25.0);
                assert_eq!(opts.weights, (8.0, 0.5));
                assert_eq!(opts.repeat, 3);
                assert_eq!(opts.bench.requests, 16);
                assert_eq!(opts.bench.out.as_deref(), Some("soak.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn soak_bench_rejects_degenerate_values() {
        assert!(parse_args(&args(&["soak-bench", "--rate", "0"]))
            .unwrap_err()
            .contains("rate"));
        assert!(parse_args(&args(&["soak-bench", "--rate", "-3"]))
            .unwrap_err()
            .contains("rate"));
        assert!(parse_args(&args(&["soak-bench", "--weights", "4"]))
            .unwrap_err()
            .contains("weights"));
        assert!(parse_args(&args(&["soak-bench", "--weights", "4,0"]))
            .unwrap_err()
            .contains("weights"));
        assert!(parse_args(&args(&["soak-bench", "--weights", "a,b"]))
            .unwrap_err()
            .contains("invalid number"));
        assert!(parse_args(&args(&["soak-bench", "--repeat", "0"]))
            .unwrap_err()
            .contains("repeat"));
        assert!(parse_args(&args(&["soak-bench", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
    }

    #[test]
    fn usage_documents_soak_bench() {
        assert!(USAGE.contains("soak-bench"));
        assert!(USAGE.contains("--weights"));
        assert!(USAGE.contains("docs/SCHEDULING.md"));
    }

    #[test]
    fn drift_bench_defaults_and_flags() {
        let cmd = parse_args(&args(&["drift-bench"])).unwrap();
        match cmd {
            CliCommand::DriftBench(opts) => {
                assert_eq!(opts.bench.requests, 24);
                assert_eq!(opts.warmup, 3);
                assert_eq!(opts.detect_within, 2);
                assert_eq!(opts.post, 3);
                assert_eq!(opts.bench.out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "drift-bench",
            "--warmup",
            "5",
            "--detect-within",
            "4",
            "--post",
            "2",
            "--requests",
            "12",
            "--out",
            "drift.json",
        ]))
        .unwrap();
        match cmd {
            CliCommand::DriftBench(opts) => {
                assert_eq!(opts.warmup, 5);
                assert_eq!(opts.detect_within, 4);
                assert_eq!(opts.post, 2);
                assert_eq!(opts.bench.requests, 12);
                assert_eq!(opts.bench.out.as_deref(), Some("drift.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drift_bench_rejects_degenerate_values() {
        assert!(parse_args(&args(&["drift-bench", "--warmup", "0"]))
            .unwrap_err()
            .contains("warmup"));
        assert!(parse_args(&args(&["drift-bench", "--detect-within", "0"]))
            .unwrap_err()
            .contains("detect-within"));
        assert!(parse_args(&args(&["drift-bench", "--post", "0"]))
            .unwrap_err()
            .contains("post"));
        assert!(parse_args(&args(&["drift-bench", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
        assert!(parse_args(&args(&["drift-bench", "--plan", "x.paro"]))
            .unwrap_err()
            .contains("--plan"));
    }

    #[test]
    fn usage_documents_drift_bench() {
        assert!(USAGE.contains("drift-bench"));
        assert!(USAGE.contains("--detect-within"));
        assert!(USAGE.contains("docs/LIFECYCLE.md"));
    }

    #[test]
    fn perf_bench_defaults() {
        let cmd = parse_args(&args(&["perf-bench"])).unwrap();
        match cmd {
            CliCommand::PerfBench(opts) => {
                assert_eq!(opts.grid, TokenGrid::new(6, 8, 8));
                assert_eq!(opts.budget, 4.8);
                assert_eq!(opts.block_edge, 6);
                assert_eq!(opts.seed, 42);
                assert_eq!(opts.label, "local");
                assert_eq!(opts.out, "BENCH_local.json");
                assert_eq!(opts.iters, 5);
                assert_eq!(opts.compare, None);
                assert_eq!(opts.tolerance, 30.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perf_bench_with_flags() {
        let cmd = parse_args(&args(&[
            "perf-bench",
            "--label",
            "ci_baseline",
            "--iters",
            "9",
            "--grid",
            "4x6x6",
            "--compare",
            "BENCH_ci_baseline.json",
            "--tolerance",
            "25",
        ]))
        .unwrap();
        match cmd {
            CliCommand::PerfBench(opts) => {
                assert_eq!(opts.label, "ci_baseline");
                // --out defaults from the label.
                assert_eq!(opts.out, "BENCH_ci_baseline.json");
                assert_eq!(opts.iters, 9);
                assert_eq!(opts.grid, TokenGrid::new(4, 6, 6));
                assert_eq!(opts.compare.as_deref(), Some("BENCH_ci_baseline.json"));
                assert_eq!(opts.tolerance, 25.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // An explicit --out wins over the label-derived default.
        let cmd = parse_args(&args(&["perf-bench", "--out", "/tmp/b.json"])).unwrap();
        match cmd {
            CliCommand::PerfBench(opts) => assert_eq!(opts.out, "/tmp/b.json"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perf_bench_rejects_degenerate_values() {
        assert!(parse_args(&args(&["perf-bench", "--iters", "0"]))
            .unwrap_err()
            .contains("iters"));
        assert!(parse_args(&args(&["perf-bench", "--tolerance", "0"]))
            .unwrap_err()
            .contains("tolerance"));
        assert!(parse_args(&args(&["perf-bench", "--tolerance", "-5"]))
            .unwrap_err()
            .contains("tolerance"));
        assert!(parse_args(&args(&["perf-bench", "--label", "a/b"]))
            .unwrap_err()
            .contains("label"));
    }

    #[test]
    fn usage_documents_perf_bench() {
        assert!(USAGE.contains("perf-bench"));
        assert!(USAGE.contains("--tolerance"));
        assert!(USAGE.contains("BENCH_<label>.json"));
    }

    #[test]
    fn shard_bench_defaults_and_flags() {
        let cmd = parse_args(&args(&["shard-bench"])).unwrap();
        match cmd {
            CliCommand::ShardBench(opts) => {
                assert_eq!(opts.shards, 2);
                assert_eq!(opts.max_imbalance_pct, DEFAULT_MAX_IMBALANCE_PCT);
                assert_eq!(opts.bench.requests, 24);
                assert_eq!(opts.bench.out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "shard-bench",
            "--shards",
            "4",
            "--max-imbalance-pct",
            "40",
            "--requests",
            "12",
            "--out",
            "shard.json",
        ]))
        .unwrap();
        match cmd {
            CliCommand::ShardBench(opts) => {
                assert_eq!(opts.shards, 4);
                assert_eq!(opts.max_imbalance_pct, 40.0);
                assert_eq!(opts.bench.requests, 12);
                assert_eq!(opts.bench.out.as_deref(), Some("shard.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shard_bench_rejects_degenerate_values() {
        // 1 shard is always the baseline; a 1-shard "sweep" is vacuous.
        assert!(parse_args(&args(&["shard-bench", "--shards", "1"]))
            .unwrap_err()
            .contains("shards"));
        assert!(parse_args(&args(&["shard-bench", "--shards", "0"]))
            .unwrap_err()
            .contains("shards"));
        let over = (paro_serve::MAX_SHARDS + 1).to_string();
        assert!(parse_args(&args(&["shard-bench", "--shards", &over]))
            .unwrap_err()
            .contains("shards"));
        assert!(
            parse_args(&args(&["shard-bench", "--max-imbalance-pct", "0"]))
                .unwrap_err()
                .contains("max-imbalance-pct")
        );
        assert!(
            parse_args(&args(&["shard-bench", "--max-imbalance-pct", "-4"]))
                .unwrap_err()
                .contains("max-imbalance-pct")
        );
        assert!(parse_args(&args(&["shard-bench", "--requests", "0"]))
            .unwrap_err()
            .contains("requests"));
    }

    #[test]
    fn usage_documents_shard_bench() {
        assert!(USAGE.contains("shard-bench"));
        assert!(USAGE.contains("--max-imbalance-pct"));
        assert!(USAGE.contains("docs/SHARDING.md"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for cmd in [
            "quantize",
            "simulate",
            "plan",
            "serve-bench",
            "trace",
            "chaos-bench",
            "soak-bench",
            "drift-bench",
            "perf-bench",
            "shard-bench",
            "tune",
        ] {
            let err = parse_args(&args(&[cmd, "--wat", "7"])).unwrap_err();
            assert!(err.contains("unknown flag --wat"), "{cmd}: {err}");
        }
        for sub in ["build", "inspect", "verify"] {
            let err = parse_args(&args(&["plan", sub, "--wat", "7"])).unwrap_err();
            assert!(err.contains("unknown flag --wat"), "plan {sub}: {err}");
        }
        // Known flags still parse after the check.
        assert!(parse_args(&args(&["serve-bench", "--threads", "2"])).is_ok());
    }

    #[test]
    fn plan_build_defaults_mirror_serve_bench() {
        let cmd = parse_args(&args(&["plan", "build"])).unwrap();
        match cmd {
            CliCommand::PlanBuild(opts) => {
                assert_eq!(opts.grid, TokenGrid::new(4, 6, 6));
                assert_eq!(opts.blocks, 3);
                assert_eq!(opts.heads, 4);
                assert_eq!(opts.block_edge, 6);
                assert_eq!(opts.budget, 4.8);
                assert_eq!(opts.seed, 42);
                assert_eq!(opts.out, "plans.paro");
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "plan",
            "build",
            "--grid",
            "2x4x4",
            "--blocks",
            "2",
            "--heads",
            "3",
            "--out",
            "out/p.paro",
        ]))
        .unwrap();
        match cmd {
            CliCommand::PlanBuild(opts) => {
                assert_eq!(opts.grid, TokenGrid::new(2, 4, 4));
                assert_eq!(opts.blocks, 2);
                assert_eq!(opts.heads, 3);
                assert_eq!(opts.out, "out/p.paro");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["plan", "build", "--blocks", "0"]))
            .unwrap_err()
            .contains("blocks"));
    }

    #[test]
    fn plan_inspect_and_verify_require_a_file() {
        let cmd = parse_args(&args(&["plan", "inspect", "--file", "p.paro"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::PlanInspect {
                file: "p.paro".to_string()
            }
        );
        let cmd = parse_args(&args(&["plan", "verify", "--file", "p.paro"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::PlanVerify {
                file: "p.paro".to_string()
            }
        );
        assert!(parse_args(&args(&["plan", "inspect"]))
            .unwrap_err()
            .contains("--file"));
        assert!(parse_args(&args(&["plan", "verify"]))
            .unwrap_err()
            .contains("--file"));
    }

    #[test]
    fn legacy_plan_still_parses_with_subcommands_present() {
        // The original flag-only `plan` must be untouched by the
        // subcommand peek.
        let cmd = parse_args(&args(&["plan", "--block", "3"])).unwrap();
        assert!(matches!(cmd, CliCommand::Plan { block_edge: 3, .. }));
        // And a bare unknown token still errors like before.
        assert!(parse_args(&args(&["plan", "bogus", "--x", "1"]))
            .unwrap_err()
            .contains("--flag"));
    }

    #[test]
    fn tune_defaults_and_flags() {
        let cmd = parse_args(&args(&["tune"])).unwrap();
        match cmd {
            CliCommand::Tune(opts) => {
                assert_eq!(opts.grid, TokenGrid::new(6, 8, 8));
                assert_eq!(opts.blocks, 2);
                assert_eq!(opts.heads, 2);
                assert_eq!(opts.block_edge, 6);
                assert_eq!(opts.seed, 42);
                assert_eq!(opts.bench, "BENCH_ci_baseline.json");
                assert_eq!(opts.slo_us, 1500.0);
                assert_eq!(opts.out, "PLAN_tuned.paro");
                assert_eq!(opts.report, "TUNE_report.json");
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "tune", "--slo-us", "900", "--bench", "b.json", "--out", "t.paro", "--report",
            "r.json", "--heads", "3",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Tune(opts) => {
                assert_eq!(opts.slo_us, 900.0);
                assert_eq!(opts.bench, "b.json");
                assert_eq!(opts.out, "t.paro");
                assert_eq!(opts.report, "r.json");
                assert_eq!(opts.heads, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tune_rejects_degenerate_values() {
        assert!(parse_args(&args(&["tune", "--slo-us", "0"]))
            .unwrap_err()
            .contains("slo-us"));
        assert!(parse_args(&args(&["tune", "--slo-us", "-5"]))
            .unwrap_err()
            .contains("slo-us"));
        assert!(parse_args(&args(&["tune", "--heads", "0"]))
            .unwrap_err()
            .contains("heads"));
    }

    #[test]
    fn serve_bench_plan_and_out_flags() {
        let cmd = parse_args(&args(&[
            "serve-bench",
            "--plan",
            "plans.paro",
            "--out",
            "reports/sb.json",
        ]))
        .unwrap();
        match cmd {
            CliCommand::ServeBench(opts) => {
                assert_eq!(opts.plan.as_deref(), Some("plans.paro"));
                assert_eq!(opts.out.as_deref(), Some("reports/sb.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // trace keeps --out for the Chrome JSON; its bench.out stays None.
        let cmd = parse_args(&args(&["trace", "--out", "t.json"])).unwrap();
        match cmd {
            CliCommand::Trace(opts) => {
                assert_eq!(opts.out, "t.json");
                assert_eq!(opts.bench.out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&["chaos-bench", "--out", "c.json"])).unwrap();
        match cmd {
            CliCommand::ChaosBench(opts) => assert_eq!(opts.bench.out.as_deref(), Some("c.json")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn usage_documents_plan_artifacts_and_tune() {
        assert!(USAGE.contains("plan build"));
        assert!(USAGE.contains("plan inspect"));
        assert!(USAGE.contains("plan verify"));
        assert!(USAGE.contains("paro tune"));
        assert!(USAGE.contains("--slo-us"));
        assert!(USAGE.contains("--plan"));
        assert!(USAGE.contains("docs/ARTIFACT.md"));
    }

    #[test]
    fn all_documented_methods_parse() {
        for m in [
            "fp16",
            "sage",
            "sage2",
            "sanger",
            "naive-int8",
            "naive-int4",
            "block-int8",
            "block-int4",
            "paro-int8",
            "paro-int4",
            "paro-mp",
        ] {
            assert!(
                parse_args(&args(&["quantize", "--method", m])).is_ok(),
                "method {m} failed to parse"
            );
        }
    }
}
