//! PARO — pattern-aware reorder-based attention quantization, reproduced.
//!
//! This facade crate re-exports the full reproduction of the DAC 2025
//! paper *"PARO: Hardware-Software Co-design with Pattern-aware
//! Reorder-based Attention Quantization in Video Generation Models"*:
//!
//! - [`tensor`] — dense tensor substrate (matmul, softmax, permutation,
//!   fidelity metrics, heatmap rendering).
//! - [`quant`] — uniform affine quantization, grouping granularities,
//!   packed integer storage, integer GEMM.
//! - [`model`] — CogVideoX-shaped workloads and the synthetic
//!   3D-full-attention pattern generator.
//! - [`core`] — the PARO algorithm: reorder plans, sensitivity-guided
//!   mixed-precision allocation, LDZ truncation, the quantized-attention
//!   method zoo.
//! - [`sim`] — the cycle-level accelerator simulator and baseline machines
//!   (Sanger, ViTCoD, A100).
//! - [`serve`] — the in-process concurrent attention-serving engine:
//!   bounded admission, frozen-calibration plan cache, deterministic
//!   multi-threaded execution, serving metrics.
//! - [`trace`] — low-overhead span tracing across the pipeline, pool and
//!   serving engine, with Chrome trace-event export and per-stage
//!   summaries (`paro trace` drives it from the CLI).
//! - [`failpoint`] — deterministic fault injection (named sites armed by
//!   kind/skip/count, compiled out by default) driving the chaos suite
//!   and `paro chaos-bench`.
//! - [`artifact`] — the zero-copy frozen-plan artifact format
//!   (`paro plan build/inspect/verify` on the CLI; see
//!   `docs/ARTIFACT.md` for the byte-level contract).
//!
//! # Quickstart
//!
//! ```
//! use paro::core::methods::AttentionMethod;
//! use paro::core::pipeline::{reference_attention, run_attention, AttentionInputs};
//! use paro::model::{patterns, ModelConfig};
//! use paro::tensor::metrics;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize one attention head with a temporal-diagonal pattern.
//! let cfg = ModelConfig::tiny(4, 4, 4);
//! let spec = patterns::PatternSpec::new(patterns::PatternKind::Temporal);
//! let head = patterns::synthesize_head(&cfg.grid, cfg.head_dim(), &spec, 7);
//!
//! // Run PARO mixed-precision attention at a 4.8-bit budget.
//! let reference = reference_attention(&head.q, &head.k, &head.v)?;
//! let inputs = AttentionInputs::new(head.q, head.k, head.v, cfg.grid)?;
//! let run = run_attention(&inputs, &AttentionMethod::paro_mixed(4.8))?;
//!
//! // Near-lossless at 4.8 bits.
//! let err = metrics::relative_l2(&reference, &run.output)?;
//! assert!(err < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paro_artifact as artifact;
pub use paro_core as core;
pub use paro_failpoint as failpoint;
pub use paro_model as model;
pub use paro_quant as quant;
pub use paro_serve as serve;
pub use paro_sim as sim;
pub use paro_tensor as tensor;
pub use paro_trace as trace;

pub mod cli;
pub mod plans;
pub mod report;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use paro_core::allocate::{allocate_dp, allocate_greedy, BitAllocation};
    pub use paro_core::methods::AttentionMethod;
    pub use paro_core::pipeline::{reference_attention, run_attention, AttentionInputs};
    pub use paro_core::reorder::{select_plan, ReorderPlan};
    pub use paro_core::sensitivity::SensitivityTable;
    pub use paro_core::CoreError;
    pub use paro_model::patterns::{synthesize_head, PatternKind, PatternSpec};
    pub use paro_model::{AxisOrder, ModelConfig, TokenGrid};
    pub use paro_quant::{Bitwidth, BlockGrid, Grouping, QuantParams};
    pub use paro_sim::machines::{
        GpuMachine, Machine, ParoMachine, ParoOptimizations, SangerConfig, SangerMachine,
        VitcodConfig, VitcodMachine,
    };
    pub use paro_sim::{AttentionProfile, HardwareConfig, Report};
    pub use paro_tensor::{metrics, Tensor};
}
