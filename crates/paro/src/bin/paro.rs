//! The `paro` command-line tool: quantize synthetic heads, simulate
//! machines, trace reorder-plan selection, benchmark and profile the
//! serving engine. Run `paro help` for usage.

use paro::cli::{
    parse_args, ChaosBenchOpts, CliCommand, DriftBenchOpts, PerfBenchOpts, ServeBenchOpts,
    ShardBenchOpts, SoakBenchOpts, TraceOpts, USAGE,
};
use paro::core::calibration::{calibrate_head, HeadCalibration};
use paro::core::int_pipeline::run_attention_calibrated_int;
use paro::core::pipeline::{attention_map, run_attention_calibrated_reference};
use paro::core::reorder::{reorder_map, select_plan, ReorderPlan};
use paro::plans::{build_plan_bytes, inspect_text, run_tune, verify_text, write_output};
use paro::prelude::*;
use paro::report::{
    diff_stage_medians, format_diff_table, missing_baseline_stages, stage_rows, AttnVThroughput,
    ChaosBenchReport, DriftBenchReport, InjectedFaultRow, IntPathComparison, PerfBenchReport,
    PerfStageRow, ServeBenchReport, ShardBenchReport, ShardScaleRow, ShardSpanRow, SoakBenchReport,
    SoakRunReport, SoakTenantRow,
};
use paro::serve::workload::{
    open_loop_arrivals, scaled_config, synthetic_requests, synthetic_requests_at_phase,
    DriftSource, SyntheticSource, WorkloadSpec,
};
use paro::serve::{
    CalibrationSource, Engine, PlanHealth, RecalibrationPolicy, ServeConfig, TenantClass, Watchdog,
    WatchdogConfig, WavePolicy,
};
use paro::sim::OpCategory;
use paro::tensor::kernel;
use paro::tensor::render;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: CliCommand) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        CliCommand::Help => {
            println!("{USAGE}");
            Ok(())
        }
        CliCommand::Quantize {
            grid,
            pattern,
            method,
            seed,
        } => {
            let spec = PatternSpec::new(pattern);
            let head = synthesize_head(&grid, 32, &spec, seed);
            let reference = reference_attention(&head.q, &head.k, &head.v)?;
            let inputs = AttentionInputs::new(head.q, head.k, head.v, grid)?;
            let run = run_attention(&inputs, &method)?;
            println!(
                "method {} on a {} head over {} tokens (seed {seed})",
                method.name(),
                pattern,
                grid.len()
            );
            println!(
                "  rel-L2 error    {:.5}",
                metrics::relative_l2(&reference, &run.output)?
            );
            println!(
                "  cosine sim      {:.5}",
                metrics::cosine_similarity(&reference, &run.output)?
            );
            println!("  avg map bits    {:.2}", run.avg_bits);
            println!("  map sparsity    {:.1}%", run.map_sparsity * 100.0);
            if let Some(plan) = &run.plan {
                println!("  reorder plan    {}", plan.order());
            }
            if let Some(alloc) = &run.allocation {
                let h = alloc.histogram();
                println!(
                    "  block bits      0b:{} 2b:{} 4b:{} 8b:{}",
                    h[0], h[1], h[2], h[3]
                );
            }
            Ok(())
        }
        CliCommand::Simulate { model, machine } => {
            let profile = AttentionProfile::paper_mp();
            let m: Box<dyn Machine> = match machine.as_str() {
                "sanger" => Box::new(SangerMachine::default_budget()),
                "vitcod" => Box::new(VitcodMachine::default_budget()),
                "a100" => Box::new(GpuMachine::a100()),
                "align" => Box::new(ParoMachine::new(
                    HardwareConfig::paro_align_a100(),
                    ParoOptimizations::all(),
                )),
                _ => Box::new(ParoMachine::new(
                    HardwareConfig::paro_asic(),
                    ParoOptimizations::all(),
                )),
            };
            let report = m.run_model(&model, &profile);
            print!("{}", report.format_text());
            let _ = OpCategory::Linear;
            Ok(())
        }
        CliCommand::ServeBench(opts) => serve_bench(&opts),
        CliCommand::Trace(opts) => trace_workload(&opts),
        CliCommand::ChaosBench(opts) => chaos_bench(&opts),
        CliCommand::SoakBench(opts) => soak_bench(&opts),
        CliCommand::DriftBench(opts) => drift_bench(&opts),
        CliCommand::PerfBench(opts) => perf_bench(&opts),
        CliCommand::ShardBench(opts) => shard_bench(&opts),
        CliCommand::Plan {
            grid,
            pattern,
            block_edge,
            seed,
        } => {
            let spec = PatternSpec::new(pattern);
            let head = synthesize_head(&grid, 32, &spec, seed);
            let map = attention_map(&head.q, &head.k)?;
            let sel = select_plan(&map, &grid, BlockGrid::square(block_edge)?, Bitwidth::B4)?;
            println!(
                "plan selection for a {} head over {} tokens (block edge {block_edge}):",
                pattern,
                grid.len()
            );
            for (order, err) in &sel.candidate_errors {
                let marker = if *order == sel.order {
                    "  <== selected"
                } else {
                    ""
                };
                println!("  {order}: err {err:.5}{marker}");
            }
            let plan = ReorderPlan::new(&grid, sel.order);
            let reordered = reorder_map(&map, &plan)?;
            println!("\nbefore reorder:");
            println!("{}", render::ascii_heatmap(&map, 32)?);
            println!("after reorder ({}):", sel.order);
            println!("{}", render::ascii_heatmap(&reordered, 32)?);
            Ok(())
        }
        CliCommand::PlanBuild(opts) => {
            let bytes = build_plan_bytes(&opts)?;
            write_output(&opts.out, &bytes)?;
            let view = paro::artifact::ArtifactView::parse(&bytes)?;
            println!(
                "wrote {} heads ({} bytes) for {} -> {}",
                view.head_count(),
                bytes.len(),
                view.meta().model,
                opts.out,
            );
            Ok(())
        }
        CliCommand::PlanInspect { file } => {
            let bytes = std::fs::read(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
            print!("{}", inspect_text(&bytes)?);
            Ok(())
        }
        CliCommand::PlanVerify { file } => {
            let bytes = std::fs::read(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
            println!("{}", verify_text(&bytes)?);
            Ok(())
        }
        CliCommand::Tune(opts) => {
            let (report, bytes) = run_tune(&opts)?;
            write_output(&opts.out, &bytes)?;
            let json = serde_json::to_string_pretty(&report)?;
            write_output(&opts.report, json.as_bytes())?;
            println!("{json}");
            eprintln!(
                "tuned {} heads: predicted mean {:.1} us vs SLO {:.1} us \
                 ({}; {} downgrade moves, mean budget {:.2} bits); \
                 artifact -> {}, report -> {}",
                report.heads.len(),
                report.predicted_mean_us,
                report.slo_us,
                if report.meets_slo {
                    "meets SLO"
                } else {
                    "SLO infeasible at the fastest budgets"
                },
                report.moves,
                report.mean_budget_bits,
                opts.out,
                opts.report,
            );
            if !report.meets_slo {
                return Err(format!(
                    "SLO of {} us is infeasible: predicted mean is {:.1} us \
                     with every head at its fastest trial budget",
                    report.slo_us, report.predicted_mean_us
                )
                .into());
            }
            Ok(())
        }
    }
}

/// The engine + request stream both serving commands run.
struct Workload {
    model: ModelConfig,
    engine: Engine,
    spec: WorkloadSpec,
}

fn build_workload(
    opts: &ServeBenchOpts,
    shards: usize,
) -> Result<Workload, Box<dyn std::error::Error>> {
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        opts.grid.frames(),
        opts.grid.height(),
        opts.grid.width(),
    );
    let source = Arc::new(SyntheticSource::new(model.clone(), 2, opts.seed ^ 0xca11b));
    let cfg = ServeConfig {
        workers: opts.threads,
        queue_capacity: opts.queue,
        block_edge: opts.block_edge,
        budget: opts.budget,
        default_deadline: (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms)),
        plan_artifact: opts.plan.as_ref().map(PathBuf::from),
        shards,
        ..ServeConfig::default()
    };
    let engine = Engine::new(cfg, model.clone(), source)?;
    let spec = WorkloadSpec {
        model: model.clone(),
        requests: opts.requests,
        blocks: opts.blocks,
        heads: opts.heads,
        seed: opts.seed,
    };
    Ok(Workload {
        model,
        engine,
        spec,
    })
}

fn int_path_comparison(
    source: &SyntheticSource,
    model: &ModelConfig,
    opts: &ServeBenchOpts,
) -> Result<IntPathComparison, Box<dyn std::error::Error>> {
    let defaults = ServeConfig::default();
    let spec = PatternSpec::for_head(&model.grid, 0, 0);
    let head = synthesize_head(&model.grid, model.head_dim(), &spec, opts.seed);
    let inputs = AttentionInputs::new(head.q, head.k, head.v, model.grid)?;
    let maps = source.calibration_maps(0, 0)?;
    let cal = calibrate_head(
        &maps,
        &model.grid,
        BlockGrid::square(opts.block_edge)?,
        defaults.calib_bits,
        opts.budget,
        defaults.alpha,
    )?;
    let output_aware = defaults.output_aware;
    // Warm both paths once, keeping the int run's traffic accounting.
    let stats = run_attention_calibrated_int(&inputs, &cal, output_aware)?.stats;
    run_attention_calibrated_reference(&inputs, &cal, output_aware)?;
    let iters = 3usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        run_attention_calibrated_int(&inputs, &cal, output_aware)?;
    }
    let int_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        run_attention_calibrated_reference(&inputs, &cal, output_aware)?;
    }
    let f32_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    Ok(IntPathComparison {
        iters,
        int_ms_per_head: int_ms,
        f32_ms_per_head: f32_ms,
        int_over_f32_speedup: if int_ms > 0.0 { f32_ms / int_ms } else { 0.0 },
        packed_map_bytes_per_head: stats.packed_map_bytes,
        packed_v_bytes_per_head: stats.v_payload_bytes,
        macs_skipped_fraction: stats.skipped_fraction(),
        kernel: stats.kernel.to_string(),
    })
}

/// Records the one-shot `kernel.dispatch` span: a zero-length marker at
/// the head of the session whose `detail` names the micro-kernel every
/// dispatched hot loop runs, so traces and summaries are self-describing.
fn record_kernel_dispatch() {
    let _d = paro::trace::span_detailed(
        paro::trace::stage::KERNEL_DISPATCH,
        kernel::active_kernel().as_str(),
    );
}

fn serve_bench(opts: &ServeBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    let wl = build_workload(opts, 1)?;
    let requests = synthetic_requests(&wl.spec);
    // Record the batch; in a compiled-out build the session is inert and
    // the stage table stays empty.
    let session = paro::trace::TraceSession::start();
    record_kernel_dispatch();
    let t0 = Instant::now();
    let outcome = wl.engine.run_batch(requests);
    let wall = t0.elapsed();
    // Joining the workers orders the final wave-close span (recorded
    // after the last response is delivered) before the session snapshot.
    wl.engine.shutdown();
    let trace = session.finish();
    let completed = outcome.completed();
    let int_path = int_path_comparison(
        &SyntheticSource::new(wl.model.clone(), 2, opts.seed ^ 0xca11b),
        &wl.model,
        opts,
    )?;
    let report = ServeBenchReport {
        model: wl.model.name.clone(),
        tokens: wl.model.grid.len(),
        head_dim: wl.model.head_dim(),
        threads: opts.threads,
        queue_capacity: opts.queue,
        requests: opts.requests,
        distinct_heads: wl.spec.distinct_heads(),
        completed,
        failed: outcome.failed(),
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        trace_compiled_in: paro::trace::COMPILED_IN,
        trace_stages: stage_rows(&trace.summary()),
        int_path,
        metrics: wl.engine.metrics_snapshot(),
    };
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &opts.out {
        write_output(path, json.as_bytes())?;
    }
    println!("{json}");
    Ok(())
}

/// Output bits of a batch whose requests all completed, or `None` if any
/// failed.
fn batch_output_bits(outcome: &paro::serve::BatchOutcome) -> Option<Vec<Vec<u32>>> {
    outcome
        .responses
        .iter()
        .map(|r| {
            r.as_ref().ok().map(|resp| {
                resp.run
                    .output
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
        })
        .collect()
}

/// SplitMix64: derives per-site skip offsets from `--fault-seed` so the
/// injected schedule is deterministic and varied without a RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Arms one fault of every flavor — a pool-job panic, a calibration
/// panic, a transient int-pipeline error and a transient quant error —
/// with skip offsets derived from the fault seed. Returns the armed
/// specs for the report (`fired` is filled in after the chaos batch).
fn arm_faults(opts: &ChaosBenchOpts) -> Vec<(&'static str, paro::failpoint::FaultSpec)> {
    use paro::failpoint::{site, FaultKind, FaultSpec};
    let sites = [
        (site::POOL_JOB, FaultKind::Panic),
        (site::PLAN_CACHE_CALIBRATE, FaultKind::Panic),
        (site::PIPELINE_INT_ATTN, FaultKind::Error),
        (site::QUANT_PACK_ATTN_V, FaultKind::Error),
    ];
    let span = (opts.bench.requests as u64).max(1);
    sites
        .iter()
        .enumerate()
        .map(|(i, &(site, kind))| {
            let skip = splitmix64(opts.fault_seed ^ (i as u64)) % span;
            let spec = FaultSpec::new(kind, skip, opts.faults);
            paro::failpoint::arm(site, spec);
            (site, spec)
        })
        .collect()
}

fn chaos_bench(opts: &ChaosBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    // Baseline: a never-faulted engine over the same workload.
    let baseline_bits = {
        let wl = build_workload(&opts.bench, 1)?;
        let outcome = wl.engine.run_batch(synthetic_requests(&wl.spec));
        batch_output_bits(&outcome)
            .ok_or("baseline batch failed; chaos-bench needs a clean baseline")?
    };
    // Chaos: arm the fault schedule, run the same workload on a fresh
    // engine, and let the fault-tolerance machinery absorb it. Injected
    // panics are expected and contained — keep stderr readable.
    let wl = build_workload(&opts.bench, 1)?;
    let armed = arm_faults(opts);
    std::panic::set_hook(Box::new(|_| {}));
    let chaos = wl.engine.run_batch(synthetic_requests(&wl.spec));
    let _ = std::panic::take_hook();
    let injected: Vec<InjectedFaultRow> = armed
        .into_iter()
        .map(|(site, spec)| InjectedFaultRow {
            site: site.to_string(),
            kind: spec.kind.as_str().to_string(),
            skip: spec.skip,
            times: spec.times,
            fired: paro::failpoint::fired(site),
        })
        .collect();
    // Disarm everything and re-run on the *same* engine: the clean batch
    // must reproduce the baseline bit for bit.
    paro::failpoint::reset();
    let clean = wl.engine.run_batch(synthetic_requests(&wl.spec));
    let clean_bits = batch_output_bits(&clean);
    let snap = wl.engine.metrics_snapshot();
    let report = ChaosBenchReport {
        model: wl.model.name.clone(),
        requests: opts.bench.requests,
        threads: opts.bench.threads,
        failpoints_compiled_in: paro::failpoint::COMPILED_IN,
        injected,
        chaos_completed: chaos.completed(),
        chaos_failed: chaos.failed(),
        clean_completed: clean.completed(),
        clean_bit_identical: clean_bits.as_ref() == Some(&baseline_bits),
        faulted: snap.faulted,
        retried: snap.retried,
        degraded: snap.degraded,
        timed_out: snap.timed_out,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    };
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &opts.bench.out {
        write_output(path, json.as_bytes())?;
    }
    println!("{json}");
    if !report.clean_bit_identical {
        return Err("clean batch after injected faults diverged from the baseline".into());
    }
    Ok(())
}

/// Per-request output bits of one soak run (`None` for rejected or
/// failed requests), in submission order.
type SoakOutputs = Vec<Option<Vec<u32>>>;

/// One policy run of a soak: submit the two-tenant stream on the
/// open-loop arrival clock, wait for every admitted request, and collect
/// engine metrics, scheduler accounting, shared-pool occupancy and
/// per-index output bits (`None` for rejected or failed requests).
fn soak_run(
    opts: &SoakBenchOpts,
    policy: WavePolicy,
) -> Result<(SoakRunReport, SoakOutputs), Box<dyn std::error::Error>> {
    let b = &opts.bench;
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        b.grid.frames(),
        b.grid.height(),
        b.grid.width(),
    );
    let source = Arc::new(SyntheticSource::new(model.clone(), 2, b.seed ^ 0xca11b));
    let (w0, w1) = opts.weights;
    let cfg = ServeConfig {
        workers: b.threads,
        queue_capacity: b.queue,
        block_edge: b.block_edge,
        budget: b.budget,
        default_deadline: (b.deadline_ms > 0).then(|| Duration::from_millis(b.deadline_ms)),
        plan_artifact: b.plan.as_ref().map(PathBuf::from),
        tenants: vec![
            TenantClass::new("interactive", w0),
            TenantClass::new("batch", w1),
        ],
        wave_policy: policy,
        ..ServeConfig::default()
    };
    let engine = Engine::new(cfg, model.clone(), source)?;
    let spec = WorkloadSpec {
        model: model.clone(),
        requests: b.requests,
        blocks: b.blocks,
        heads: b.heads,
        seed: b.seed,
    };
    let requests: Vec<paro::serve::ServeRequest> = synthetic_requests(&spec)
        .into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            r.tenant = i % 2;
            r
        })
        .collect();
    let arrivals = open_loop_arrivals(opts.rate, b.requests, b.seed);
    let pool = paro::core::pool::ComputePool::global();
    let before = pool.stats();
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(b.requests);
    for (req, at) in requests.into_iter().zip(&arrivals) {
        // Open loop: hold to the arrival clock even when the engine lags;
        // a full queue becomes a rejection, not backpressure on arrivals.
        if let Some(wait) = at.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        tickets.push(engine.try_submit(req));
    }
    let outputs: SoakOutputs = tickets
        .into_iter()
        .map(|ticket| {
            ticket.ok().and_then(|t| {
                engine.wait(t).ok().map(|resp| {
                    resp.run
                        .output
                        .as_slice()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect()
                })
            })
        })
        .collect();
    let wall = t0.elapsed();
    let busy = pool.stats().busy_fraction_since(&before, wall);
    let snap = engine.metrics_snapshot();
    let stats = engine.graph_stats();
    let tenants: Vec<SoakTenantRow> = snap
        .tenants
        .iter()
        .zip([w0, w1])
        .map(|(t, weight)| SoakTenantRow {
            name: t.name.clone(),
            weight,
            submitted: t.submitted,
            completed: t.completed,
            shed_degraded: t.shed_degraded,
            shed_rejected: t.shed_rejected,
            failed: t.failed,
            mean_ms: t.total.mean_us / 1e3,
            p50_ms: t.total.p50_us as f64 / 1e3,
            p95_ms: t.total.p95_us as f64 / 1e3,
            p99_ms: t.total.p99_us as f64 / 1e3,
        })
        .collect();
    let run = SoakRunReport {
        wave_policy: match policy {
            WavePolicy::Drain => "drain",
            WavePolicy::Continuous => "continuous",
        }
        .to_string(),
        wall_ms: wall.as_secs_f64() * 1e3,
        completed: snap.completed,
        failed: snap.failed,
        rejected: snap.rejected,
        timed_out: snap.timed_out,
        faulted: snap.faulted,
        shed_degraded: tenants.iter().map(|t| t.shed_degraded).sum(),
        shed_rejected: tenants.iter().map(|t| t.shed_rejected).sum(),
        waves: stats.waves,
        dispatched: stats.dispatched,
        pool_busy_fraction: busy,
        total_p50_ms: snap.total.p50_us as f64 / 1e3,
        total_p95_ms: snap.total.p95_us as f64 / 1e3,
        total_p99_ms: snap.total.p99_us as f64 / 1e3,
        tenants,
    };
    engine.shutdown();
    Ok((run, outputs))
}

/// Folds repeated runs of one wave policy into a single report: event
/// counters are summed across repeats, while wall time, busy fractions
/// and latency quantiles are averaged (quantiles of same-shape runs, so
/// the mean is a fair summary rather than a re-estimate).
fn aggregate_runs(runs: Vec<SoakRunReport>) -> SoakRunReport {
    let n = runs.len() as f64;
    let mut iter = runs.into_iter();
    let mut acc = iter.next().expect("at least one run per policy");
    for run in iter {
        acc.wall_ms += run.wall_ms;
        acc.completed += run.completed;
        acc.failed += run.failed;
        acc.rejected += run.rejected;
        acc.timed_out += run.timed_out;
        acc.faulted += run.faulted;
        acc.shed_degraded += run.shed_degraded;
        acc.shed_rejected += run.shed_rejected;
        acc.waves += run.waves;
        acc.dispatched += run.dispatched;
        acc.pool_busy_fraction += run.pool_busy_fraction;
        acc.total_p50_ms += run.total_p50_ms;
        acc.total_p95_ms += run.total_p95_ms;
        acc.total_p99_ms += run.total_p99_ms;
        for (t, other) in acc.tenants.iter_mut().zip(run.tenants) {
            t.submitted += other.submitted;
            t.completed += other.completed;
            t.shed_degraded += other.shed_degraded;
            t.shed_rejected += other.shed_rejected;
            t.failed += other.failed;
            t.mean_ms += other.mean_ms;
            t.p50_ms += other.p50_ms;
            t.p95_ms += other.p95_ms;
            t.p99_ms += other.p99_ms;
        }
    }
    acc.wall_ms /= n;
    acc.pool_busy_fraction /= n;
    acc.total_p50_ms /= n;
    acc.total_p95_ms /= n;
    acc.total_p99_ms /= n;
    for t in &mut acc.tenants {
        t.mean_ms /= n;
        t.p50_ms /= n;
        t.p95_ms /= n;
        t.p99_ms /= n;
    }
    acc
}

fn soak_bench(opts: &SoakBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    let b = &opts.bench;
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        b.grid.frames(),
        b.grid.height(),
        b.grid.width(),
    );
    // What the dispatch simulator expects one full wave of this workload
    // to keep busy under LPT — the yardstick the measured pool busy
    // fractions are read against.
    let cost =
        paro::serve::admission::request_cost(model.grid.len(), model.head_dim(), b.budget, None);
    let predicted =
        paro::sim::dispatch::predicted_wave_occupancy(&vec![cost; b.requests], b.threads);
    // Alternate drain (the old per-request barrier engine) and continuous
    // batching at the same offered rate on the same arrival schedule,
    // `--repeat` times; alternating keeps slow drift (CPU frequency, page
    // cache) from biasing one policy. Every run must produce the same
    // bits for every request index it completed — this pins determinism
    // both across policies and across repeats of the same policy.
    let mut drain_runs = Vec::with_capacity(opts.repeat);
    let mut cont_runs = Vec::with_capacity(opts.repeat);
    let mut reference: SoakOutputs = vec![None; b.requests];
    let mut outputs_bit_identical = true;
    for _ in 0..opts.repeat {
        for policy in [WavePolicy::Drain, WavePolicy::Continuous] {
            let (run, bits) = soak_run(opts, policy)?;
            for (slot, got) in reference.iter_mut().zip(bits) {
                if let Some(got) = got {
                    match slot {
                        Some(want) => outputs_bit_identical &= *want == got,
                        None => *slot = Some(got),
                    }
                }
            }
            match policy {
                WavePolicy::Drain => drain_runs.push(run),
                WavePolicy::Continuous => cont_runs.push(run),
            }
        }
    }
    let drain = aggregate_runs(drain_runs);
    let continuous = aggregate_runs(cont_runs);
    let occupancy_gain = continuous.pool_busy_fraction - drain.pool_busy_fraction;
    let p99_speedup = if continuous.total_p99_ms > 0.0 && drain.total_p99_ms > 0.0 {
        drain.total_p99_ms / continuous.total_p99_ms
    } else {
        0.0
    };
    let report = SoakBenchReport {
        model: model.name.clone(),
        tokens: model.grid.len(),
        head_dim: model.head_dim(),
        threads: b.threads,
        queue_capacity: b.queue,
        requests: b.requests,
        rate_per_sec: opts.rate,
        seed: b.seed,
        repeat: opts.repeat,
        predicted_wave_occupancy: predicted,
        drain,
        continuous,
        occupancy_gain,
        p99_speedup,
        outputs_bit_identical,
    };
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &b.out {
        write_output(path, json.as_bytes())?;
    }
    println!("{json}");
    eprintln!(
        "soak @ {:.0} req/s x{}: occupancy {:.2} -> {:.2} ({:+.2}), \
         aggregate p99 {:.1} ms -> {:.1} ms ({:.2}x), outputs bit-identical: {}",
        report.rate_per_sec,
        report.requests,
        report.drain.pool_busy_fraction,
        report.continuous.pool_busy_fraction,
        report.occupancy_gain,
        report.drain.total_p99_ms,
        report.continuous.total_p99_ms,
        report.p99_speedup,
        report.outputs_bit_identical,
    );
    if !report.outputs_bit_identical {
        return Err("soak runs diverged: the wave policy changed request outputs".into());
    }
    Ok(())
}

/// Fast-reacting watchdog for the drift bench: sample every request,
/// per-head baselines over three samples, and thresholds sitting between
/// the measured in-phase deviation (~0.01) and the cross-phase shift
/// (~0.08) of the synthetic pattern families (docs/LIFECYCLE.md).
fn drift_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        sample_every: 1,
        baseline_samples: 3,
        ewma_alpha: 0.5,
        suspect_threshold: 0.04,
        stale_threshold: 0.08,
        hysteresis: 2,
    }
}

/// Builds a watchdog-armed engine over a rotating-phase calibration
/// source. Recalibration stays manual (`Off`) so the bench controls the
/// swap point deterministically.
fn drift_engine(
    b: &ServeBenchOpts,
    model: &ModelConfig,
    watchdog: Option<WatchdogConfig>,
) -> Result<(Engine, Arc<DriftSource>), Box<dyn std::error::Error>> {
    let source = Arc::new(DriftSource::new(model.clone(), 1, b.seed ^ 0xd21f7));
    let cfg = ServeConfig {
        workers: b.threads,
        queue_capacity: b.queue,
        block_edge: b.block_edge,
        budget: b.budget,
        watchdog,
        recalibration: RecalibrationPolicy::Off,
        ..ServeConfig::default()
    };
    let engine = Engine::new(
        cfg,
        model.clone(),
        Arc::clone(&source) as Arc<dyn CalibrationSource>,
    )?;
    Ok((engine, source))
}

/// One batch of the drift workload at the given pattern-rotation phase.
fn drift_requests(
    b: &ServeBenchOpts,
    model: &ModelConfig,
    requests: usize,
    phase: usize,
) -> Vec<paro::serve::ServeRequest> {
    synthetic_requests_at_phase(
        &WorkloadSpec {
            model: model.clone(),
            requests,
            blocks: b.blocks,
            heads: b.heads,
            seed: b.seed,
        },
        phase,
    )
}

/// Proves hot-swap atomicity on a dedicated engine pair: requests parked
/// in the queue across a recalibration swap must produce outputs
/// bit-identical to a never-swapped engine, and admissions after the
/// swap must pin the new epoch.
fn swap_identity_check(
    b: &ServeBenchOpts,
    model: &ModelConfig,
) -> Result<bool, Box<dyn std::error::Error>> {
    let n = b.requests.clamp(2, 8);
    // The warm batch must cover every (block, head) pair the parked
    // batch will hit: a pair missing from the epoch-0 cache would be
    // recalibrated from the live — already rotated — source, which is a
    // legitimate output difference, not a swap-atomicity violation.
    let warm = b.blocks * b.heads;
    // Baseline: same warmup + batch on an engine that never swaps.
    let (baseline, _) = drift_engine(b, model, None)?;
    baseline.run_batch(drift_requests(b, model, warm, 0));
    let expected = batch_output_bits(&baseline.run_batch(drift_requests(b, model, n, 0)))
        .ok_or("swap-identity baseline batch failed")?;
    baseline.shutdown();
    let (engine, source) = drift_engine(b, model, None)?;
    // Warm the epoch-0 cache so the swap has a full generation to
    // replace.
    engine.run_batch(drift_requests(b, model, warm, 0));
    // Park the batch in the queue, then swap underneath it.
    engine.pause();
    let tickets = drift_requests(b, model, n, 0)
        .into_iter()
        .map(|r| engine.try_submit(r))
        .collect::<Result<Vec<_>, _>>()?;
    source.set_phase(1);
    let new_epoch = engine.recalibrate()?;
    engine.resume();
    let mut identical = true;
    for (ticket, want) in tickets.into_iter().zip(&expected) {
        let resp = engine.wait(ticket)?;
        let got: Vec<u32> = resp
            .run
            .output
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        identical &= resp.epoch + 1 == new_epoch && &got == want;
    }
    let post = engine.run_batch(drift_requests(b, model, 2, 0));
    for r in &post.responses {
        identical &= r.as_ref().map(|r| r.epoch == new_epoch).unwrap_or(false);
    }
    engine.shutdown();
    Ok(identical)
}

/// Times steady-state `Watchdog::observe` calls on an established
/// baseline: the per-request cost of arming the watchdog.
fn measure_watchdog_overhead_ns() -> f64 {
    let cfg = drift_watchdog();
    let baseline_samples = cfg.baseline_samples;
    let wd = Watchdog::new(cfg);
    for _ in 0..=baseline_samples {
        for key in 0..4usize {
            wd.observe((key, 0), 0.2);
        }
    }
    let iters = 100_000u32;
    let t0 = Instant::now();
    for i in 0..iters {
        std::hint::black_box(wd.observe(((i % 4) as usize, 0), 0.2));
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn drift_bench(opts: &DriftBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    let b = &opts.bench;
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        b.grid.frames(),
        b.grid.height(),
        b.grid.width(),
    );
    let swap_bit_identical = swap_identity_check(b, &model)?;
    // The lifecycle loop: warm at phase 0, rotate the request stream's
    // pattern families (drift), detect, recalibrate, recover.
    let (engine, source) = drift_engine(b, &model, Some(drift_watchdog()))?;
    let t0 = Instant::now();
    for _ in 0..opts.warmup {
        let out = engine.run_batch(drift_requests(b, &model, b.requests, 0));
        if out.completed() != b.requests {
            return Err("drift-bench warmup batch failed".into());
        }
    }
    let fresh_ewma = engine.watchdog_stats().map_or(0.0, |s| s.ewma_deviation);
    let mut detected_after_batches = None;
    for batch in 0..opts.detect_within {
        engine.run_batch(drift_requests(b, &model, b.requests, 1));
        if engine.plan_health() == Some(PlanHealth::Stale) {
            detected_after_batches = Some(batch + 1);
            break;
        }
    }
    let detected_within_bound = detected_after_batches.is_some();
    let drift_ewma = engine.watchdog_stats().map_or(0.0, |s| s.ewma_deviation);
    let epoch_before = engine.current_epoch();
    let mut recalibrated = false;
    let mut epoch_after = epoch_before;
    let mut recovered = false;
    let mut recovered_ewma = drift_ewma;
    if detected_within_bound {
        // Recalibrate against the now-drifted source and verify recovery
        // at the new epoch.
        source.set_phase(1);
        match engine.recalibrate() {
            Ok(epoch) => {
                recalibrated = true;
                epoch_after = epoch;
                recovered = true;
                for _ in 0..opts.post {
                    let out = engine.run_batch(drift_requests(b, &model, b.requests, 1));
                    recovered &= out.completed() == b.requests
                        && out.responses.iter().all(|r| {
                            r.as_ref()
                                .map(|r| !r.stale_plan && r.epoch == epoch)
                                .unwrap_or(false)
                        });
                }
                recovered &= engine.plan_health() == Some(PlanHealth::Fresh);
                recovered_ewma = engine
                    .watchdog_stats()
                    .map_or(f64::INFINITY, |s| s.ewma_deviation);
                // The fresh band uses the same margin the lifecycle
                // contract test pins.
                recovered &= recovered_ewma < fresh_ewma + 0.04;
            }
            Err(e) => eprintln!("drift-bench recalibration failed: {e}"),
        }
    }
    let wall = t0.elapsed();
    let snap = engine.metrics_snapshot();
    engine.shutdown();
    let passed = detected_within_bound && recalibrated && recovered && swap_bit_identical;
    let report = DriftBenchReport {
        model: model.name.clone(),
        tokens: model.grid.len(),
        threads: b.threads,
        requests_per_batch: b.requests,
        blocks: b.blocks,
        heads: b.heads,
        seed: b.seed,
        warmup_batches: opts.warmup,
        detect_bound_batches: opts.detect_within,
        post_batches: opts.post,
        wall_ms: wall.as_secs_f64() * 1e3,
        detected_after_batches,
        detected_within_bound,
        recalibrated,
        recovered,
        swap_bit_identical,
        passed,
        epoch_before,
        epoch_after,
        fresh_ewma,
        drift_ewma,
        recovered_ewma,
        stale_detected: snap.stale_detected,
        recalibrations: snap.recalibrations,
        recalib_failed: snap.recalib_failed,
        stale_served: snap.stale_served,
        watchdog_observe_ns: measure_watchdog_overhead_ns(),
    };
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &b.out {
        write_output(path, json.as_bytes())?;
    }
    println!("{json}");
    eprintln!(
        "drift: detected in {} batch(es) (bound {}), epoch {} -> {}, \
         ewma {:.4} -> {:.4} -> {:.4}, stale_served {}, \
         swap bit-identical: {}, watchdog observe {:.0} ns",
        detected_after_batches.map_or_else(|| "∞".to_string(), |n| n.to_string()),
        opts.detect_within,
        epoch_before,
        epoch_after,
        fresh_ewma,
        drift_ewma,
        recovered_ewma,
        snap.stale_served,
        swap_bit_identical,
        report.watchdog_observe_ns,
    );
    if !passed {
        return Err(format!(
            "drift lifecycle gate failed: detected_within_bound={detected_within_bound} \
             recalibrated={recalibrated} recovered={recovered} \
             swap_bit_identical={swap_bit_identical}"
        )
        .into());
    }
    Ok(())
}

/// Per-stage medians and `AttnV` throughput of one timed perf-bench pass.
#[derive(Clone)]
struct PerfPass {
    stages: Vec<PerfStageRow>,
    attn_v: AttnVThroughput,
}

/// Runs the single-head packed-integer pipeline `iters` times under a
/// trace session, optionally with the kernel dispatch forced, and derives
/// per-stage medians plus `attnv.mac` throughput. The forced dispatch is
/// always restored before returning.
fn perf_pass(
    inputs: &AttentionInputs,
    cal: &HeadCalibration,
    output_aware: bool,
    iters: usize,
    force: Option<kernel::Kernel>,
) -> Result<PerfPass, Box<dyn std::error::Error>> {
    kernel::force(force);
    let timed = (|| {
        // Warm once so one-time costs (page faults, lazy init) stay out
        // of the medians, and keep the run's MAC/byte accounting.
        let stats = run_attention_calibrated_int(inputs, cal, output_aware)?.stats;
        let session = paro::trace::TraceSession::start();
        record_kernel_dispatch();
        let t0 = Instant::now();
        for _ in 0..iters {
            run_attention_calibrated_int(inputs, cal, output_aware)?;
        }
        let wall = t0.elapsed();
        Ok::<_, Box<dyn std::error::Error>>((stats, session.finish(), wall))
    })();
    kernel::force(None);
    let (stats, trace, wall) = timed?;
    let summary = trace.summary();
    let stages: Vec<PerfStageRow> = summary
        .iter()
        .map(|s| PerfStageRow {
            stage: s.stage.to_string(),
            count: s.count,
            p50_us: s.p50_ns as f64 / 1e3,
        })
        .collect();
    // `attnv.mac` records one span per non-zero block, so throughput
    // comes from the stage's total kernel time per pipeline pass; the
    // median is the per-block duration.
    let mac = summary
        .iter()
        .find(|s| s.stage == paro::trace::stage::ATTNV_MAC)
        .ok_or("no attnv.mac spans recorded; perf-bench needs tracing compiled in")?;
    let mac_p50_us = mac.p50_ns as f64 / 1e3;
    let mac_secs = mac.total_ns as f64 * 1e-9 / iters as f64;
    Ok(PerfPass {
        stages,
        attn_v: AttnVThroughput {
            kernel: stats.kernel.to_string(),
            ms_per_head: wall.as_secs_f64() * 1e3 / iters as f64,
            mac_p50_us,
            macs_per_sec: if mac_secs > 0.0 {
                stats.executed_macs as f64 / mac_secs
            } else {
                0.0
            },
            packed_map_gb_per_sec: if mac_secs > 0.0 {
                stats.packed_map_bytes as f64 / mac_secs / 1e9
            } else {
                0.0
            },
        },
    })
}

fn perf_bench(opts: &PerfBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    if !paro::trace::COMPILED_IN {
        return Err("this binary was built without tracing (the paro crate's \
                    `trace` feature); perf-bench needs span medians — rebuild \
                    with default features"
            .into());
    }
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        opts.grid.frames(),
        opts.grid.height(),
        opts.grid.width(),
    );
    let defaults = paro::serve::ServeConfig::default();
    let source = SyntheticSource::new(model.clone(), 2, opts.seed ^ 0xca11b);
    let spec = PatternSpec::for_head(&model.grid, 0, 0);
    let head = synthesize_head(&model.grid, model.head_dim(), &spec, opts.seed);
    let inputs = AttentionInputs::new(head.q, head.k, head.v, model.grid)?;
    let maps = source.calibration_maps(0, 0)?;
    let cal = calibrate_head(
        &maps,
        &model.grid,
        BlockGrid::square(opts.block_edge)?,
        defaults.calib_bits,
        opts.budget,
        defaults.alpha,
    )?;
    let dispatch = kernel::active();
    // Bench the output-aware (LDZ) `QKᵀ` regardless of the serving
    // default: it is the paper's headline datapath and the stage set the
    // committed baseline gates on (`qkt.ldz`, `qkt.mac`,
    // `pipeline.quantize_v` only exist on this path).
    let output_aware = true;
    let dispatched = perf_pass(&inputs, &cal, output_aware, opts.iters, None)?;
    // The scalar reference runs in the same process and binary; when the
    // dispatch already resolved to scalar it IS the reference.
    let scalar = if dispatch.kernel == kernel::Kernel::Scalar {
        dispatched.clone()
    } else {
        perf_pass(
            &inputs,
            &cal,
            output_aware,
            opts.iters,
            Some(kernel::Kernel::Scalar),
        )?
    };
    let speedup = if scalar.attn_v.macs_per_sec > 0.0 {
        dispatched.attn_v.macs_per_sec / scalar.attn_v.macs_per_sec
    } else {
        0.0
    };
    let report = PerfBenchReport {
        label: opts.label.clone(),
        model: model.name.clone(),
        tokens: model.grid.len(),
        head_dim: model.head_dim(),
        iters: opts.iters,
        kernel: dispatch.kernel.as_str().to_string(),
        kernel_forced: dispatch.forced,
        pool_threads: paro::core::pool::ComputePool::global().threads(),
        trace_compiled_in: paro::trace::COMPILED_IN,
        stages: dispatched.stages,
        attn_v: dispatched.attn_v,
        scalar_attn_v: scalar.attn_v,
        attn_v_speedup_vs_scalar: speedup,
    };
    let json = serde_json::to_string_pretty(&report)?;
    write_output(&opts.out, json.as_bytes())?;
    println!("{json}");
    eprintln!(
        "packed AttnV: {} {:.3e} MACs/s ({:.2} GB/s packed map) vs scalar \
         {:.3e} MACs/s — {:.2}x; report -> {}",
        report.kernel,
        report.attn_v.macs_per_sec,
        report.attn_v.packed_map_gb_per_sec,
        report.scalar_attn_v.macs_per_sec,
        report.attn_v_speedup_vs_scalar,
        opts.out,
    );
    if let Some(path) = &opts.compare {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline: PerfBenchReport =
            serde_json::from_str(&text).map_err(|e| format!("baseline {path} malformed: {e}"))?;
        let rows = diff_stage_medians(&baseline.stages, &report.stages, opts.tolerance);
        // A baseline stage the candidate no longer measures means the
        // gate would silently stop watching it (renamed stage, dead code
        // path, tracing regression) — fail loudly with the name diff
        // instead of passing on the stages that remain.
        let missing = missing_baseline_stages(&baseline.stages, &report.stages);
        if !missing.is_empty() {
            eprint!("{}", format_diff_table(&rows));
            return Err(format!(
                "baseline stage(s) missing from candidate report: {}; \
                 candidate measured: {}. Refresh {} if the stage set \
                 changed intentionally.",
                missing.join(", "),
                report
                    .stages
                    .iter()
                    .map(|r| r.stage.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                path,
            )
            .into());
        }
        eprintln!(
            "\nper-stage medians vs {} (baseline kernel {}, current {}, \
             tolerance {}%):",
            path, baseline.kernel, report.kernel, opts.tolerance
        );
        eprint!("{}", format_diff_table(&rows));
        let regressed: Vec<&str> = rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.stage.as_str())
            .collect();
        if !regressed.is_empty() {
            return Err(format!(
                "per-stage median regression above {}%: {}",
                opts.tolerance,
                regressed.join(", ")
            )
            .into());
        }
        eprintln!("no gated stage regressed");
    }
    Ok(())
}

/// One shard-bench run: the workload at a fixed shard count under a trace
/// session, returning the batch outputs, the wall clock, the metrics
/// snapshot, the placement's planned imbalance and the recorded spans.
struct ShardRun {
    bits: Vec<Vec<u32>>,
    wall_ms: f64,
    snap: paro::serve::MetricsSnapshot,
    planned_imbalance_pct: f64,
    records: Vec<paro::trace::SpanRecord>,
}

fn shard_run(b: &ServeBenchOpts, shards: usize) -> Result<ShardRun, Box<dyn std::error::Error>> {
    let wl = build_workload(b, shards)?;
    let requests = synthetic_requests(&wl.spec);
    let session = paro::trace::TraceSession::start();
    record_kernel_dispatch();
    let t0 = Instant::now();
    let outcome = wl.engine.run_batch(requests);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Joining the workers orders the final pool spans before the snapshot.
    wl.engine.shutdown();
    let trace = session.finish();
    let bits = batch_output_bits(&outcome)
        .ok_or_else(|| format!("shard-bench batch failed at {shards} shard(s)"))?;
    Ok(ShardRun {
        bits,
        wall_ms,
        snap: wl.engine.metrics_snapshot(),
        planned_imbalance_pct: wl.engine.shard_set().planned_imbalance_pct(),
        records: trace.records,
    })
}

fn shard_bench(opts: &ShardBenchOpts) -> Result<(), Box<dyn std::error::Error>> {
    let b = &opts.bench;
    let model = scaled_config(
        &ModelConfig::cogvideox_2b(),
        b.grid.frames(),
        b.grid.height(),
        b.grid.width(),
    );
    let spec = WorkloadSpec {
        model: model.clone(),
        requests: b.requests,
        blocks: b.blocks,
        heads: b.heads,
        seed: b.seed,
    };
    // Roofline prediction at head-group granularity: request r hits pair
    // r % distinct_heads, so a group's load is its request count times the
    // uniform per-request cost — the same costs the placement packs when
    // no artifact is loaded.
    let pairs = spec.distinct_heads();
    let cost =
        paro::serve::admission::request_cost(model.grid.len(), model.head_dim(), b.budget, None);
    let head_costs: Vec<f64> = (0..pairs)
        .map(|p| cost * (b.requests / pairs + usize::from(p < b.requests % pairs)) as f64)
        .collect();
    let curve = paro::sim::dispatch::predicted_shard_scaling(&head_costs, opts.shards);
    let mut baseline: Option<ShardRun> = None;
    let mut scaling = Vec::with_capacity(opts.shards);
    let mut shard_spans = Vec::new();
    let mut bit_identical = true;
    let mut measured_imbalance_pct = 0.0;
    for k in 1..=opts.shards {
        let run = shard_run(b, k)?;
        let identical = baseline.as_ref().is_none_or(|base| base.bits == run.bits);
        bit_identical &= identical;
        let base_wall = baseline.as_ref().map_or(run.wall_ms, |base| base.wall_ms);
        measured_imbalance_pct = run.snap.shard_imbalance_pct;
        scaling.push(ShardScaleRow {
            shards: k,
            wall_ms: run.wall_ms,
            speedup: if run.wall_ms > 0.0 {
                base_wall / run.wall_ms
            } else {
                0.0
            },
            predicted_speedup: curve[k - 1].predicted_speedup,
            predicted_imbalance_pct: curve[k - 1].predicted_imbalance_pct,
            planned_imbalance_pct: run.planned_imbalance_pct,
            measured_imbalance_pct: run.snap.shard_imbalance_pct,
            bit_identical: identical,
        });
        if k == opts.shards {
            // Per-shard pool.execute skew from the span detail tags.
            let by_detail = paro::trace::summarize_stage_by_detail(
                &run.records,
                paro::trace::stage::POOL_EXECUTE,
            );
            shard_spans = run
                .snap
                .shards
                .iter()
                .map(|row| {
                    let s = by_detail.iter().find(|d| d.detail == row.label);
                    ShardSpanRow {
                        shard: row.shard,
                        label: row.label.clone(),
                        threads: row.threads,
                        executed_jobs: row.executed_jobs,
                        spans: s.map_or(0, |s| s.summary.count),
                        total_us: s.map_or(0.0, |s| s.summary.total_ns as f64 / 1e3),
                        p50_us: s.map_or(0.0, |s| s.summary.p50_ns as f64 / 1e3),
                        p95_us: s.map_or(0.0, |s| s.summary.p95_ns as f64 / 1e3),
                    }
                })
                .collect();
        }
        if baseline.is_none() {
            baseline = Some(run);
        }
    }
    let passed = bit_identical && measured_imbalance_pct <= opts.max_imbalance_pct;
    let report = ShardBenchReport {
        model: model.name.clone(),
        tokens: model.grid.len(),
        head_dim: model.head_dim(),
        threads: b.threads,
        pool_threads: paro::core::pool::ComputePool::global().threads(),
        requests: b.requests,
        distinct_heads: pairs,
        shards: opts.shards,
        max_imbalance_pct: opts.max_imbalance_pct,
        bit_identical,
        measured_imbalance_pct,
        passed,
        scaling,
        shard_spans,
    };
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &b.out {
        write_output(path, json.as_bytes())?;
    }
    println!("{json}");
    eprintln!(
        "shards 1..={}: speedup {:.2}x (predicted {:.2}x), imbalance \
         measured {:.1}% / planned {:.1}% / bound {:.0}%, bit-identical: {}",
        opts.shards,
        report.scaling.last().map_or(1.0, |r| r.speedup),
        report.scaling.last().map_or(1.0, |r| r.predicted_speedup),
        measured_imbalance_pct,
        report
            .scaling
            .last()
            .map_or(0.0, |r| r.planned_imbalance_pct),
        opts.max_imbalance_pct,
        bit_identical,
    );
    if !passed {
        return Err(format!(
            "shard gate failed: bit_identical={bit_identical}, measured \
             imbalance {measured_imbalance_pct:.1}% vs bound {:.0}%",
            opts.max_imbalance_pct
        )
        .into());
    }
    Ok(())
}

fn trace_workload(opts: &TraceOpts) -> Result<(), Box<dyn std::error::Error>> {
    if !paro::trace::COMPILED_IN {
        return Err("this binary was built without tracing (the paro crate's \
                    `trace` feature); rebuild with default features to record"
            .into());
    }
    let wl = build_workload(&opts.bench, 1)?;
    let requests = synthetic_requests(&wl.spec);
    let session = paro::trace::TraceSession::start();
    record_kernel_dispatch();
    let t0 = Instant::now();
    let outcome = wl.engine.run_batch(requests);
    let wall = t0.elapsed();
    // Joining the workers orders the final wave-close span (recorded
    // after the last response is delivered) before the session snapshot.
    wl.engine.shutdown();
    let trace = session.finish();
    write_output(&opts.out, trace.chrome_json().as_bytes())?;
    println!(
        "{} requests ({} ok, {} failed) on {} threads in {:.1} ms — {} spans -> {}",
        opts.bench.requests,
        outcome.completed(),
        outcome.failed(),
        opts.bench.threads,
        wall.as_secs_f64() * 1e3,
        trace.records.len(),
        opts.out,
    );
    if trace.dropped > 0 {
        println!("warning: {} spans dropped (buffer cap)", trace.dropped);
    }
    println!("\nper-stage summary (all requests):");
    print!("{}", paro::trace::format_table(&trace.summary()));

    // Per-head breakdown: the workload maps request r to (block, head)
    // pair r % distinct_heads, and every span carries the request index as
    // its correlation context.
    let pairs = wl.spec.distinct_heads();
    let heads = opts.bench.heads.min(wl.model.heads);
    for pair in 0..pairs {
        let records: Vec<paro::trace::SpanRecord> = trace
            .records
            .iter()
            .filter(|r| r.ctx != paro::trace::NO_CTX && (r.ctx as usize) % pairs == pair)
            .copied()
            .collect();
        if records.is_empty() {
            continue;
        }
        println!(
            "\nper-stage summary (block {}, head {}):",
            pair / heads,
            pair % heads
        );
        print!(
            "{}",
            paro::trace::format_table(&paro::trace::summarize(&records))
        );
    }
    Ok(())
}
