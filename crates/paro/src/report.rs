//! Machine-readable report types the `paro` binary prints as JSON.
//!
//! These structs define the telemetry contract documented in
//! `docs/TELEMETRY.md`: every field serialized here must appear in that
//! document (a unit test in `tests/telemetry_contract.rs` diffs the two),
//! so renaming or adding a field is a documented, reviewable change.

use paro_serve::MetricsSnapshot;
use serde::Serialize;

/// Top-level JSON report `paro serve-bench` prints to stdout: the
/// workload/engine configuration, the run's wall-clock throughput, the
/// per-stage trace summary, and the engine's full metrics snapshot.
/// Serves as a machine-readable baseline for serving-performance
/// regressions.
#[derive(Debug, Serialize)]
pub struct ServeBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Distinct `(block, head)` pairs the stream cycles through.
    pub distinct_heads: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests that failed (deadline miss, pipeline error).
    pub failed: usize,
    /// Wall-clock time of the batch, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Whether span recording is compiled into this binary
    /// (`paro-trace/enabled`); when `false`, `trace_stages` is empty.
    pub trace_compiled_in: bool,
    /// Per-stage span aggregates recorded during the batch, largest total
    /// first. Empty when tracing is compiled out.
    pub trace_stages: Vec<StageSummaryRow>,
    /// Single-head microbench of the packed-integer path.
    pub int_path: IntPathComparison,
    /// The engine's full metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// Single-head microbench comparing the packed-integer execution path
/// (what the engine serves) against the fake-quant f32 reference on the
/// same frozen calibration, plus the packed-byte traffic one request
/// moves. Part of the serve-bench JSON baseline.
#[derive(Debug, Serialize)]
pub struct IntPathComparison {
    /// Timing iterations per path.
    pub iters: usize,
    /// Packed-integer path, milliseconds per head.
    pub int_ms_per_head: f64,
    /// Fake-quant f32 reference path, milliseconds per head.
    pub f32_ms_per_head: f64,
    /// `f32_ms_per_head / int_ms_per_head`.
    pub int_over_f32_speedup: f64,
    /// Packed attention-map bytes one request reads.
    pub packed_map_bytes_per_head: u64,
    /// Packed `V` bytes one request reads.
    pub packed_v_bytes_per_head: u64,
    /// Fraction of dense `AttnV` MACs skipped via 0-bit blocks.
    pub macs_skipped_fraction: f64,
}

/// Top-level JSON report `paro chaos-bench` prints to stdout: which
/// faults were armed and fired, what the chaos batch resolved to, and
/// whether a clean batch run on the same engine afterwards reproduced the
/// never-faulted baseline bit for bit.
#[derive(Debug, Serialize)]
pub struct ChaosBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Requests per batch (baseline, chaos and clean batches alike).
    pub requests: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Whether fault injection is compiled into this binary
    /// (`paro-failpoint/enabled`); when `false`, nothing fires and the
    /// run degenerates to a clean-vs-clean determinism check.
    pub failpoints_compiled_in: bool,
    /// The faults armed for the chaos batch, with their fire counts.
    pub injected: Vec<InjectedFaultRow>,
    /// Chaos-batch requests that resolved `Ok`.
    pub chaos_completed: usize,
    /// Chaos-batch requests that resolved to a typed error. Every request
    /// resolves one way or the other — a hang is a chaos-bench failure.
    pub chaos_failed: usize,
    /// Clean-batch (post-reset, same engine) requests that resolved `Ok`.
    pub clean_completed: usize,
    /// Whether the clean batch's outputs matched the never-faulted
    /// baseline engine bit for bit.
    pub clean_bit_identical: bool,
    /// Engine metric: requests that faulted (panics, injected faults)
    /// without recovering.
    pub faulted: u64,
    /// Engine metric: retry attempts made after transient faults.
    pub retried: u64,
    /// Engine metric: requests served on the degraded f32 fallback.
    pub degraded: u64,
    /// Engine metric: requests cancelled mid-pipeline by their deadline.
    pub timed_out: u64,
    /// Wall-clock time of the whole run (all three batches), ms.
    pub wall_ms: f64,
}

/// One armed fault site in the chaos-bench report.
#[derive(Debug, Clone, Serialize)]
pub struct InjectedFaultRow {
    /// The failpoint site name (see `paro_failpoint::site`).
    pub site: String,
    /// Fault kind: `panic`, `error` or `delay`.
    pub kind: String,
    /// Site calls skipped before the fault window opens.
    pub skip: u64,
    /// Faults injected once the window opens.
    pub times: u64,
    /// How often the site actually fired during the chaos batch.
    pub fired: u64,
}

/// One row of a per-stage trace summary, in microseconds — the JSON form
/// of [`paro_trace::StageSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct StageSummaryRow {
    /// Stage name (see `paro_trace::stage` for the canonical set).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: f64,
    /// Median span duration, microseconds.
    pub p50_us: f64,
    /// 95th-percentile span duration, microseconds.
    pub p95_us: f64,
    /// Longest span duration, microseconds.
    pub max_us: f64,
}

impl From<&paro_trace::StageSummary> for StageSummaryRow {
    fn from(s: &paro_trace::StageSummary) -> Self {
        StageSummaryRow {
            stage: s.stage.to_string(),
            count: s.count,
            total_us: s.total_ns as f64 / 1e3,
            p50_us: s.p50_ns as f64 / 1e3,
            p95_us: s.p95_ns as f64 / 1e3,
            max_us: s.max_ns as f64 / 1e3,
        }
    }
}

/// Converts a trace's per-stage summaries into JSON rows.
pub fn stage_rows(summaries: &[paro_trace::StageSummary]) -> Vec<StageSummaryRow> {
    summaries.iter().map(StageSummaryRow::from).collect()
}
