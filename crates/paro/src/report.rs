//! Machine-readable report types the `paro` binary prints as JSON.
//!
//! These structs define the telemetry contract documented in
//! `docs/TELEMETRY.md`: every field serialized here must appear in that
//! document (a unit test in `tests/telemetry_contract.rs` diffs the two),
//! so renaming or adding a field is a documented, reviewable change.

use paro_serve::MetricsSnapshot;
use paro_sim::tune::RooflineModel;
use serde::{Deserialize, Serialize};

/// Top-level JSON report `paro serve-bench` prints to stdout: the
/// workload/engine configuration, the run's wall-clock throughput, the
/// per-stage trace summary, and the engine's full metrics snapshot.
/// Serves as a machine-readable baseline for serving-performance
/// regressions.
#[derive(Debug, Serialize)]
pub struct ServeBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Distinct `(block, head)` pairs the stream cycles through.
    pub distinct_heads: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests that failed (deadline miss, pipeline error).
    pub failed: usize,
    /// Wall-clock time of the batch, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Whether span recording is compiled into this binary
    /// (`paro-trace/enabled`); when `false`, `trace_stages` is empty.
    pub trace_compiled_in: bool,
    /// Per-stage span aggregates recorded during the batch, largest total
    /// first. Empty when tracing is compiled out.
    pub trace_stages: Vec<StageSummaryRow>,
    /// Single-head microbench of the packed-integer path.
    pub int_path: IntPathComparison,
    /// The engine's full metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// Single-head microbench comparing the packed-integer execution path
/// (what the engine serves) against the fake-quant f32 reference on the
/// same frozen calibration, plus the packed-byte traffic one request
/// moves. Part of the serve-bench JSON baseline.
#[derive(Debug, Serialize)]
pub struct IntPathComparison {
    /// Timing iterations per path.
    pub iters: usize,
    /// Packed-integer path, milliseconds per head.
    pub int_ms_per_head: f64,
    /// Fake-quant f32 reference path, milliseconds per head.
    pub f32_ms_per_head: f64,
    /// `f32_ms_per_head / int_ms_per_head`.
    pub int_over_f32_speedup: f64,
    /// Packed attention-map bytes one request reads.
    pub packed_map_bytes_per_head: u64,
    /// Packed `V` bytes one request reads.
    pub packed_v_bytes_per_head: u64,
    /// Fraction of dense `AttnV` MACs skipped via 0-bit blocks.
    pub macs_skipped_fraction: f64,
    /// Stable name of the micro-kernel that executed the `AttnV` MACs
    /// (`scalar`, `sse4.1` or `avx2`; see `paro_tensor::kernel`).
    pub kernel: String,
}

/// Top-level JSON report `paro soak-bench` prints to stdout: a
/// two-tenant open-loop (Poisson-arrival) soak driven against the same
/// synthetic workload under both wave policies at the same offered rate —
/// `drain` emulating the old per-request barrier engine, `continuous` the
/// work graph's continuous batching — plus the headline comparisons the
/// scheduling contract (docs/SCHEDULING.md) promises: higher pool
/// occupancy and lower aggregate p99 under continuous batching, with
/// outputs bit-identical across policies.
#[derive(Debug, Serialize)]
pub struct SoakBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Requests in the open-loop arrival schedule (per policy run).
    pub requests: usize,
    /// Offered arrival rate, requests per second (`--rate`).
    pub rate_per_sec: f64,
    /// RNG seed for both the workload and the arrival schedule.
    pub seed: u64,
    /// Alternating drain/continuous run pairs aggregated into this report
    /// (`--repeat`): counters are summed, fractions and quantiles averaged.
    pub repeat: usize,
    /// Simulator-predicted worker occupancy of one wave of this workload
    /// under LPT dispatch (`paro_sim::dispatch::predicted_wave_occupancy`).
    pub predicted_wave_occupancy: f64,
    /// The run under `WavePolicy::Drain` (per-request barrier emulation).
    pub drain: SoakRunReport,
    /// The run under `WavePolicy::Continuous` (head-granular backfill).
    pub continuous: SoakRunReport,
    /// `continuous.pool_busy_fraction - drain.pool_busy_fraction`: how
    /// much idle worker time continuous batching reclaimed.
    pub occupancy_gain: f64,
    /// `drain.total_p99_ms / continuous.total_p99_ms` (0 when either side
    /// recorded no completions) — above 1.0 means continuous batching cut
    /// tail latency at the same offered rate.
    pub p99_speedup: f64,
    /// Whether every request index completed by both policy runs produced
    /// bit-identical output tensors.
    pub outputs_bit_identical: bool,
}

/// One policy run of a soak-bench: counters from the engine's metrics,
/// scheduler accounting from the work graph, measured compute-pool
/// occupancy, and flattened aggregate latency quantiles.
#[derive(Debug, Serialize)]
pub struct SoakRunReport {
    /// Wave policy of this run: `continuous` or `drain`.
    pub wave_policy: String,
    /// Wall-clock time from first submission to last completion, ms.
    pub wall_ms: f64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (fault, deadline, pipeline error).
    pub failed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests cancelled mid-pipeline by their deadline.
    pub timed_out: u64,
    /// Requests that faulted without recovering.
    pub faulted: u64,
    /// Requests admitted degraded to a coarse shed budget.
    pub shed_degraded: u64,
    /// Requests rejected by the shedding ladder.
    pub shed_rejected: u64,
    /// Scheduler waves the run closed (busy periods under `continuous`,
    /// barriers under `drain`).
    pub waves: u64,
    /// Head tasks the work graph dispatched to workers.
    pub dispatched: u64,
    /// Fraction of worker-thread time the shared compute pool spent
    /// executing jobs over the run's wall clock (`pool.execute` busy
    /// fraction, 0..=1).
    pub pool_busy_fraction: f64,
    /// Aggregate end-to-end p50 latency across tenants, ms.
    pub total_p50_ms: f64,
    /// Aggregate end-to-end p95 latency across tenants, ms.
    pub total_p95_ms: f64,
    /// Aggregate end-to-end p99 latency across tenants, ms.
    pub total_p99_ms: f64,
    /// Per-tenant outcome rows, one per configured tenant class.
    pub tenants: Vec<SoakTenantRow>,
}

/// One tenant's outcome in a soak-bench policy run.
#[derive(Debug, Serialize)]
pub struct SoakTenantRow {
    /// The tenant class name.
    pub name: String,
    /// The tenant's weighted-fair-queuing weight.
    pub weight: f64,
    /// Requests accepted into the work graph.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests admitted degraded to the tenant's shed budget.
    pub shed_degraded: u64,
    /// Requests rejected by the shedding ladder.
    pub shed_rejected: u64,
    /// Requests that failed for any non-shed reason.
    pub failed: u64,
    /// This tenant's mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// This tenant's end-to-end p50 latency, ms.
    pub p50_ms: f64,
    /// This tenant's end-to-end p95 latency, ms.
    pub p95_ms: f64,
    /// This tenant's end-to-end p99 latency, ms.
    pub p99_ms: f64,
}

/// Top-level JSON report `paro drift-bench` prints to stdout: the
/// drift-injection schedule, the watchdog's detection/recovery verdicts,
/// the hot-swap bit-identity check, the engine's lifecycle counters and
/// the measured per-observation watchdog overhead. The CI drift-smoke
/// job gates on the verdict booleans (see docs/LIFECYCLE.md).
#[derive(Debug, Serialize)]
pub struct DriftBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Requests per batch (`--requests`).
    pub requests_per_batch: usize,
    /// Transformer blocks in the workload.
    pub blocks: usize,
    /// Heads per block in the workload.
    pub heads: usize,
    /// RNG seed of the workload and calibration source.
    pub seed: u64,
    /// Fresh batches served before drift injection (`--warmup`).
    pub warmup_batches: usize,
    /// Detection bound in drifted batches (`--detect-within`).
    pub detect_bound_batches: usize,
    /// Post-recalibration recovery batches (`--post`).
    pub post_batches: usize,
    /// Wall-clock time of the whole lifecycle run, ms.
    pub wall_ms: f64,
    /// Drifted batches served before the watchdog flagged `Stale`
    /// (absent when the bound elapsed without detection).
    pub detected_after_batches: Option<usize>,
    /// Whether `Stale` was flagged within `detect_bound_batches`.
    pub detected_within_bound: bool,
    /// Whether recalibration succeeded and published a new epoch.
    pub recalibrated: bool,
    /// Whether every post-recalibration batch served un-flagged with
    /// health back to `fresh` and the proxy inside the fresh band.
    pub recovered: bool,
    /// Whether requests in flight across the mid-batch hot-swap stayed
    /// bit-identical to a never-swapped engine.
    pub swap_bit_identical: bool,
    /// Conjunction of the four verdicts above; `false` exits non-zero.
    pub passed: bool,
    /// Plan epoch before recalibration.
    pub epoch_before: u64,
    /// Plan epoch after recalibration (equals `epoch_before` when
    /// recalibration never ran or failed).
    pub epoch_after: u64,
    /// Watchdog EWMA deviation at the end of warmup (the fresh band).
    pub fresh_ewma: f64,
    /// Watchdog EWMA deviation at detection time.
    pub drift_ewma: f64,
    /// Watchdog EWMA deviation after the recovery batches.
    pub recovered_ewma: f64,
    /// `stale_detected` counter from the engine's metrics.
    pub stale_detected: u64,
    /// `recalibrations` counter from the engine's metrics.
    pub recalibrations: u64,
    /// `recalib_failed` counter from the engine's metrics.
    pub recalib_failed: u64,
    /// `stale_served` counter from the engine's metrics.
    pub stale_served: u64,
    /// Measured cost of one `Watchdog::observe` call, nanoseconds —
    /// the per-request overhead of arming the watchdog.
    pub watchdog_observe_ns: f64,
}

/// Top-level JSON report `paro chaos-bench` prints to stdout: which
/// faults were armed and fired, what the chaos batch resolved to, and
/// whether a clean batch run on the same engine afterwards reproduced the
/// never-faulted baseline bit for bit.
#[derive(Debug, Serialize)]
pub struct ChaosBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Requests per batch (baseline, chaos and clean batches alike).
    pub requests: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Whether fault injection is compiled into this binary
    /// (`paro-failpoint/enabled`); when `false`, nothing fires and the
    /// run degenerates to a clean-vs-clean determinism check.
    pub failpoints_compiled_in: bool,
    /// The faults armed for the chaos batch, with their fire counts.
    pub injected: Vec<InjectedFaultRow>,
    /// Chaos-batch requests that resolved `Ok`.
    pub chaos_completed: usize,
    /// Chaos-batch requests that resolved to a typed error. Every request
    /// resolves one way or the other — a hang is a chaos-bench failure.
    pub chaos_failed: usize,
    /// Clean-batch (post-reset, same engine) requests that resolved `Ok`.
    pub clean_completed: usize,
    /// Whether the clean batch's outputs matched the never-faulted
    /// baseline engine bit for bit.
    pub clean_bit_identical: bool,
    /// Engine metric: requests that faulted (panics, injected faults)
    /// without recovering.
    pub faulted: u64,
    /// Engine metric: retry attempts made after transient faults.
    pub retried: u64,
    /// Engine metric: requests served on the degraded f32 fallback.
    pub degraded: u64,
    /// Engine metric: requests cancelled mid-pipeline by their deadline.
    pub timed_out: u64,
    /// Wall-clock time of the whole run (all three batches), ms.
    pub wall_ms: f64,
}

/// One armed fault site in the chaos-bench report.
#[derive(Debug, Clone, Serialize)]
pub struct InjectedFaultRow {
    /// The failpoint site name (see `paro_failpoint::site`).
    pub site: String,
    /// Fault kind: `panic`, `error` or `delay`.
    pub kind: String,
    /// Site calls skipped before the fault window opens.
    pub skip: u64,
    /// Faults injected once the window opens.
    pub times: u64,
    /// How often the site actually fired during the chaos batch.
    pub fired: u64,
}

/// One row of a per-stage trace summary, in microseconds — the JSON form
/// of [`paro_trace::StageSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct StageSummaryRow {
    /// Stage name (see `paro_trace::stage` for the canonical set).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: f64,
    /// Median span duration, microseconds.
    pub p50_us: f64,
    /// 95th-percentile span duration, microseconds.
    pub p95_us: f64,
    /// Longest span duration, microseconds.
    pub max_us: f64,
}

impl From<&paro_trace::StageSummary> for StageSummaryRow {
    fn from(s: &paro_trace::StageSummary) -> Self {
        StageSummaryRow {
            stage: s.stage.to_string(),
            count: s.count,
            total_us: s.total_ns as f64 / 1e3,
            p50_us: s.p50_ns as f64 / 1e3,
            p95_us: s.p95_ns as f64 / 1e3,
            max_us: s.max_ns as f64 / 1e3,
        }
    }
}

/// Converts a trace's per-stage summaries into JSON rows.
pub fn stage_rows(summaries: &[paro_trace::StageSummary]) -> Vec<StageSummaryRow> {
    summaries.iter().map(StageSummaryRow::from).collect()
}

/// Top-level JSON report `paro perf-bench` writes (as `BENCH_<label>.json`)
/// and prints: per-stage span medians of the single-head packed-integer
/// pipeline, plus packed-`AttnV` throughput under both the dispatched
/// micro-kernel and a forced-scalar reference pass of the same binary.
/// This file is the repository's performance trajectory — the CI
/// `perf-smoke` job diffs a fresh run against the committed
/// `BENCH_ci_baseline.json` with [`diff_stage_medians`].
#[derive(Debug, Serialize, Deserialize)]
pub struct PerfBenchReport {
    /// Free-form run label (`--label`), embedded so a directory of bench
    /// files stays self-describing.
    pub label: String,
    /// Scaled model name (e.g. `CogVideoX-2B@6x8x8`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Timed pipeline iterations per pass (medians are taken over these).
    pub iters: usize,
    /// The micro-kernel runtime dispatch selected (`scalar`, `sse4.1` or
    /// `avx2`).
    pub kernel: String,
    /// `true` when `PARO_KERNEL` overrode detection for this run —
    /// a forced run is not comparable to a detected baseline.
    pub kernel_forced: bool,
    /// Effective compute-pool worker threads on this host
    /// (`PARO_POOL_THREADS` or `available_parallelism`) — baselines
    /// measured on different-core-count hosts are not comparable, and
    /// this pins the count the run actually used. `0` means the host
    /// width was not recorded (baselines predating the field carry it
    /// explicitly).
    pub pool_threads: usize,
    /// Whether span recording is compiled into this binary; medians
    /// require it, so `perf-bench` refuses to run when `false`.
    pub trace_compiled_in: bool,
    /// Median span duration per pipeline stage over the dispatched pass.
    pub stages: Vec<PerfStageRow>,
    /// Packed-`AttnV` throughput under the dispatched kernel.
    pub attn_v: AttnVThroughput,
    /// The same measurement with the kernel forced to `scalar` in-process.
    pub scalar_attn_v: AttnVThroughput,
    /// `attn_v.macs_per_sec / scalar_attn_v.macs_per_sec` — how much
    /// faster the dispatched MAC kernel is than scalar on this host.
    pub attn_v_speedup_vs_scalar: f64,
}

/// One per-stage median row of a perf-bench pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfStageRow {
    /// Stage name (see `paro_trace::stage` for the canonical set).
    pub stage: String,
    /// Spans recorded for this stage across all iterations.
    pub count: u64,
    /// Median span duration, microseconds.
    pub p50_us: f64,
}

/// Throughput of the packed-`AttnV` MAC micro-kernel in one perf-bench
/// pass, derived from the total `attnv.mac` kernel time (one span per
/// non-zero block) and the run's MAC/byte accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttnVThroughput {
    /// The micro-kernel that executed this pass.
    pub kernel: String,
    /// Whole-pipeline wall time per head, milliseconds.
    pub ms_per_head: f64,
    /// Median per-block `attnv.mac` span duration, microseconds.
    pub mac_p50_us: f64,
    /// Executed (non-bypassed) MACs per second through the kernel,
    /// from the stage's total time per pipeline pass.
    pub macs_per_sec: f64,
    /// Packed attention-map bytes streamed through the kernel per
    /// second, GB/s.
    pub packed_map_gb_per_sec: f64,
}

/// Top-level JSON report `paro shard-bench` prints to stdout: the same
/// workload run at every shard count from 1 to `--shards`, each sharded
/// run checked bit-identical against the 1-shard baseline, with the
/// measured per-shard busy-time skew next to the LPT-planned balance and
/// the roofline prediction from `paro_sim::dispatch`. The CI shard-smoke
/// job gates on `passed` (see docs/SHARDING.md).
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardBenchReport {
    /// Scaled model name (e.g. `CogVideoX-2B@4x6x6`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Serve worker threads.
    pub threads: usize,
    /// Effective compute-pool worker threads on this host
    /// (`PARO_POOL_THREADS` or `available_parallelism`): the width the
    /// shards split between them, without which the scaling curve is
    /// uninterpretable across hosts.
    pub pool_threads: usize,
    /// Requests in the stream (run once per shard count).
    pub requests: usize,
    /// Distinct `(block, head)` pairs the stream cycles through.
    pub distinct_heads: usize,
    /// Top shard count of the sweep (`--shards`).
    pub shards: usize,
    /// The imbalance gate bound (`--max-imbalance-pct`).
    pub max_imbalance_pct: f64,
    /// Whether every sharded run's outputs matched the 1-shard baseline
    /// bit for bit.
    pub bit_identical: bool,
    /// Measured per-shard busy-time imbalance at the top shard count.
    pub measured_imbalance_pct: f64,
    /// `bit_identical && measured_imbalance_pct <= max_imbalance_pct`;
    /// `false` exits non-zero.
    pub passed: bool,
    /// One row per shard count, 1 through `shards`: the scaling curve.
    pub scaling: Vec<ShardScaleRow>,
    /// Per-shard `pool.execute` span skew at the top shard count, from
    /// the run's trace session. Empty when tracing is compiled out.
    pub shard_spans: Vec<ShardSpanRow>,
}

/// One shard count's run in the shard-bench scaling curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardScaleRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock time of the batch, milliseconds.
    pub wall_ms: f64,
    /// `wall_ms(1 shard) / wall_ms(this run)` — measured scaling.
    pub speedup: f64,
    /// Roofline-predicted speedup at this shard count
    /// (`paro_sim::dispatch::predicted_shard_scaling` over the planner's
    /// per-head costs).
    pub predicted_speedup: f64,
    /// Roofline-predicted load imbalance at this shard count, percent.
    pub predicted_imbalance_pct: f64,
    /// LPT-planned load imbalance of the placement, percent.
    pub planned_imbalance_pct: f64,
    /// Measured per-shard busy-time imbalance of this run, percent.
    pub measured_imbalance_pct: f64,
    /// Whether this run's outputs matched the 1-shard baseline bit for
    /// bit (trivially `true` for the 1-shard row).
    pub bit_identical: bool,
}

/// One shard's `pool.execute` span aggregate in a shard-bench run —
/// the per-shard skew view trace summaries report via the span `detail`
/// tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSpanRow {
    /// Shard index.
    pub shard: usize,
    /// Shard label (`shard0`, `shard1`, …) tagging the spans.
    pub label: String,
    /// Pool worker threads of this shard.
    pub threads: usize,
    /// Jobs this shard's pool executed during the run.
    pub executed_jobs: u64,
    /// `pool.execute` spans recorded for this shard.
    pub spans: u64,
    /// Sum of this shard's span durations, microseconds.
    pub total_us: f64,
    /// Median span duration, microseconds.
    pub p50_us: f64,
    /// 95th-percentile span duration, microseconds.
    pub p95_us: f64,
}

/// Top-level JSON report `paro tune` writes (`--report`): the bit-budget
/// search outcome under the latency SLO, the roofline model seeded from
/// the measured perf-bench baseline, the per-head chosen budgets, and a
/// predicted-vs-measured validation of the first tuned head on this host.
#[derive(Debug, Serialize, Deserialize)]
pub struct TuneReport {
    /// Scaled model name the tune targeted (e.g. `CogVideoX-2B@6x8x8`).
    pub model: String,
    /// Tokens per attention head (the scaled grid's volume).
    pub tokens: usize,
    /// Head dimension of the model.
    pub head_dim: usize,
    /// Path of the perf-bench baseline (`--bench`) that seeded the
    /// roofline model.
    pub bench: String,
    /// The per-head latency SLO, microseconds (`--slo-us`).
    pub slo_us: f64,
    /// Whether the tuned allocation's predicted mean latency meets the
    /// SLO. When `false` every head already sits at its fastest budget.
    pub meets_slo: bool,
    /// Roofline-predicted mean per-head latency of the tuned allocation,
    /// microseconds.
    pub predicted_mean_us: f64,
    /// Total fidelity-proxy cost added by downgrades relative to the
    /// best-fidelity assignment.
    pub fidelity_sacrificed: f64,
    /// Greedy downgrade moves the search took.
    pub moves: usize,
    /// Mean chosen trial budget across heads — serving the tuned
    /// artifact requires `ServeConfig::budget` set to this value.
    pub mean_budget_bits: f32,
    /// The roofline model the search predicted latencies with.
    pub roofline: RooflineModel,
    /// The chosen operating point per head.
    pub heads: Vec<TuneHeadRow>,
    /// End-to-end timing of the first tuned head on this host, compared
    /// against the roofline prediction.
    pub validation: TuneValidation,
    /// Path the tuned artifact was written to (`--out`).
    pub artifact: String,
    /// Size of the tuned artifact, bytes.
    pub artifact_bytes: usize,
}

/// One head's chosen operating point in a tune report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneHeadRow {
    /// Transformer block index.
    pub block: u32,
    /// Attention head index within the block.
    pub head: u32,
    /// The chosen trial average-bit budget.
    pub budget_bits: f32,
    /// Roofline-predicted per-head latency at this budget, microseconds.
    pub predicted_us: f64,
    /// Fidelity-proxy cost (weighted quantization cost) at this budget.
    pub fidelity_cost: f64,
    /// Achieved average bits of the frozen allocation.
    pub avg_bits: f32,
    /// Mean per-sample selection error of the calibrated order.
    pub mean_error: f32,
}

/// Predicted-vs-measured check of one tuned head: the packed-integer
/// pipeline is run on this host with the chosen frozen calibration and
/// timed against the roofline prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneValidation {
    /// Transformer block index of the validated head.
    pub block: u32,
    /// Attention head index of the validated head.
    pub head: u32,
    /// Timed pipeline iterations (after one warm-up pass).
    pub iters: usize,
    /// Roofline-predicted latency, microseconds.
    pub predicted_us: f64,
    /// Measured mean latency on this host, microseconds.
    pub measured_us: f64,
    /// `predicted_us / measured_us` — how well the roofline transfers
    /// to this host (1.0 is perfect).
    pub predicted_over_measured: f64,
}

/// Stages whose baseline median sits under this floor are reported but
/// never gated: a span this short is dominated by timer and scheduler
/// noise, and a percentage threshold on it would flap.
pub const PERF_GATE_FLOOR_US: f64 = 50.0;

/// One row of a baseline-vs-current perf diff.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiffRow {
    /// Stage name.
    pub stage: String,
    /// Baseline median, microseconds (`None` when the stage is new).
    pub baseline_p50_us: Option<f64>,
    /// Current median, microseconds (`None` when the stage disappeared).
    pub current_p50_us: Option<f64>,
    /// Relative change in percent (`None` unless both sides are present
    /// and the baseline is positive).
    pub delta_pct: Option<f64>,
    /// Whether this row trips the regression gate.
    pub regressed: bool,
}

/// Diffs current per-stage medians against a baseline.
///
/// A stage regresses when both sides measured it, its baseline median is
/// at least [`PERF_GATE_FLOOR_US`], and the current median exceeds the
/// baseline by more than `tolerance_pct` percent. Stages present on only
/// one side are reported (so renames are visible in the table) but do not
/// gate. Rows follow the baseline's order, with new stages appended.
pub fn diff_stage_medians(
    baseline: &[PerfStageRow],
    current: &[PerfStageRow],
    tolerance_pct: f64,
) -> Vec<PerfDiffRow> {
    let cur = |name: &str| current.iter().find(|r| r.stage == name);
    let mut rows: Vec<PerfDiffRow> = baseline
        .iter()
        .map(|b| {
            let c = cur(&b.stage);
            let delta_pct = c
                .filter(|_| b.p50_us > 0.0)
                .map(|c| (c.p50_us - b.p50_us) / b.p50_us * 100.0);
            let regressed =
                b.p50_us >= PERF_GATE_FLOOR_US && delta_pct.is_some_and(|d| d > tolerance_pct);
            PerfDiffRow {
                stage: b.stage.clone(),
                baseline_p50_us: Some(b.p50_us),
                current_p50_us: c.map(|c| c.p50_us),
                delta_pct,
                regressed,
            }
        })
        .collect();
    for c in current {
        if !baseline.iter().any(|b| b.stage == c.stage) {
            rows.push(PerfDiffRow {
                stage: c.stage.clone(),
                baseline_p50_us: None,
                current_p50_us: Some(c.p50_us),
                delta_pct: None,
                regressed: false,
            });
        }
    }
    rows
}

/// Names of baseline stages the candidate report no longer measures.
///
/// [`diff_stage_medians`] deliberately reports disappeared stages without
/// gating on them (so renames stay visible in the table) — but a CI
/// comparison must not pass silently when a stage it used to watch has
/// vanished: that usually means a stage was renamed or a code path stopped
/// running, and the gate would be comparing against nothing. The
/// `perf-bench --compare` gate fails when this is non-empty.
pub fn missing_baseline_stages(baseline: &[PerfStageRow], current: &[PerfStageRow]) -> Vec<String> {
    baseline
        .iter()
        .filter(|b| !current.iter().any(|c| c.stage == b.stage))
        .map(|b| b.stage.clone())
        .collect()
}

/// Renders a perf diff as an aligned text table; regressed rows are
/// marked `REGRESSED`, ungated rows under the noise floor ` (ungated)`.
pub fn format_diff_table(rows: &[PerfDiffRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>9}\n",
        "stage", "baseline_us", "current_us", "delta"
    ));
    let num = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
    for r in rows {
        let delta = r.delta_pct.map_or("-".to_string(), |d| format!("{d:+.1}%"));
        let mark = if r.regressed {
            "  REGRESSED"
        } else if r.baseline_p50_us.is_some_and(|b| b < PERF_GATE_FLOOR_US) {
            "  (ungated)"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>9}{}\n",
            r.stage,
            num(r.baseline_p50_us),
            num(r.current_p50_us),
            delta,
            mark
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(stage: &str, p50_us: f64) -> PerfStageRow {
        PerfStageRow {
            stage: stage.to_string(),
            count: 5,
            p50_us,
        }
    }

    #[test]
    fn diff_flags_only_gated_regressions() {
        let baseline = [row("attnv.mac", 400.0), row("pipeline.qkt", 1000.0)];
        let current = [row("attnv.mac", 560.0), row("pipeline.qkt", 1200.0)];
        let rows = diff_stage_medians(&baseline, &current, 30.0);
        // +40% on attnv.mac trips the gate, +20% on qkt stays inside it.
        assert!(rows[0].regressed, "{rows:?}");
        assert!(!rows[1].regressed, "{rows:?}");
        assert!((rows[0].delta_pct.unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn diff_never_gates_below_noise_floor() {
        let baseline = [row("pipeline.reorder", PERF_GATE_FLOOR_US / 2.0)];
        let current = [row("pipeline.reorder", PERF_GATE_FLOOR_US * 10.0)];
        let rows = diff_stage_medians(&baseline, &current, 30.0);
        assert!(!rows[0].regressed, "{rows:?}");
        assert!(rows[0].delta_pct.unwrap() > 30.0);
    }

    #[test]
    fn diff_reports_added_and_removed_stages_without_gating() {
        let baseline = [row("attnv.mac", 400.0)];
        let current = [row("kernel.dispatch", 0.1)];
        let rows = diff_stage_medians(&baseline, &current, 30.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].current_p50_us, None);
        assert_eq!(rows[1].baseline_p50_us, None);
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        let table = format_diff_table(&rows);
        assert!(table.contains("attnv.mac"));
        assert!(table.contains("kernel.dispatch"));
    }

    #[test]
    fn missing_stages_lists_disappeared_baseline_rows_only() {
        let baseline = [row("attnv.mac", 400.0), row("pipeline.qkt", 1000.0)];
        let current = [row("attnv.mac", 410.0), row("qkt.mac", 90.0)];
        assert_eq!(
            missing_baseline_stages(&baseline, &current),
            vec!["pipeline.qkt".to_string()]
        );
        assert!(missing_baseline_stages(&baseline, &baseline).is_empty());
        // New candidate-only stages never count as missing.
        assert!(missing_baseline_stages(&[], &current).is_empty());
    }

    #[test]
    fn improvement_never_regresses() {
        let baseline = [row("attnv.mac", 1000.0)];
        let current = [row("attnv.mac", 100.0)];
        let rows = diff_stage_medians(&baseline, &current, 30.0);
        assert!(!rows[0].regressed);
        assert!(rows[0].delta_pct.unwrap() < 0.0);
    }

    #[test]
    fn perf_report_round_trips_through_json() {
        let report = PerfBenchReport {
            label: "ci_baseline".to_string(),
            model: "CogVideoX-2B@6x8x8".to_string(),
            tokens: 384,
            head_dim: 64,
            iters: 5,
            kernel: "avx2".to_string(),
            kernel_forced: false,
            pool_threads: 8,
            trace_compiled_in: true,
            stages: vec![row("attnv.mac", 412.5)],
            attn_v: AttnVThroughput {
                kernel: "avx2".to_string(),
                ms_per_head: 3.1,
                mac_p50_us: 412.5,
                macs_per_sec: 1.9e9,
                packed_map_gb_per_sec: 0.4,
            },
            scalar_attn_v: AttnVThroughput {
                kernel: "scalar".to_string(),
                ms_per_head: 6.0,
                mac_p50_us: 1400.0,
                macs_per_sec: 0.6e9,
                packed_map_gb_per_sec: 0.12,
            },
            attn_v_speedup_vs_scalar: 3.39,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: PerfBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label, report.label);
        assert_eq!(back.stages.len(), 1);
        assert_eq!(back.stages[0].stage, "attnv.mac");
        assert_eq!(back.attn_v.kernel, "avx2");
        assert_eq!(back.scalar_attn_v.mac_p50_us, 1400.0);
        assert_eq!(back.pool_threads, 8);
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let report = ShardBenchReport {
            model: "CogVideoX-2B@4x6x6".to_string(),
            tokens: 144,
            head_dim: 64,
            threads: 4,
            pool_threads: 8,
            requests: 24,
            distinct_heads: 12,
            shards: 2,
            max_imbalance_pct: 75.0,
            bit_identical: true,
            measured_imbalance_pct: 12.5,
            passed: true,
            scaling: vec![ShardScaleRow {
                shards: 2,
                wall_ms: 80.0,
                speedup: 1.6,
                predicted_speedup: 2.0,
                predicted_imbalance_pct: 0.0,
                planned_imbalance_pct: 1.5,
                measured_imbalance_pct: 12.5,
                bit_identical: true,
            }],
            shard_spans: vec![ShardSpanRow {
                shard: 0,
                label: "shard0".to_string(),
                threads: 4,
                executed_jobs: 24,
                spans: 24,
                total_us: 9000.0,
                p50_us: 350.0,
                p95_us: 600.0,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ShardBenchReport = serde_json::from_str(&json).unwrap();
        assert!(back.passed);
        assert_eq!(back.scaling.len(), 1);
        assert_eq!(back.scaling[0].shards, 2);
        assert_eq!(back.shard_spans[0].label, "shard0");
        assert!(json.contains("measured_imbalance_pct"));
    }
}
