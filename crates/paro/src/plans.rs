//! Implementation of `paro plan build/inspect/verify` and `paro tune`.
//!
//! The logic lives here in the library so integration tests can drive
//! artifact building and bit-budget tuning without shelling out to the
//! binary; the `paro` binary's matching subcommands are thin wrappers
//! adding file IO and printing. See `docs/ARTIFACT.md` for the artifact
//! format contract and `docs/TELEMETRY.md` §8 for the tune report.

use crate::cli::{PlanBuildOpts, TuneOpts};
use crate::report::{PerfBenchReport, TuneHeadRow, TuneReport, TuneValidation};
use paro_artifact::{ArtifactBuilder, ArtifactError, ArtifactView};
use paro_core::artifact::{head_record, order_from_code, plan_meta};
use paro_core::calibration::{calibrate_head, HeadCalibration};
use paro_core::int_pipeline::run_attention_calibrated_int;
use paro_core::pipeline::AttentionInputs;
use paro_model::patterns::{synthesize_head, PatternSpec};
use paro_model::{ModelConfig, TokenGrid};
use paro_quant::BlockGrid;
use paro_serve::workload::{scaled_config, SyntheticSource};
use paro_serve::{CalibrationSource, ServeConfig};
use paro_sim::tune::{tune_budgets, BudgetOption, HeadCandidate, RooflineModel, TuneOutcome};
use paro_sim::AttentionProfile;
use std::time::Instant;

/// The trial average-bit budgets `paro tune` calibrates each head at —
/// the paper's discrete palette of mixed-precision operating points.
pub const TRIAL_BUDGETS: [f32; 3] = [2.0, 4.0, 8.0];

/// Writes `bytes` to `path`, creating missing parent directories.
///
/// Every file the `paro` binary writes goes through here so a typo'd
/// `--out some/missing/dir/x.json` produces a clear error naming the
/// offending path instead of a bare io error with no context.
///
/// # Errors
///
/// A human-readable message naming `path` (and the parent directory
/// when creating it failed).
pub fn write_output(path: &str, bytes: &[u8]) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot write {path}: creating directory {}: {e}",
                    parent.display()
                )
            })?;
        }
    }
    std::fs::write(p, bytes).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The scaled CogVideoX-2B workload model the synthetic commands share.
fn workload_model(grid: &TokenGrid) -> ModelConfig {
    scaled_config(
        &ModelConfig::cogvideox_2b(),
        grid.frames(),
        grid.height(),
        grid.width(),
    )
}

/// Calibrates every `(block, head)` of the synthetic workload and
/// freezes the plans into artifact bytes.
///
/// The calibration source seed is derived exactly as `serve-bench`
/// derives it, so an artifact built with the same grid/seed/budget
/// serves the very plans that engine would have calibrated in-process.
///
/// # Errors
///
/// Calibration and artifact-encoding errors propagate.
pub fn build_plan_bytes(opts: &PlanBuildOpts) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let model = workload_model(&opts.grid);
    let defaults = ServeConfig::default();
    let source = SyntheticSource::new(model.clone(), 2, opts.seed ^ 0xca11b);
    let block_grid = BlockGrid::square(opts.block_edge)?;
    let meta = plan_meta(
        &model,
        block_grid,
        defaults.calib_bits,
        opts.budget,
        defaults.alpha,
    );
    let mut builder = ArtifactBuilder::new(meta);
    for block in 0..opts.blocks {
        for head in 0..opts.heads {
            let maps = source.calibration_maps(block, head)?;
            let cal = calibrate_head(
                &maps,
                &model.grid,
                block_grid,
                defaults.calib_bits,
                opts.budget,
                defaults.alpha,
            )?;
            builder.push_head(head_record(block as u32, head as u32, &cal));
        }
    }
    Ok(builder.build()?)
}

/// Renders an artifact's metadata and per-head plan table as text.
///
/// # Errors
///
/// [`ArtifactError`] when the bytes fail structural validation.
pub fn inspect_text(bytes: &[u8]) -> Result<String, ArtifactError> {
    let view = ArtifactView::parse(bytes)?;
    let meta = view.meta();
    let mut out = String::new();
    let legacy = if view.is_legacy() {
        format!(" (legacy — current writer is v{})", paro_artifact::VERSION)
    } else {
        String::new()
    };
    out.push_str(&format!(
        "plan artifact v{}{} — model {} ({}x{}x{} grid, {}x{} blocks)\n",
        view.version(),
        legacy,
        meta.model,
        meta.frames,
        meta.height,
        meta.width,
        meta.block_rows,
        meta.block_cols,
    ));
    out.push_str(&format!(
        "epoch {}  calibrated {}\n",
        meta.epoch,
        if meta.created_at == 0 {
            "undated".to_string()
        } else {
            format_utc(meta.created_at)
        },
    ));
    out.push_str(&format!(
        "calib_bits {}  budget {:.2}  alpha {:.2}  heads {}  ({} bytes)\n",
        meta.calib_bits,
        meta.budget,
        meta.alpha,
        view.head_count(),
        bytes.len(),
    ));
    out.push_str(&format!(
        "{:<6} {:<5} {:<6} {:>9} {:>9} {:>11} {:>7}\n",
        "block", "head", "order", "avg_bits", "mean_err", "total_cost", "blocks"
    ));
    for i in 0..view.head_count() {
        let h = view.head(i)?;
        let order = order_from_code(h.order_code)?;
        out.push_str(&format!(
            "{:<6} {:<5} {:<6} {:>9.2} {:>9.5} {:>11.3} {:>7}\n",
            h.block,
            h.head,
            order.to_string(),
            h.avg_bits,
            h.mean_error,
            h.total_cost,
            h.bit_codes.len(),
        ));
    }
    Ok(out)
}

/// Structurally verifies artifact bytes — header, checksum, section
/// bounds (via parse) plus the deep per-head domain check — and returns
/// a one-line summary.
///
/// # Errors
///
/// [`ArtifactError`] naming the first violated invariant.
pub fn verify_text(bytes: &[u8]) -> Result<String, ArtifactError> {
    let view = ArtifactView::parse(bytes)?;
    view.verify_deep()?;
    // A legacy (older-format) artifact is readable forever — flag it
    // rather than failing, so operators know its lifecycle fields
    // (epoch, timestamp) are defaulted, not recorded.
    let legacy = if view.is_legacy() {
        format!(
            " — legacy v{} format (readable; re-freeze to v{} to record epoch and timestamp)",
            view.version(),
            paro_artifact::VERSION,
        )
    } else {
        String::new()
    };
    Ok(format!(
        "artifact OK: model {}, {} heads, {} bytes — header, checksum and per-head domains verified{legacy}",
        view.meta().model,
        view.head_count(),
        bytes.len(),
    ))
}

/// Formats a Unix timestamp as `YYYY-MM-DD HH:MM:SS UTC` without a
/// calendar dependency (civil-from-days, Gregorian).
fn format_utc(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(month <= 2);
    format!("{y:04}-{month:02}-{d:02} {h:02}:{m:02}:{s:02} UTC")
}

/// Seeds the roofline model from a measured perf-bench baseline: the
/// achieved MAC rate and packed-map streaming bandwidth, plus the
/// precision-independent stage medians (reorder, unpack, unreorder) as
/// fixed per-head overhead. Tokens and head dimension come from the
/// model being tuned, not the baseline's.
pub fn roofline_from_bench(bench: &PerfBenchReport, model: &ModelConfig) -> RooflineModel {
    let p50 = |name: &str| {
        bench
            .stages
            .iter()
            .find(|r| r.stage == name)
            .map_or(0.0, |r| r.p50_us)
    };
    RooflineModel {
        macs_per_sec: bench.attn_v.macs_per_sec,
        packed_map_bytes_per_sec: bench.attn_v.packed_map_gb_per_sec * 1e9,
        fixed_us: p50(paro_trace::stage::PIPELINE_REORDER)
            + p50(paro_trace::stage::ATTNV_UNPACK)
            + p50(paro_trace::stage::PIPELINE_UNREORDER),
        tokens: model.grid.len(),
        head_dim: model.head_dim(),
    }
}

/// Runs `paro tune` end to end: reads the `--bench` baseline, searches
/// per-head budgets, and returns the report plus the tuned artifact
/// bytes (writing both is the caller's job).
///
/// # Errors
///
/// Unreadable or malformed baselines, calibration failures and
/// [`paro_sim::SimError::BadTuneInput`] all propagate.
pub fn run_tune(opts: &TuneOpts) -> Result<(TuneReport, Vec<u8>), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&opts.bench)
        .map_err(|e| format!("cannot read bench baseline {}: {e}", opts.bench))?;
    let bench: PerfBenchReport = serde_json::from_str(&text)
        .map_err(|e| format!("bench baseline {} malformed: {e}", opts.bench))?;
    tune_with_bench(opts, &bench)
}

/// [`run_tune`] with the baseline already parsed — the testable core.
///
/// # Errors
///
/// See [`run_tune`].
pub fn tune_with_bench(
    opts: &TuneOpts,
    bench: &PerfBenchReport,
) -> Result<(TuneReport, Vec<u8>), Box<dyn std::error::Error>> {
    let model = workload_model(&opts.grid);
    let roofline = roofline_from_bench(bench, &model);
    let defaults = ServeConfig::default();
    let source = SyntheticSource::new(model.clone(), 2, opts.seed ^ 0xca11b);
    let block_grid = BlockGrid::square(opts.block_edge)?;

    // One candidate operating point per head per trial budget, each a
    // real frozen calibration (so the tuned artifact serves exactly
    // what the search scored).
    let mut candidates: Vec<HeadCandidate> = Vec::new();
    let mut cals: Vec<Vec<HeadCalibration>> = Vec::new();
    for block in 0..opts.blocks {
        for head in 0..opts.heads {
            let maps = source.calibration_maps(block, head)?;
            let mut options = Vec::new();
            let mut head_cals = Vec::new();
            for &budget in &TRIAL_BUDGETS {
                let cal = calibrate_head(
                    &maps,
                    &model.grid,
                    block_grid,
                    defaults.calib_bits,
                    budget,
                    defaults.alpha,
                )?;
                options.push(BudgetOption {
                    budget_bits: budget,
                    profile: AttentionProfile::from_bits(&cal.allocation.bits)?,
                    fidelity_cost: cal.allocation.total_cost as f64,
                });
                head_cals.push(cal);
            }
            candidates.push(HeadCandidate {
                block: block as u32,
                head: head as u32,
                options,
            });
            cals.push(head_cals);
        }
    }

    let outcome = tune_budgets(&roofline, &candidates, opts.slo_us)?;

    // Freeze the chosen calibration per head. The artifact's budget
    // field is the mean chosen trial budget: serving a tuned artifact
    // requires setting `ServeConfig::budget` to this reported value.
    let mean_budget =
        outcome.chosen.iter().map(|c| c.budget_bits).sum::<f32>() / outcome.chosen.len() as f32;
    let meta = plan_meta(
        &model,
        block_grid,
        defaults.calib_bits,
        mean_budget,
        defaults.alpha,
    );
    let mut builder = ArtifactBuilder::new(meta);
    let mut rows = Vec::new();
    for (i, choice) in outcome.chosen.iter().enumerate() {
        let cal = &cals[i][choice.option];
        builder.push_head(head_record(choice.block, choice.head, cal));
        rows.push(TuneHeadRow {
            block: choice.block,
            head: choice.head,
            budget_bits: choice.budget_bits,
            predicted_us: choice.predicted_us,
            fidelity_cost: choice.fidelity_cost,
            avg_bits: cal.allocation.avg_bits,
            mean_error: cal.mean_error,
        });
    }
    let bytes = builder.build()?;

    let validation = validate_tuned_head(&model, &cals, &outcome, opts.seed, &defaults)?;
    let report = TuneReport {
        model: model.name.clone(),
        tokens: model.grid.len(),
        head_dim: model.head_dim(),
        bench: opts.bench.clone(),
        slo_us: opts.slo_us,
        meets_slo: outcome.meets_slo,
        predicted_mean_us: outcome.predicted_mean_us,
        fidelity_sacrificed: outcome.fidelity_sacrificed,
        moves: outcome.moves,
        mean_budget_bits: mean_budget,
        roofline,
        heads: rows,
        validation,
        artifact: opts.out.clone(),
        artifact_bytes: bytes.len(),
    };
    Ok((report, bytes))
}

/// Measures the first head's tuned assignment end to end on this host
/// (warm once, then time the packed-integer pipeline) and pairs the
/// result with the roofline prediction for the report's
/// predicted-vs-measured comparison.
fn validate_tuned_head(
    model: &ModelConfig,
    cals: &[Vec<HeadCalibration>],
    outcome: &TuneOutcome,
    seed: u64,
    defaults: &ServeConfig,
) -> Result<TuneValidation, Box<dyn std::error::Error>> {
    let choice = &outcome.chosen[0];
    let cal = &cals[0][choice.option];
    let spec = PatternSpec::for_head(&model.grid, choice.block as usize, choice.head as usize);
    let head = synthesize_head(&model.grid, model.head_dim(), &spec, seed);
    let inputs = AttentionInputs::new(head.q, head.k, head.v, model.grid)?;
    let iters = 5usize;
    run_attention_calibrated_int(&inputs, cal, defaults.output_aware)?;
    let t0 = Instant::now();
    for _ in 0..iters {
        run_attention_calibrated_int(&inputs, cal, defaults.output_aware)?;
    }
    let measured_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    Ok(TuneValidation {
        block: choice.block,
        head: choice.head,
        iters,
        predicted_us: choice.predicted_us,
        measured_us,
        predicted_over_measured: if measured_us > 0.0 {
            choice.predicted_us / measured_us
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AttnVThroughput, PerfStageRow};

    fn build_opts() -> PlanBuildOpts {
        PlanBuildOpts {
            grid: TokenGrid::new(2, 4, 4),
            blocks: 1,
            heads: 2,
            block_edge: 4,
            budget: 4.8,
            seed: 42,
            out: "unused.paro".to_string(),
        }
    }

    fn bench_report() -> PerfBenchReport {
        let pass = |kernel: &str| AttnVThroughput {
            kernel: kernel.to_string(),
            ms_per_head: 3.2,
            mac_p50_us: 410.0,
            macs_per_sec: 7.0e9,
            packed_map_gb_per_sec: 0.08,
        };
        PerfBenchReport {
            label: "test".to_string(),
            model: "CogVideoX-2B@6x8x8".to_string(),
            tokens: 384,
            head_dim: 64,
            iters: 5,
            kernel: "avx2".to_string(),
            kernel_forced: false,
            pool_threads: 8,
            trace_compiled_in: true,
            stages: vec![
                PerfStageRow {
                    stage: paro_trace::stage::PIPELINE_REORDER.to_string(),
                    count: 5,
                    p50_us: 40.0,
                },
                PerfStageRow {
                    stage: paro_trace::stage::ATTNV_UNPACK.to_string(),
                    count: 5,
                    p50_us: 15.0,
                },
                PerfStageRow {
                    stage: paro_trace::stage::PIPELINE_UNREORDER.to_string(),
                    count: 5,
                    p50_us: 7.0,
                },
            ],
            attn_v: pass("avx2"),
            scalar_attn_v: pass("scalar"),
            attn_v_speedup_vs_scalar: 1.0,
        }
    }

    fn tune_opts(slo_us: f64) -> TuneOpts {
        TuneOpts {
            grid: TokenGrid::new(2, 4, 4),
            blocks: 1,
            heads: 2,
            block_edge: 4,
            seed: 42,
            bench: "BENCH_test.json".to_string(),
            slo_us,
            out: "PLAN_tuned.paro".to_string(),
            report: "TUNE_report.json".to_string(),
        }
    }

    #[test]
    fn built_plans_parse_inspect_and_verify() {
        let bytes = build_plan_bytes(&build_opts()).unwrap();
        let view = ArtifactView::parse(&bytes).unwrap();
        assert_eq!(view.head_count(), 2);
        assert_eq!(view.meta().model, "CogVideoX-2B@2x4x4");
        view.verify_deep().unwrap();
        let text = inspect_text(&bytes).unwrap();
        assert!(text.contains("CogVideoX-2B@2x4x4"), "{text}");
        assert!(text.contains("avg_bits"), "{text}");
        // A freshly built artifact is current-format: epoch 0, no
        // legacy marker, and a real calibration timestamp when the
        // builder stamped one.
        assert!(text.contains("epoch 0"), "{text}");
        assert!(!text.contains("legacy"), "{text}");
        let ok = verify_text(&bytes).unwrap();
        assert!(ok.contains("artifact OK"), "{ok}");
        assert!(!ok.contains("legacy"), "{ok}");
        // Corruption is reported, not swallowed.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(verify_text(&bad).is_err());
    }

    #[test]
    fn legacy_artifacts_inspect_and_verify_as_readable_but_legacy() {
        let bytes = std::fs::read(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../artifact/tests/fixtures/golden_v1.paro"
        ))
        .expect("committed v1 fixture");
        let text = inspect_text(&bytes).unwrap();
        assert!(text.contains("plan artifact v1 (legacy"), "{text}");
        assert!(text.contains("epoch 0"), "{text}");
        assert!(text.contains("calibrated undated"), "{text}");
        let ok = verify_text(&bytes).unwrap();
        assert!(ok.contains("artifact OK"), "{ok}");
        assert!(ok.contains("legacy v1 format (readable"), "{ok}");
    }

    #[test]
    fn utc_formatting_is_gregorian() {
        assert_eq!(format_utc(0), "1970-01-01 00:00:00 UTC");
        assert_eq!(format_utc(1_750_000_000), "2025-06-15 15:06:40 UTC");
        assert_eq!(format_utc(951_782_400), "2000-02-29 00:00:00 UTC");
    }

    #[test]
    fn roofline_is_seeded_from_measured_stages() {
        let bench = bench_report();
        let model = workload_model(&TokenGrid::new(2, 4, 4));
        let m = roofline_from_bench(&bench, &model);
        assert_eq!(m.macs_per_sec, 7.0e9);
        assert_eq!(m.packed_map_bytes_per_sec, 0.08 * 1e9);
        assert_eq!(m.fixed_us, 40.0 + 15.0 + 7.0);
        assert_eq!(m.tokens, 32);
        assert_eq!(m.head_dim, model.head_dim());
        m.validate().unwrap();
    }

    #[test]
    fn loose_slo_tunes_to_best_fidelity_and_emits_a_valid_artifact() {
        let (report, bytes) = tune_with_bench(&tune_opts(1e9), &bench_report()).unwrap();
        assert!(report.meets_slo);
        assert_eq!(report.moves, 0);
        assert_eq!(report.fidelity_sacrificed, 0.0);
        assert_eq!(report.heads.len(), 2);
        assert!(report.predicted_mean_us > 0.0);
        assert!(report.validation.measured_us > 0.0);
        assert!(report.validation.predicted_over_measured > 0.0);
        // The tuned artifact is structurally sound and carries the
        // chosen heads.
        let view = ArtifactView::parse(&bytes).unwrap();
        view.verify_deep().unwrap();
        assert_eq!(view.head_count(), 2);
        assert_eq!(report.artifact_bytes, bytes.len());
        let budgets: Vec<f32> = report.heads.iter().map(|h| h.budget_bits).collect();
        assert!(
            budgets.iter().all(|b| TRIAL_BUDGETS.contains(b)),
            "{budgets:?}"
        );
    }

    #[test]
    fn infeasible_slo_is_reported_not_hidden() {
        let (report, bytes) = tune_with_bench(&tune_opts(1e-3), &bench_report()).unwrap();
        assert!(!report.meets_slo);
        assert!(report.moves > 0);
        // Best effort: every head driven to its fastest trial budget.
        assert!(report.heads.iter().all(|h| h.budget_bits == 2.0));
        ArtifactView::parse(&bytes).unwrap().verify_deep().unwrap();
    }
}
