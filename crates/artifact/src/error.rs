//! Typed artifact errors.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong opening or decoding a plan artifact.
///
/// Every variant is a *rejection*: a malformed artifact fails loudly with
/// one of these and can never cause undefined behavior (the crate forbids
/// `unsafe`, so all decoding is bounds-checked slicing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The buffer is shorter than a structure the format requires.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first eight bytes are not the `PAROPLAN` magic.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The header's format version is not one this reader supports.
    UnsupportedVersion {
        /// The version stored in the artifact.
        found: u32,
        /// The newest version this reader understands.
        supported: u32,
    },
    /// The header's declared body length disagrees with the buffer.
    LengthMismatch {
        /// Body length declared in the header.
        declared: u64,
        /// Bytes actually following the header.
        actual: u64,
    },
    /// The stored CRC-32 does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed over the artifact bytes.
        computed: u32,
    },
    /// A section index entry or section content is malformed.
    BadSection {
        /// The section id (see [`crate::section`]).
        id: u32,
        /// What was wrong with it.
        reason: String,
    },
    /// A required section is absent from the index table.
    MissingSection {
        /// The absent section's id.
        id: u32,
    },
    /// A section id appears more than once in the index table.
    DuplicateSection {
        /// The repeated section's id.
        id: u32,
    },
    /// A field holds a value outside its documented domain (e.g. an
    /// order code ≥ 6 or a bit code outside `{0, 2, 4, 8}`).
    BadValue {
        /// Which field was out of domain.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Reading the artifact file from disk failed.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying io error, rendered.
        message: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { needed, have } => {
                write!(f, "artifact truncated: need {needed} bytes, have {have}")
            }
            ArtifactError::BadMagic { found } => {
                write!(f, "not a plan artifact: magic bytes {found:?}")
            }
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact version {found} (this reader supports up to {supported})"
            ),
            ArtifactError::LengthMismatch { declared, actual } => write!(
                f,
                "artifact body length mismatch: header declares {declared} bytes, buffer has {actual}"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ArtifactError::BadSection { id, reason } => {
                write!(f, "artifact section {id} malformed: {reason}")
            }
            ArtifactError::MissingSection { id } => {
                write!(f, "artifact is missing required section {id}")
            }
            ArtifactError::DuplicateSection { id } => {
                write!(f, "artifact section {id} appears more than once")
            }
            ArtifactError::BadValue { what, value } => {
                write!(f, "artifact field {what} holds out-of-domain value {value}")
            }
            ArtifactError::Io { path, message } => {
                write!(f, "cannot read artifact '{path}': {message}")
            }
        }
    }
}

impl Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_structured() {
        let errs = [
            ArtifactError::Truncated {
                needed: 28,
                have: 3,
            },
            ArtifactError::BadMagic {
                found: *b"NOTAPLAN",
            },
            ArtifactError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            ArtifactError::LengthMismatch {
                declared: 100,
                actual: 90,
            },
            ArtifactError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            ArtifactError::BadSection {
                id: 2,
                reason: "odd length".to_string(),
            },
            ArtifactError::MissingSection { id: 3 },
            ArtifactError::DuplicateSection { id: 1 },
            ArtifactError::BadValue {
                what: "order_code",
                value: 7,
            },
            ArtifactError::Io {
                path: "/tmp/x.paro".to_string(),
                message: "no such file".to_string(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        let e = ArtifactError::Io {
            path: "/tmp/x.paro".to_string(),
            message: "gone".to_string(),
        };
        assert!(e.to_string().contains("/tmp/x.paro"));
    }
}
