//! Owned artifact buffers: the safe fallback when nothing longer-lived
//! owns the bytes.

use std::path::Path;

use crate::error::ArtifactError;
use crate::view::ArtifactView;

/// An artifact that owns its byte buffer.
///
/// [`ArtifactView`] borrows; this type is for the common serving case
/// where the artifact is read from disk once and must outlive any one
/// stack frame. Construction validates the buffer, so holding an
/// `OwnedArtifact` is proof the bytes parse.
#[derive(Debug, Clone)]
pub struct OwnedArtifact {
    data: Vec<u8>,
}

impl OwnedArtifact {
    /// Validates and takes ownership of an artifact buffer.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactView::parse`] rejection.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, ArtifactError> {
        ArtifactView::parse(&data)?;
        Ok(OwnedArtifact { data })
    }

    /// Reads and validates an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] (carrying the path) when the file cannot be
    /// read, plus any [`ArtifactView::parse`] rejection.
    pub fn read_from_file(path: &Path) -> Result<Self, ArtifactError> {
        let data = std::fs::read(path).map_err(|e| ArtifactError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_bytes(data)
    }

    /// Borrows a validated view over the owned buffer.
    pub fn view(&self) -> ArtifactView<'_> {
        ArtifactView::parse(&self.data).expect("buffer was validated at construction")
    }

    /// The raw artifact bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}
