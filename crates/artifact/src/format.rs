//! Byte-level layout constants and the owned record types.
//!
//! The authoritative prose contract — with stability promises — is
//! `docs/ARTIFACT.md`; these constants are its single source of truth in
//! code. Everything is little-endian.

/// The eight magic bytes opening every plan artifact.
pub const MAGIC: [u8; 8] = *b"PAROPLAN";

/// Current format version. Readers reject anything newer; older versions
/// stay readable — see the stability promises in `docs/ARTIFACT.md`.
///
/// Version history:
/// - **1** — initial layout (meta tail of eight `u32` fields).
/// - **2** — appends `epoch` and `created_at` (`u64` each) to the meta
///   section for the calibration-drift lifecycle. Version-1 artifacts
///   decode with both fields defaulting to 0 (see [`ArtifactView::is_legacy`]).
///
/// [`ArtifactView::is_legacy`]: crate::ArtifactView::is_legacy
pub const VERSION: u32 = 2;

/// Oldest format version this reader still accepts.
pub const MIN_VERSION: u32 = 1;

/// Header length in bytes: magic (8) + version (4) + section count (4) +
/// body length (8) + CRC-32 (4).
pub const HEADER_LEN: usize = 28;

/// Length of one section index entry: id (4) + offset (8) + length (8).
pub const INDEX_ENTRY_LEN: usize = 20;

/// Length of one fixed head record in the heads section.
pub const HEAD_RECORD_LEN: usize = 32;

/// Number of valid axis-order codes. Codes `0..6` index the six
/// flattening orders of the 3-D token grid, in the canonical order
/// `fhw, fwh, hfw, hwf, wfh, whf` (matching `paro_model::AxisOrder::ALL`).
pub const ORDER_CODES: u32 = 6;

/// The valid per-block bit codes, stored one byte per quantization block:
/// the literal bit count of the paper's palette `{0, 2, 4, 8}`.
pub const BIT_CODES: [u8; 4] = [0, 2, 4, 8];

/// Section ids of the index table.
pub mod section {
    /// Plan metadata: model name, token grid, quantization method.
    pub const META: u32 = 1;
    /// Fixed-size per-head records.
    pub const HEADS: u32 = 2;
    /// Concatenated per-block bit codes, referenced by head records.
    pub const BITS: u32 = 3;
}

/// Decoded plan metadata: everything the frozen calibrations depend on.
///
/// A serving process must refuse an artifact whose metadata disagrees
/// with its own model/method configuration — the calibrations inside are
/// frozen *for* this exact configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMeta {
    /// Model name, e.g. `"CogVideoX-2B@4x6x6"`.
    pub model: String,
    /// Token-grid frames.
    pub frames: u32,
    /// Token-grid height.
    pub height: u32,
    /// Token-grid width.
    pub width: u32,
    /// Quantization block rows.
    pub block_rows: u32,
    /// Quantization block columns.
    pub block_cols: u32,
    /// Bitwidth used to score reorder plans during calibration (one of
    /// `{0, 2, 4, 8}`).
    pub calib_bits: u32,
    /// Mixed-precision average-bit budget.
    pub budget: f32,
    /// Sensitivity alpha.
    pub alpha: f32,
    /// Plan epoch (generation counter): 0 for an initial offline
    /// calibration, incremented by each online recalibration that
    /// re-freezes the plans. Version-1 artifacts decode as epoch 0.
    pub epoch: u64,
    /// Calibration timestamp, seconds since the Unix epoch (0 when
    /// unknown — e.g. a version-1 artifact or a test fixture).
    pub created_at: u64,
}

/// One frozen head calibration, in owned form (the builder's input; the
/// zero-copy reader returns [`crate::HeadView`] instead).
#[derive(Debug, Clone, PartialEq)]
pub struct HeadRecord {
    /// Transformer block index.
    pub block: u32,
    /// Attention head index.
    pub head: u32,
    /// Axis-order code (`0..ORDER_CODES`, see [`ORDER_CODES`]).
    pub order_code: u32,
    /// Mean per-sample plan-selection error of the chosen order.
    pub mean_error: f32,
    /// Average bits of the frozen allocation.
    pub avg_bits: f32,
    /// Total weighted quantization cost of the frozen allocation.
    pub total_cost: f32,
    /// Per-block bit codes (one byte per quantization block, each one of
    /// [`BIT_CODES`]).
    pub bit_codes: Vec<u8>,
}
