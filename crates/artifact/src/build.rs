//! The artifact writer.

use crate::crc::{crc32_finish, crc32_update, CRC32_INIT};
use crate::error::ArtifactError;
use crate::format::{
    section, HeadRecord, PlanMeta, BIT_CODES, HEADER_LEN, HEAD_RECORD_LEN, INDEX_ENTRY_LEN, MAGIC,
    ORDER_CODES, VERSION,
};

/// Builds a plan artifact from owned metadata and head records.
///
/// The output of [`ArtifactBuilder::build`] is deterministic: the same
/// metadata and the same records in the same order produce byte-identical
/// artifacts (the basis of the committed golden-fixture gate).
#[derive(Debug, Clone)]
pub struct ArtifactBuilder {
    meta: PlanMeta,
    heads: Vec<HeadRecord>,
}

impl ArtifactBuilder {
    /// Starts an artifact for one plan configuration.
    pub fn new(meta: PlanMeta) -> Self {
        ArtifactBuilder {
            meta,
            heads: Vec::new(),
        }
    }

    /// Appends one frozen head calibration.
    pub fn push_head(&mut self, record: HeadRecord) {
        self.heads.push(record);
    }

    /// Number of head records queued so far.
    pub fn head_count(&self) -> usize {
        self.heads.len()
    }

    /// Serializes the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::BadValue`] when a field is outside its
    /// documented domain (order code, bit codes, calibration bits,
    /// non-finite floats) — the builder refuses to produce an artifact
    /// the reader would reject.
    pub fn build(&self) -> Result<Vec<u8>, ArtifactError> {
        self.validate()?;

        // Payload sections.
        let meta_bytes = encode_meta(&self.meta);
        let mut heads_bytes = Vec::with_capacity(self.heads.len() * HEAD_RECORD_LEN);
        let mut bits_bytes = Vec::new();
        for rec in &self.heads {
            let bits_offset = bits_bytes.len() as u32;
            bits_bytes.extend_from_slice(&rec.bit_codes);
            push_u32(&mut heads_bytes, rec.block);
            push_u32(&mut heads_bytes, rec.head);
            push_u32(&mut heads_bytes, rec.order_code);
            push_u32(&mut heads_bytes, rec.mean_error.to_bits());
            push_u32(&mut heads_bytes, rec.avg_bits.to_bits());
            push_u32(&mut heads_bytes, rec.total_cost.to_bits());
            push_u32(&mut heads_bytes, bits_offset);
            push_u32(&mut heads_bytes, rec.bit_codes.len() as u32);
        }

        // Index table: offsets are relative to the payload start.
        let sections: [(u32, &[u8]); 3] = [
            (section::META, &meta_bytes),
            (section::HEADS, &heads_bytes),
            (section::BITS, &bits_bytes),
        ];
        let mut table = Vec::with_capacity(sections.len() * INDEX_ENTRY_LEN);
        let mut offset = 0u64;
        for (id, bytes) in &sections {
            push_u32(&mut table, *id);
            push_u64(&mut table, offset);
            push_u64(&mut table, bytes.len() as u64);
            offset += bytes.len() as u64;
        }

        let body_len =
            (table.len() + meta_bytes.len() + heads_bytes.len() + bits_bytes.len()) as u64;
        let mut out = Vec::with_capacity(HEADER_LEN + body_len as usize);
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, VERSION);
        push_u32(&mut out, sections.len() as u32);
        push_u64(&mut out, body_len);
        // CRC covers the header prefix (everything before the CRC field)
        // plus the whole body, so any single flipped byte outside the CRC
        // field itself is caught by the checksum.
        let mut crc = crc32_update(CRC32_INIT, &out);
        for part in [&table, &meta_bytes, &heads_bytes, &bits_bytes] {
            crc = crc32_update(crc, part);
        }
        push_u32(&mut out, crc32_finish(crc));
        out.extend_from_slice(&table);
        out.extend_from_slice(&meta_bytes);
        out.extend_from_slice(&heads_bytes);
        out.extend_from_slice(&bits_bytes);
        Ok(out)
    }

    fn validate(&self) -> Result<(), ArtifactError> {
        if !BIT_CODES.contains(&(self.meta.calib_bits.min(255) as u8))
            || self.meta.calib_bits > u8::MAX as u32
        {
            return Err(ArtifactError::BadValue {
                what: "meta.calib_bits",
                value: self.meta.calib_bits as u64,
            });
        }
        for (what, v) in [
            ("meta.budget", self.meta.budget),
            ("meta.alpha", self.meta.alpha),
        ] {
            if !v.is_finite() {
                return Err(ArtifactError::BadValue {
                    what,
                    value: v.to_bits() as u64,
                });
            }
        }
        if self.meta.model.len() > u32::MAX as usize {
            return Err(ArtifactError::BadValue {
                what: "meta.model length",
                value: self.meta.model.len() as u64,
            });
        }
        let mut total_bits = 0usize;
        for rec in &self.heads {
            if rec.order_code >= ORDER_CODES {
                return Err(ArtifactError::BadValue {
                    what: "head.order_code",
                    value: rec.order_code as u64,
                });
            }
            if let Some(&bad) = rec.bit_codes.iter().find(|c| !BIT_CODES.contains(c)) {
                return Err(ArtifactError::BadValue {
                    what: "head.bit_codes",
                    value: bad as u64,
                });
            }
            if rec.bit_codes.len() > u32::MAX as usize {
                return Err(ArtifactError::BadValue {
                    what: "head.bit_codes length",
                    value: rec.bit_codes.len() as u64,
                });
            }
            total_bits += rec.bit_codes.len();
        }
        if total_bits > u32::MAX as usize {
            return Err(ArtifactError::BadValue {
                what: "bits section length",
                value: total_bits as u64,
            });
        }
        Ok(())
    }
}

fn encode_meta(meta: &PlanMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(52 + meta.model.len());
    push_u32(&mut out, meta.model.len() as u32);
    out.extend_from_slice(meta.model.as_bytes());
    for v in [
        meta.frames,
        meta.height,
        meta.width,
        meta.block_rows,
        meta.block_cols,
        meta.calib_bits,
        meta.budget.to_bits(),
        meta.alpha.to_bits(),
    ] {
        push_u32(&mut out, v);
    }
    // Version-2 tail: plan epoch and calibration timestamp.
    push_u64(&mut out, meta.epoch);
    push_u64(&mut out, meta.created_at);
    out
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> PlanMeta {
        PlanMeta {
            model: "Tiny-2x2x2".to_string(),
            frames: 2,
            height: 2,
            width: 2,
            block_rows: 4,
            block_cols: 4,
            calib_bits: 4,
            budget: 4.8,
            alpha: 0.5,
            epoch: 3,
            created_at: 1_700_000_000,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let mut b = ArtifactBuilder::new(meta());
        b.push_head(HeadRecord {
            block: 0,
            head: 1,
            order_code: 2,
            mean_error: 0.1,
            avg_bits: 4.5,
            total_cost: 2.0,
            bit_codes: vec![8, 4, 0, 2],
        });
        assert_eq!(b.head_count(), 1);
        assert_eq!(b.build().unwrap(), b.build().unwrap());
    }

    #[test]
    fn rejects_out_of_domain_fields() {
        let mut m = meta();
        m.calib_bits = 3;
        assert!(matches!(
            ArtifactBuilder::new(m).build(),
            Err(ArtifactError::BadValue {
                what: "meta.calib_bits",
                ..
            })
        ));
        let mut m = meta();
        m.budget = f32::NAN;
        assert!(ArtifactBuilder::new(m).build().is_err());

        let mut b = ArtifactBuilder::new(meta());
        b.push_head(HeadRecord {
            block: 0,
            head: 0,
            order_code: ORDER_CODES,
            mean_error: 0.0,
            avg_bits: 8.0,
            total_cost: 0.0,
            bit_codes: vec![8],
        });
        assert!(matches!(
            b.build(),
            Err(ArtifactError::BadValue {
                what: "head.order_code",
                ..
            })
        ));

        let mut b = ArtifactBuilder::new(meta());
        b.push_head(HeadRecord {
            block: 0,
            head: 0,
            order_code: 0,
            mean_error: 0.0,
            avg_bits: 8.0,
            total_cost: 0.0,
            bit_codes: vec![8, 3],
        });
        assert!(matches!(
            b.build(),
            Err(ArtifactError::BadValue {
                what: "head.bit_codes",
                value: 3,
            })
        ));
    }
}
