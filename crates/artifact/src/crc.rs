//! Table-driven CRC-32/IEEE (the zlib/PNG polynomial, reflected).
//!
//! Hand-rolled because this crate is zero-dependency. The streaming API
//! (`crc32_update` / `crc32_finish`) lets the artifact checksum cover
//! discontiguous ranges (the header prefix plus the body) without
//! concatenating them.

/// Initial state for a streaming CRC-32 computation.
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                POLY ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Feeds `bytes` into a streaming CRC-32 state.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    bytes.iter().fold(state, |crc, &b| {
        (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize]
    })
}

/// Finalizes a streaming CRC-32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// CRC-32/IEEE of one contiguous byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32/IEEE check value over the standard test string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\0\0\0\0"), 0x2144_DF1C);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..=data.len() {
            let state = crc32_update(CRC32_INIT, &data[..split]);
            let state = crc32_update(state, &data[split..]);
            assert_eq!(crc32_finish(state), crc32(data));
        }
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"paro plan artifact";
        let base = crc32(data);
        for i in 0..data.len() {
            let mut copy = *data;
            copy[i] ^= 0x40;
            assert_ne!(crc32(&copy), base, "flip at byte {i} went undetected");
        }
    }
}
