//! `paro-artifact`: versioned, checksummed, zero-copy plan artifacts.
//!
//! PARO freezes per-head reorder plans and mixed-precision bit
//! allocations **offline** and serves from them forever after — yet until
//! this crate, every serving process recomputed calibration and kept the
//! frozen plans only in an in-memory cache. A *plan artifact* is the
//! missing durable form: a single binary file holding every frozen head
//! calibration of one `(model, grid, method)` configuration, designed so
//! a fleet of serving processes can share one precomputed file.
//!
//! # Design
//!
//! - **Fixed-layout little-endian sections behind an index table.** The
//!   28-byte header (magic, version, body length, CRC-32) is followed by
//!   a section index and the section payloads. Opening an artifact
//!   validates the header, checksum and section bounds **once**; after
//!   that, readers borrow sub-slices of the original buffer — the bulk
//!   per-block bit codes are returned as `&[u8]` directly into the file
//!   image, with no per-field deserialization pass (see
//!   [`HeadView::bit_codes`]). The layout is mmap-friendly: nothing in it
//!   requires ownership, alignment above 1, or a rewrite on load.
//! - **Safe.** The crate is `#![forbid(unsafe_code)]`: "zero-copy" means
//!   borrowed slices and on-demand fixed-width integer decoding, never
//!   transmutes. A corrupted, truncated or version-bumped artifact is
//!   rejected with a typed [`ArtifactError`]; it can never cause
//!   undefined behavior.
//! - **Zero dependencies**, like `paro-trace` and `paro-failpoint`, so it
//!   sits below `paro-core` in the crate graph.
//!
//! The byte-level format contract — stability promises included — lives
//! in `docs/ARTIFACT.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use paro_artifact::{ArtifactBuilder, ArtifactView, HeadRecord, PlanMeta};
//!
//! let meta = PlanMeta {
//!     model: "Tiny-2x2x2".to_string(),
//!     frames: 2,
//!     height: 2,
//!     width: 2,
//!     block_rows: 4,
//!     block_cols: 4,
//!     calib_bits: 4,
//!     budget: 4.8,
//!     alpha: 0.5,
//!     epoch: 0,
//!     created_at: 0,
//! };
//! let mut builder = ArtifactBuilder::new(meta);
//! builder.push_head(HeadRecord {
//!     block: 0,
//!     head: 0,
//!     order_code: 0,
//!     mean_error: 0.01,
//!     avg_bits: 4.0,
//!     total_cost: 1.5,
//!     bit_codes: vec![8, 4, 2, 0],
//! });
//! let bytes = builder.build().unwrap();
//!
//! let view = ArtifactView::parse(&bytes).unwrap();
//! assert_eq!(view.meta().model, "Tiny-2x2x2");
//! let head = view.head(0).unwrap();
//! // The bit codes are borrowed straight out of `bytes` — zero-copy.
//! assert_eq!(head.bit_codes, &[8, 4, 2, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod crc;
mod error;
mod format;
mod owned;
mod view;

pub use build::ArtifactBuilder;
pub use crc::{crc32, crc32_finish, crc32_update, CRC32_INIT};
pub use error::ArtifactError;
pub use format::{
    section, HeadRecord, PlanMeta, BIT_CODES, HEADER_LEN, HEAD_RECORD_LEN, INDEX_ENTRY_LEN, MAGIC,
    MIN_VERSION, ORDER_CODES, VERSION,
};
pub use owned::OwnedArtifact;
pub use view::{ArtifactView, HeadView};
