//! The zero-copy artifact reader.

use crate::crc::{crc32_finish, crc32_update, CRC32_INIT};
use crate::error::ArtifactError;
use crate::format::{
    section, PlanMeta, BIT_CODES, HEADER_LEN, HEAD_RECORD_LEN, INDEX_ENTRY_LEN, MAGIC, MIN_VERSION,
    ORDER_CODES, VERSION,
};

/// A parsed, validated, borrowed view over an artifact byte buffer.
///
/// [`ArtifactView::parse`] validates the header, checksum and section
/// bounds once; every accessor afterwards is bounds-checked slicing plus
/// fixed-width little-endian decoding. The bulk per-block bit codes are
/// returned as sub-slices of the original buffer ([`HeadView::bit_codes`])
/// — no allocation per head, which is what makes an mmap'd or otherwise
/// borrowed buffer cheap to serve from.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactView<'a> {
    version: u32,
    meta: PlanMeta,
    heads: &'a [u8],
    bits: &'a [u8],
}

/// One head record, decoded on demand from the heads section.
///
/// All fields are public: a head view is plain data. `bit_codes` borrows
/// straight out of the artifact buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadView<'a> {
    /// Transformer block index.
    pub block: u32,
    /// Attention head index.
    pub head: u32,
    /// Axis-order code (`0..ORDER_CODES`).
    pub order_code: u32,
    /// Mean per-sample plan-selection error of the chosen order.
    pub mean_error: f32,
    /// Average bits of the frozen allocation.
    pub avg_bits: f32,
    /// Total weighted quantization cost of the frozen allocation.
    pub total_cost: f32,
    /// Per-block bit codes, borrowed from the artifact buffer.
    pub bit_codes: &'a [u8],
}

impl<'a> ArtifactView<'a> {
    /// Parses and validates an artifact buffer.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ArtifactError`] describing the first defect
    /// found: truncation, bad magic, unsupported version, length or
    /// checksum mismatch, or a malformed/missing/duplicated section.
    pub fn parse(data: &'a [u8]) -> Result<Self, ArtifactError> {
        if data.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN,
                have: data.len(),
            });
        }
        if data[..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&data[..8]);
            return Err(ArtifactError::BadMagic { found });
        }
        let version = read_u32(data, 8);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let section_count = read_u32(data, 12) as usize;
        let body_len = read_u64(data, 16);
        let actual_body = (data.len() - HEADER_LEN) as u64;
        if body_len != actual_body {
            return Err(ArtifactError::LengthMismatch {
                declared: body_len,
                actual: actual_body,
            });
        }
        let stored_crc = read_u32(data, 24);
        let computed = crc32_finish(crc32_update(
            crc32_update(CRC32_INIT, &data[..24]),
            &data[HEADER_LEN..],
        ));
        if stored_crc != computed {
            return Err(ArtifactError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }

        let table_len =
            section_count
                .checked_mul(INDEX_ENTRY_LEN)
                .ok_or(ArtifactError::BadValue {
                    what: "header.section_count",
                    value: section_count as u64,
                })?;
        let body = &data[HEADER_LEN..];
        if body.len() < table_len {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN + table_len,
                have: data.len(),
            });
        }
        let payload = &body[table_len..];

        let mut meta_bytes: Option<&[u8]> = None;
        let mut heads: Option<&[u8]> = None;
        let mut bits: Option<&[u8]> = None;
        for i in 0..section_count {
            let entry = &body[i * INDEX_ENTRY_LEN..(i + 1) * INDEX_ENTRY_LEN];
            let id = read_u32(entry, 0);
            let offset = read_u64(entry, 4);
            let len = read_u64(entry, 12);
            let end = offset
                .checked_add(len)
                .ok_or_else(|| ArtifactError::BadSection {
                    id,
                    reason: "offset + length overflows".to_string(),
                })?;
            if end > payload.len() as u64 {
                return Err(ArtifactError::BadSection {
                    id,
                    reason: format!("extends to byte {end} of a {}-byte payload", payload.len()),
                });
            }
            let slice = &payload[offset as usize..end as usize];
            let slot = match id {
                section::META => &mut meta_bytes,
                section::HEADS => &mut heads,
                section::BITS => &mut bits,
                // Unknown section ids are skipped: a newer writer may add
                // sections this reader does not know about.
                _ => continue,
            };
            if slot.is_some() {
                return Err(ArtifactError::DuplicateSection { id });
            }
            *slot = Some(slice);
        }
        let meta_bytes = meta_bytes.ok_or(ArtifactError::MissingSection { id: section::META })?;
        let heads = heads.ok_or(ArtifactError::MissingSection { id: section::HEADS })?;
        let bits = bits.ok_or(ArtifactError::MissingSection { id: section::BITS })?;

        let meta = decode_meta(meta_bytes, version)?;
        if heads.len() % HEAD_RECORD_LEN != 0 {
            return Err(ArtifactError::BadSection {
                id: section::HEADS,
                reason: format!(
                    "length {} is not a multiple of the {HEAD_RECORD_LEN}-byte record size",
                    heads.len()
                ),
            });
        }
        Ok(ArtifactView {
            version,
            meta,
            heads,
            bits,
        })
    }

    /// The decoded plan metadata.
    pub fn meta(&self) -> &PlanMeta {
        &self.meta
    }

    /// The format version the artifact was written with (between
    /// [`MIN_VERSION`] and [`VERSION`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the artifact predates the current format version. Legacy
    /// artifacts stay fully readable; fields added since their version
    /// decode to documented defaults (epoch 0, created_at 0).
    pub fn is_legacy(&self) -> bool {
        self.version < VERSION
    }

    /// Number of head records in the artifact.
    pub fn head_count(&self) -> usize {
        self.heads.len() / HEAD_RECORD_LEN
    }

    /// Decodes the `i`-th head record.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::BadValue`] for an out-of-range index and
    /// [`ArtifactError::BadSection`] when the record's bit-code range
    /// falls outside the bits section.
    pub fn head(&self, i: usize) -> Result<HeadView<'a>, ArtifactError> {
        if i >= self.head_count() {
            return Err(ArtifactError::BadValue {
                what: "head index",
                value: i as u64,
            });
        }
        let rec = &self.heads[i * HEAD_RECORD_LEN..(i + 1) * HEAD_RECORD_LEN];
        let bits_offset = read_u32(rec, 24) as usize;
        let bits_len = read_u32(rec, 28) as usize;
        let end = bits_offset
            .checked_add(bits_len)
            .filter(|&end| end <= self.bits.len())
            .ok_or_else(|| ArtifactError::BadSection {
                id: section::HEADS,
                reason: format!(
                    "record {i} bit codes [{bits_offset}, {bits_offset}+{bits_len}) exceed the \
                     {}-byte bits section",
                    self.bits.len()
                ),
            })?;
        Ok(HeadView {
            block: read_u32(rec, 0),
            head: read_u32(rec, 4),
            order_code: read_u32(rec, 8),
            mean_error: f32::from_bits(read_u32(rec, 12)),
            avg_bits: f32::from_bits(read_u32(rec, 16)),
            total_cost: f32::from_bits(read_u32(rec, 20)),
            bit_codes: &self.bits[bits_offset..end],
        })
    }

    /// Finds the record for `(block, head)` by linear scan.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from [`ArtifactView::head`].
    pub fn find(&self, block: u32, head: u32) -> Result<Option<HeadView<'a>>, ArtifactError> {
        for i in 0..self.head_count() {
            let view = self.head(i)?;
            if view.block == block && view.head == head {
                return Ok(Some(view));
            }
        }
        Ok(None)
    }

    /// Decodes every record and checks all values against their domains:
    /// order codes in `0..ORDER_CODES`, bit codes in `{0, 2, 4, 8}`,
    /// floats finite.
    ///
    /// [`ArtifactView::parse`] already guarantees structural soundness;
    /// this adds the semantic pass a serving process wants before trusting
    /// a plan.
    ///
    /// # Errors
    ///
    /// Returns the first domain violation found.
    pub fn verify_deep(&self) -> Result<(), ArtifactError> {
        for i in 0..self.head_count() {
            let head = self.head(i)?;
            if head.order_code >= ORDER_CODES {
                return Err(ArtifactError::BadValue {
                    what: "head.order_code",
                    value: head.order_code as u64,
                });
            }
            if let Some(&bad) = head.bit_codes.iter().find(|c| !BIT_CODES.contains(c)) {
                return Err(ArtifactError::BadValue {
                    what: "head.bit_codes",
                    value: bad as u64,
                });
            }
            for (what, v) in [
                ("head.mean_error", head.mean_error),
                ("head.avg_bits", head.avg_bits),
                ("head.total_cost", head.total_cost),
            ] {
                if !v.is_finite() {
                    return Err(ArtifactError::BadValue {
                        what,
                        value: v.to_bits() as u64,
                    });
                }
            }
        }
        Ok(())
    }
}

fn decode_meta(bytes: &[u8], version: u32) -> Result<PlanMeta, ArtifactError> {
    let need = |n: usize| -> Result<(), ArtifactError> {
        if bytes.len() < n {
            Err(ArtifactError::BadSection {
                id: section::META,
                reason: format!("needs {n} bytes, section holds {}", bytes.len()),
            })
        } else {
            Ok(())
        }
    };
    // Fixed meta tail after the model name: eight u32 fields in every
    // version, plus the version-2 epoch/created_at u64 pair.
    let tail = if version >= 2 { 48 } else { 32 };
    need(4)?;
    let name_len = read_u32(bytes, 0) as usize;
    let fixed = 4usize
        .checked_add(name_len)
        .and_then(|n| n.checked_add(tail));
    let total = fixed.ok_or(ArtifactError::BadSection {
        id: section::META,
        reason: "model name length overflows".to_string(),
    })?;
    need(total)?;
    if bytes.len() != total {
        return Err(ArtifactError::BadSection {
            id: section::META,
            reason: format!("holds {} bytes, layout needs exactly {total}", bytes.len()),
        });
    }
    let model = std::str::from_utf8(&bytes[4..4 + name_len])
        .map_err(|_| ArtifactError::BadSection {
            id: section::META,
            reason: "model name is not UTF-8".to_string(),
        })?
        .to_string();
    let base = 4 + name_len;
    let (epoch, created_at) = if version >= 2 {
        (read_u64(bytes, base + 32), read_u64(bytes, base + 40))
    } else {
        // Version-1 artifacts predate the lifecycle fields: they are the
        // original offline calibration, by definition epoch 0, undated.
        (0, 0)
    };
    Ok(PlanMeta {
        model,
        frames: read_u32(bytes, base),
        height: read_u32(bytes, base + 4),
        width: read_u32(bytes, base + 8),
        block_rows: read_u32(bytes, base + 12),
        block_cols: read_u32(bytes, base + 16),
        calib_bits: read_u32(bytes, base + 20),
        budget: f32::from_bits(read_u32(bytes, base + 24)),
        alpha: f32::from_bits(read_u32(bytes, base + 28)),
        epoch,
        created_at,
    })
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("caller checked bounds"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("caller checked bounds"))
}
