//! Forward-compatibility gates.
//!
//! Two committed fixtures, two promises:
//!
//! - `golden_v2.paro` — the **current** format. Rebuilding it from the
//!   canonical values must reproduce the committed bytes exactly; any
//!   silent layout drift fails here. Regenerate only for an intentional,
//!   version-bumped change:
//!
//!   ```sh
//!   PARO_UPDATE_GOLDEN=1 cargo test -p paro-artifact --test golden
//!   ```
//!
//!   and commit the new file alongside a `VERSION` bump and a
//!   `docs/ARTIFACT.md` update.
//!
//! - `golden_v1.paro` — a **legacy** artifact written before the
//!   lifecycle fields existed. The builder can no longer produce it, but
//!   the reader must parse it forever, reporting it as legacy with the
//!   documented field defaults (epoch 0, created_at 0). This fixture is
//!   never regenerated.

use std::path::PathBuf;

use paro_artifact::{ArtifactBuilder, ArtifactView, HeadRecord, OwnedArtifact, PlanMeta, VERSION};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// The canonical fixture content: stable values chosen by hand, never
/// derived from anything that could drift.
fn golden_builder() -> ArtifactBuilder {
    let mut builder = ArtifactBuilder::new(PlanMeta {
        model: "GoldenNet-2x2x2".to_string(),
        frames: 2,
        height: 2,
        width: 2,
        block_rows: 4,
        block_cols: 4,
        calib_bits: 4,
        budget: 4.5,
        alpha: 0.5,
        epoch: 2,
        created_at: 1_750_000_000,
    });
    builder.push_head(HeadRecord {
        block: 0,
        head: 0,
        order_code: 0,
        mean_error: 0.125,
        avg_bits: 4.0,
        total_cost: 1.5,
        bit_codes: vec![8, 4, 2, 2],
    });
    builder.push_head(HeadRecord {
        block: 0,
        head: 1,
        order_code: 3,
        mean_error: 0.25,
        avg_bits: 3.5,
        total_cost: 2.75,
        bit_codes: vec![4, 4, 4, 0],
    });
    builder.push_head(HeadRecord {
        block: 1,
        head: 0,
        order_code: 5,
        mean_error: 0.0625,
        avg_bits: 6.0,
        total_cost: 0.5,
        bit_codes: vec![8, 8, 4, 4],
    });
    builder
}

#[test]
fn golden_artifact_is_stable_and_readable() {
    let built = golden_builder().build().unwrap();
    let path = fixture_path("golden_v2.paro");

    if std::env::var_os("PARO_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &built).unwrap();
    }

    let committed = OwnedArtifact::read_from_file(&path)
        .expect("the committed golden fixture must always parse");
    assert_eq!(
        committed.as_bytes(),
        &built[..],
        "rebuilding the golden artifact changed its bytes: the format drifted \
         without a version bump (see the module docs for how to proceed)"
    );

    let view = ArtifactView::parse(committed.as_bytes()).unwrap();
    assert_eq!(view.version(), VERSION);
    assert!(!view.is_legacy());
    assert_eq!(view.meta().model, "GoldenNet-2x2x2");
    assert_eq!(view.meta().epoch, 2);
    assert_eq!(view.meta().created_at, 1_750_000_000);
    assert_eq!(view.head_count(), 3);
    view.verify_deep().unwrap();
    let head = view.head(2).unwrap();
    assert_eq!((head.block, head.head, head.order_code), (1, 0, 5));
    assert_eq!(head.bit_codes, &[8, 8, 4, 4]);
    assert_eq!(head.avg_bits, 6.0);
    assert_eq!(VERSION, 2, "bump the fixture name with the format version");
}

#[test]
fn legacy_v1_artifact_stays_readable_with_defaulted_lifecycle_fields() {
    let committed = OwnedArtifact::read_from_file(&fixture_path("golden_v1.paro"))
        .expect("the committed v1 fixture must stay readable forever");
    let view = ArtifactView::parse(committed.as_bytes()).unwrap();

    assert_eq!(view.version(), 1);
    assert!(
        view.is_legacy(),
        "a version-1 artifact must report as legacy under the current reader"
    );
    // Pre-lifecycle fields decode exactly as written…
    assert_eq!(view.meta().model, "GoldenNet-2x2x2");
    assert_eq!(
        (view.meta().frames, view.meta().height, view.meta().width),
        (2, 2, 2)
    );
    assert_eq!(view.meta().block_rows, 4);
    assert_eq!(view.meta().block_cols, 4);
    assert_eq!(view.meta().calib_bits, 4);
    assert_eq!(view.meta().budget, 4.5);
    assert_eq!(view.meta().alpha, 0.5);
    // …and the lifecycle fields default per the documented contract.
    assert_eq!(view.meta().epoch, 0);
    assert_eq!(view.meta().created_at, 0);

    assert_eq!(view.head_count(), 3);
    view.verify_deep().unwrap();
    let head = view.head(2).unwrap();
    assert_eq!((head.block, head.head, head.order_code), (1, 0, 5));
    assert_eq!(head.bit_codes, &[8, 8, 4, 4]);
}
