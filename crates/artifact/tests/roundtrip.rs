//! Round-trip and corruption-rejection coverage for the artifact format.
//!
//! The corruption tests are exhaustive rather than sampled: every single
//! byte of a real artifact is flipped, and every truncation length is
//! tried. A validated reader must reject all of them with a typed error —
//! never panic, never silently accept.

use paro_artifact::{
    crc32, crc32_finish, crc32_update, ArtifactBuilder, ArtifactError, ArtifactView, HeadRecord,
    OwnedArtifact, PlanMeta, CRC32_INIT, HEADER_LEN, MAGIC, VERSION,
};

fn sample_meta() -> PlanMeta {
    PlanMeta {
        model: "Tiny-2x4x4".to_string(),
        frames: 2,
        height: 4,
        width: 4,
        block_rows: 8,
        block_cols: 8,
        calib_bits: 4,
        budget: 4.8,
        alpha: 0.5,
        epoch: 7,
        created_at: 1_717_171_717,
    }
}

fn sample_bytes() -> Vec<u8> {
    let mut builder = ArtifactBuilder::new(sample_meta());
    for block in 0..2u32 {
        for head in 0..4u32 {
            // Deterministic but varied values; a tiny LCG keeps the crate
            // zero-dependency even for dev-dependencies.
            let mut state = ((block * 4 + head) as u64).wrapping_mul(6_364_136_223_846_793_005) + 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 33) as u32
            };
            let codes: Vec<u8> = (0..16)
                .map(|_| [0u8, 2, 4, 8][(next() % 4) as usize])
                .collect();
            let avg = codes.iter().map(|&c| c as f32).sum::<f32>() / codes.len() as f32;
            builder.push_head(HeadRecord {
                block,
                head,
                order_code: next() % 6,
                mean_error: (next() % 1000) as f32 / 1000.0,
                avg_bits: avg,
                total_cost: (next() % 5000) as f32 / 100.0,
                bit_codes: codes,
            });
        }
    }
    builder.build().unwrap()
}

#[test]
fn round_trip_preserves_every_field() {
    let bytes = sample_bytes();
    let view = ArtifactView::parse(&bytes).unwrap();
    assert_eq!(view.meta(), &sample_meta());
    assert_eq!(view.head_count(), 8);
    view.verify_deep().unwrap();
    for i in 0..view.head_count() {
        let head = view.head(i).unwrap();
        assert_eq!(head.block, (i / 4) as u32);
        assert_eq!(head.head, (i % 4) as u32);
        assert_eq!(head.bit_codes.len(), 16);
    }
    assert_eq!(
        view.find(1, 3).unwrap().unwrap(),
        view.head(7).unwrap(),
        "find must locate the same record as positional access"
    );
    assert_eq!(view.find(9, 0).unwrap(), None);
}

#[test]
fn bit_codes_borrow_from_the_input_buffer() {
    let bytes = sample_bytes();
    let view = ArtifactView::parse(&bytes).unwrap();
    let head = view.head(0).unwrap();
    let range = bytes.as_ptr_range();
    let codes_start = head.bit_codes.as_ptr();
    assert!(
        range.contains(&codes_start),
        "bit codes must be a sub-slice of the artifact buffer (zero-copy), not a copy"
    );
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let bytes = sample_bytes();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5A;
        let result = ArtifactView::parse(&corrupt);
        assert!(
            result.is_err(),
            "flipping byte {i} of {} was silently accepted",
            bytes.len()
        );
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        let result = ArtifactView::parse(&bytes[..len]);
        assert!(result.is_err(), "truncation to {len} bytes was accepted");
    }
}

#[test]
fn version_bump_is_rejected_with_typed_error() {
    let mut bytes = sample_bytes();
    // Patch the version field, then recompute the checksum so the version
    // check — not the CRC — is what rejects the artifact.
    bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    let crc = crc32_finish(crc32_update(
        crc32_update(CRC32_INIT, &bytes[..24]),
        &bytes[HEADER_LEN..],
    ));
    bytes[24..28].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(
        ArtifactView::parse(&bytes),
        Err(ArtifactError::UnsupportedVersion {
            found: VERSION + 1,
            supported: VERSION,
        })
    );
}

#[test]
fn bad_magic_and_short_buffers_are_typed() {
    assert_eq!(
        ArtifactView::parse(&[]),
        Err(ArtifactError::Truncated {
            needed: HEADER_LEN,
            have: 0,
        })
    );
    let mut bytes = sample_bytes();
    bytes[..8].copy_from_slice(b"NOTAPLAN");
    assert_eq!(
        ArtifactView::parse(&bytes),
        Err(ArtifactError::BadMagic {
            found: *b"NOTAPLAN",
        })
    );
    assert_ne!(MAGIC, *b"NOTAPLAN");
}

#[test]
fn owned_artifact_round_trips_through_a_file() {
    let bytes = sample_bytes();
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("roundtrip.paro");
    std::fs::write(&path, &bytes).unwrap();

    let owned = OwnedArtifact::read_from_file(&path).unwrap();
    assert_eq!(owned.as_bytes(), &bytes[..]);
    assert_eq!(owned.view().head_count(), 8);
    assert_eq!(crc32(owned.as_bytes()), crc32(&bytes));

    let missing = dir.join("does_not_exist.paro");
    match OwnedArtifact::read_from_file(&missing) {
        Err(ArtifactError::Io { path, .. }) => {
            assert!(path.contains("does_not_exist.paro"));
        }
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn stray_bytes_after_declared_body_are_rejected() {
    let mut bytes = sample_bytes();
    bytes.push(0);
    assert!(matches!(
        ArtifactView::parse(&bytes),
        Err(ArtifactError::LengthMismatch { .. })
    ));
}
