//! Per-bitwidth integer micro-kernels with runtime SIMD dispatch.
//!
//! This module is the compute backend of [`crate::packed_attn_v`] and
//! [`crate::quantized_gemm_i32`]: tile-wise unpack of 2/4/8-bit packed
//! codes fused with an i32 multiply-accumulate against the `V` / `B`
//! operand rows. It dispatches on the same [`Kernel`] value as the f32
//! kernels in [`paro_tensor::kernel`], so one process runs one
//! consistent kernel set.
//!
//! Structure shared by every kernel (one body macro, per-ISA
//! instantiations):
//!
//! - rows are walked in [`TILE`]-code tiles; each tile is unpacked from
//!   the packed bytes straight into a zero-point-centered stack buffer
//!   (AVX2 widens 8 codes at a time — `vpsrlvd` variable shifts for
//!   2/4-bit, `vpmovzxbd` for 8-bit), then MAC'd immediately while it is
//!   L1-hot — the packed map bytes are streamed exactly once per tile;
//! - a centered code of 0 contributes nothing in exact i32 arithmetic
//!   and skips its `V` row (the element-level sparsity below the B0
//!   block bypass); the AVX2 block path multiplies zeros instead — its
//!   register-blocked MAC keeps the accumulators in ymm registers across
//!   the whole tile and stays branch-free, which is worth more than the
//!   skipped work, and a zero term is exactly a no-op in i32;
//! - the MAC itself is a `d`-wide i32 axpy (`vpmulld` + `vpaddd` on
//!   SIMD paths).
//!
//! i32 addition is associative, and no kernel reorders the per-output
//! accumulation anyway, so every path is **bit-identical** — pinned by
//! `tests/kernel_equivalence.rs` on all kernels the host supports.

// The SIMD paths need `unsafe` for intrinsics; bounds are established by
// the safe dispatchers (shapes validated by the callers).
#![allow(unsafe_code)]

use crate::Bitwidth;
pub use paro_tensor::kernel::{active_kernel, Kernel};

/// Elements unpacked per tile: one stack buffer refill of the inner MAC
/// loop. 64 codes = 16 packed bytes at 2 bits — a cache-line-ish chunk.
pub(crate) const TILE: usize = 64;

/// k-dimension tile edge of the unpacked-operand GEMM (shared with the
/// f32 drivers).
pub(crate) const TILE_K: usize = paro_tensor::kernel::TILE_K;

/// Scalar bit-extract of `tile.len()` codes starting at element `elem0`,
/// zero-point-centered. Codes never straddle bytes (8 % bits == 0).
#[inline(always)]
fn unpack_centered_scalar(
    bytes: &[u8],
    bits: usize,
    mask: u8,
    elem0: usize,
    zp: i32,
    tile: &mut [i32],
) {
    for (ti, slot) in tile.iter_mut().enumerate() {
        let bit0 = (elem0 + ti) * bits;
        *slot = ((bytes[bit0 / 8] >> (bit0 % 8)) & mask) as i32 - zp;
    }
}

#[inline(always)]
fn unpack_b2_scalar(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
    unpack_centered_scalar(bytes, 2, 0x3, elem0, zp, tile);
}

#[inline(always)]
fn unpack_b4_scalar(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
    unpack_centered_scalar(bytes, 4, 0xF, elem0, zp, tile);
}

#[inline(always)]
fn unpack_b8_scalar(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
    unpack_centered_scalar(bytes, 8, 0xFF, elem0, zp, tile);
}

/// `arow[j] += mv · vrow[j]` over `min(arow.len(), vrow.len())` lanes.
#[inline(always)]
fn axpy_i32_scalar(arow: &mut [i32], vrow: &[i32], mv: i32) {
    for (o, &vv) in arow.iter_mut().zip(vrow) {
        *o += mv * vv;
    }
}

/// Shared block-GEMM body: per block row, [`TILE`]-code tiles are
/// unpacked (centered) and immediately MAC'd against the matching `V`
/// rows. `$unpack` and `$axpy` select the ISA.
macro_rules! block_body {
    ($unpack:ident, $axpy:ident, $bytes:ident, $zp:ident, $h:ident, $w:ident, $v:ident, $d:ident, $acc:ident) => {{
        let mut tile = [0i32; TILE];
        for lr in 0..$h {
            let row_base = lr * $w;
            let arow = &mut $acc[lr * $d..(lr + 1) * $d];
            let mut k0 = 0usize;
            while k0 < $w {
                let t = TILE.min($w - k0);
                $unpack($bytes, row_base + k0, $zp, &mut tile[..t]);
                for (ti, &mv) in tile[..t].iter().enumerate() {
                    if mv == 0 {
                        continue; // zero operand: no contribution in exact i32
                    }
                    let vrow = &$v[(k0 + ti) * $d..(k0 + ti + 1) * $d];
                    $axpy(arow, vrow, mv);
                }
                k0 += t;
            }
        }
    }};
}

macro_rules! scalar_block_driver {
    ($name:ident, $unpack:ident) => {
        fn $name(bytes: &[u8], zp: i32, h: usize, w: usize, v: &[i32], d: usize, acc: &mut [i32]) {
            block_body!($unpack, axpy_i32_scalar, bytes, zp, h, w, v, d, acc)
        }
    };
}

scalar_block_driver!(block_gemm_scalar_b2, unpack_b2_scalar);
scalar_block_driver!(block_gemm_scalar_b4, unpack_b4_scalar);
scalar_block_driver!(block_gemm_scalar_b8, unpack_b8_scalar);

/// Shared unpacked-operand GEMM body ([`crate::quantized_gemm_i32`]'s
/// inner loops): `A` codes are centered on the fly, rows walk the `k`
/// dimension in [`TILE_K`] segments so each `B` panel is streamed once
/// per tile, zero `A` operands skip their row.
macro_rules! gemm_body {
    ($axpy:ident, $a:ident, $za:ident, $b:ident, $m:ident, $k:ident, $n:ident, $out:ident) => {{
        for i in 0..$m {
            let arow = &$a[i * $k..(i + 1) * $k];
            let orow = &mut $out[i * $n..(i + 1) * $n];
            let mut k0 = 0usize;
            while k0 < $k {
                let kt = TILE_K.min($k - k0);
                for (p, &code) in arow[k0..k0 + kt].iter().enumerate() {
                    let av = code as i32 - $za;
                    if av == 0 {
                        continue; // exact zero contribution
                    }
                    let brow = &$b[(k0 + p) * $n..(k0 + p + 1) * $n];
                    $axpy(orow, brow, av);
                }
                k0 += kt;
            }
        }
    }};
}

fn gemm_i32_scalar(a: &[u32], za: i32, b: &[i32], m: usize, k: usize, n: usize, out: &mut [i32]) {
    gemm_body!(axpy_i32_scalar, a, za, b, m, k, n, out)
}

/// Scalar reference of the affine quantize map — element for element
/// exactly [`crate::QuantParams::quantize`]:
/// `clamp(round(x/s) + z, 0, max_code)` with `round` half-away-from-zero
/// and the sum taken in i64.
fn quantize_codes_scalar(values: &[f32], scale: f32, zp: i32, max_code: u32, out: &mut [u32]) {
    for (o, &x) in out.iter_mut().zip(values) {
        let q = ((x / scale).round() as i64).saturating_add(zp as i64);
        *o = q.clamp(0, max_code as i64) as u32;
    }
}

/// Scalar reference of the symmetric INT8 map — element for element
/// exactly [`crate::SymmetricInt8::quantize_rowwise`]'s inner loop:
/// non-finite values quantize to 0, everything else to
/// `clamp(round(x/s), −127, 127)`.
fn quantize_symmetric_scalar(values: &[f32], scale: f32, out: &mut [i8]) {
    for (o, &x) in out.iter_mut().zip(values) {
        let v = if x.is_finite() { x } else { 0.0 };
        *o = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
}

/// Rounded magnitudes below this bound (2³⁰) convert to i32 exactly and
/// cannot overflow the i32 zero-point add (itself bounded by it); any
/// other lane — including NaN/∞ — falls back to the scalar map.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
const QUANTIZE_SAFE_BOUND: f32 = 1_073_741_824.0;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    use super::{
        axpy_i32_scalar, quantize_codes_scalar, quantize_symmetric_scalar, unpack_b2_scalar,
        unpack_b4_scalar, unpack_b8_scalar, QUANTIZE_SAFE_BOUND, TILE, TILE_K,
    };
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `arow[j] += mv · vrow[j]`, 4 i32 lanes (`pmulld` is the SSE4.1
    /// requirement).
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn axpy_i32_sse41(arow: &mut [i32], vrow: &[i32], mv: i32) {
        let n = arow.len().min(vrow.len());
        let vm = _mm_set1_epi32(mv);
        let mut j = 0usize;
        while j + 4 <= n {
            let o = _mm_loadu_si128(arow.as_ptr().add(j) as *const __m128i);
            let v = _mm_loadu_si128(vrow.as_ptr().add(j) as *const __m128i);
            _mm_storeu_si128(
                arow.as_mut_ptr().add(j) as *mut __m128i,
                _mm_add_epi32(o, _mm_mullo_epi32(vm, v)),
            );
            j += 4;
        }
        axpy_i32_scalar(&mut arow[j..n], &vrow[j..n], mv);
    }

    /// `arow[j] += mv · vrow[j]`, 8 i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_i32_avx2(arow: &mut [i32], vrow: &[i32], mv: i32) {
        let n = arow.len().min(vrow.len());
        let vm = _mm256_set1_epi32(mv);
        let mut j = 0usize;
        while j + 8 <= n {
            let o = _mm256_loadu_si256(arow.as_ptr().add(j) as *const __m256i);
            let v = _mm256_loadu_si256(vrow.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(
                arow.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(o, _mm256_mullo_epi32(vm, v)),
            );
            j += 8;
        }
        axpy_i32_scalar(&mut arow[j..n], &vrow[j..n], mv);
    }

    /// Register-blocked tile MAC: `arow[j] += Σ_ti tile[ti] · v[ti·d + j]`.
    ///
    /// The per-code axpy shape stores the accumulator row after every
    /// code and reloads it for the next, putting a store→load forward on
    /// the critical path `t` times per row. Here the accumulators live in
    /// ymm registers across the whole tile — the row is loaded/stored
    /// once per 32-column chunk — and zero codes are multiplied instead
    /// of branched around: in exact i32 a zero operand contributes
    /// nothing either way, so bit-identity with the skipping scalar body
    /// holds while the inner loop stays branch-free.
    ///
    /// # Safety
    /// Caller must ensure AVX2 and that `v` holds at least
    /// `tile.len() · d` elements; `arow` must be at least `d` long.
    #[target_feature(enable = "avx2")]
    unsafe fn tile_mac_avx2(tile: &[i32], v: &[i32], d: usize, arow: &mut [i32]) {
        debug_assert!(v.len() >= tile.len() * d);
        debug_assert!(arow.len() >= d);
        let mut j = 0usize;
        // 64-column chunks first — 8 ymm accumulators fill the register
        // file and cover the model's whole `d = 64` row in one pass.
        while j + 64 <= d {
            let ap = arow.as_mut_ptr().add(j);
            let mut a = [
                _mm256_loadu_si256(ap as *const __m256i),
                _mm256_loadu_si256(ap.add(8) as *const __m256i),
                _mm256_loadu_si256(ap.add(16) as *const __m256i),
                _mm256_loadu_si256(ap.add(24) as *const __m256i),
                _mm256_loadu_si256(ap.add(32) as *const __m256i),
                _mm256_loadu_si256(ap.add(40) as *const __m256i),
                _mm256_loadu_si256(ap.add(48) as *const __m256i),
                _mm256_loadu_si256(ap.add(56) as *const __m256i),
            ];
            for (ti, &mv) in tile.iter().enumerate() {
                let vm = _mm256_set1_epi32(mv);
                let vp = v.as_ptr().add(ti * d + j);
                for (c, acc) in a.iter_mut().enumerate() {
                    *acc = _mm256_add_epi32(
                        *acc,
                        _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp.add(8 * c) as *const __m256i)),
                    );
                }
            }
            for (c, acc) in a.iter().enumerate() {
                _mm256_storeu_si256(ap.add(8 * c) as *mut __m256i, *acc);
            }
            j += 64;
        }
        while j + 32 <= d {
            let ap = arow.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_si256(ap as *const __m256i);
            let mut a1 = _mm256_loadu_si256(ap.add(8) as *const __m256i);
            let mut a2 = _mm256_loadu_si256(ap.add(16) as *const __m256i);
            let mut a3 = _mm256_loadu_si256(ap.add(24) as *const __m256i);
            for (ti, &mv) in tile.iter().enumerate() {
                let vm = _mm256_set1_epi32(mv);
                let vp = v.as_ptr().add(ti * d + j);
                let m0 = _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp as *const __m256i));
                let m1 = _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp.add(8) as *const __m256i));
                let m2 = _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp.add(16) as *const __m256i));
                let m3 = _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp.add(24) as *const __m256i));
                a0 = _mm256_add_epi32(a0, m0);
                a1 = _mm256_add_epi32(a1, m1);
                a2 = _mm256_add_epi32(a2, m2);
                a3 = _mm256_add_epi32(a3, m3);
            }
            _mm256_storeu_si256(ap as *mut __m256i, a0);
            _mm256_storeu_si256(ap.add(8) as *mut __m256i, a1);
            _mm256_storeu_si256(ap.add(16) as *mut __m256i, a2);
            _mm256_storeu_si256(ap.add(24) as *mut __m256i, a3);
            j += 32;
        }
        while j + 8 <= d {
            let ap = arow.as_mut_ptr().add(j);
            let mut a0 = _mm256_loadu_si256(ap as *const __m256i);
            for (ti, &mv) in tile.iter().enumerate() {
                let vm = _mm256_set1_epi32(mv);
                let vp = v.as_ptr().add(ti * d + j);
                a0 = _mm256_add_epi32(
                    a0,
                    _mm256_mullo_epi32(vm, _mm256_loadu_si256(vp as *const __m256i)),
                );
            }
            _mm256_storeu_si256(ap as *mut __m256i, a0);
            j += 8;
        }
        if j < d {
            for (ti, &mv) in tile.iter().enumerate() {
                if mv == 0 {
                    continue;
                }
                axpy_i32_scalar(&mut arow[j..d], &v[ti * d + j..ti * d + d], mv);
            }
        }
    }

    /// AVX2 2-bit unpack: after realigning to a byte boundary (4 codes
    /// per byte), each 16-bit load yields 8 codes via `vpsrlvd` variable
    /// shifts + mask, widened to centered i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_b2_avx2(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
        let t = tile.len();
        let mut ti = 0usize;
        while ti < t && (elem0 + ti) & 3 != 0 {
            ti += 1;
        }
        unpack_b2_scalar(bytes, elem0, zp, &mut tile[..ti.min(t)]);
        let zpv = _mm256_set1_epi32(zp);
        let shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
        let mask = _mm256_set1_epi32(0x3);
        while ti + 8 <= t {
            let base = (elem0 + ti) / 4;
            let word = u16::from_le_bytes([bytes[base], bytes[base + 1]]) as i32;
            let codes = _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(word), shifts), mask);
            _mm256_storeu_si256(
                tile.as_mut_ptr().add(ti) as *mut __m256i,
                _mm256_sub_epi32(codes, zpv),
            );
            ti += 8;
        }
        unpack_b2_scalar(bytes, elem0 + ti, zp, &mut tile[ti..]);
    }

    /// AVX2 4-bit unpack: one 32-bit load (2 codes per byte) yields 8
    /// codes via `vpsrlvd` + mask.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_b4_avx2(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
        let t = tile.len();
        let mut ti = 0usize;
        while ti < t && (elem0 + ti) & 1 != 0 {
            ti += 1;
        }
        unpack_b4_scalar(bytes, elem0, zp, &mut tile[..ti.min(t)]);
        let zpv = _mm256_set1_epi32(zp);
        let shifts = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
        let mask = _mm256_set1_epi32(0xF);
        while ti + 8 <= t {
            let base = (elem0 + ti) / 2;
            let word = i32::from_le_bytes([
                bytes[base],
                bytes[base + 1],
                bytes[base + 2],
                bytes[base + 3],
            ]);
            let codes = _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(word), shifts), mask);
            _mm256_storeu_si256(
                tile.as_mut_ptr().add(ti) as *mut __m256i,
                _mm256_sub_epi32(codes, zpv),
            );
            ti += 8;
        }
        unpack_b4_scalar(bytes, elem0 + ti, zp, &mut tile[ti..]);
    }

    /// AVX2 8-bit unpack: `vpmovzxbd` widens 8 bytes to 8 i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_b8_avx2(bytes: &[u8], elem0: usize, zp: i32, tile: &mut [i32]) {
        let t = tile.len();
        let zpv = _mm256_set1_epi32(zp);
        let mut ti = 0usize;
        while ti + 8 <= t {
            let lo = _mm_loadl_epi64(bytes.as_ptr().add(elem0 + ti) as *const __m128i);
            let codes = _mm256_cvtepu8_epi32(lo);
            _mm256_storeu_si256(
                tile.as_mut_ptr().add(ti) as *mut __m256i,
                _mm256_sub_epi32(codes, zpv),
            );
            ti += 8;
        }
        unpack_b8_scalar(bytes, elem0 + ti, zp, &mut tile[ti..]);
    }

    macro_rules! simd_block_driver {
        ($name:ident, $feature:literal, $unpack:ident, $axpy:ident) => {
            /// # Safety
            /// Caller must ensure the CPU supports the named feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $name(
                bytes: &[u8],
                zp: i32,
                h: usize,
                w: usize,
                v: &[i32],
                d: usize,
                acc: &mut [i32],
            ) {
                block_body!($unpack, $axpy, bytes, zp, h, w, v, d, acc)
            }
        };
    }

    // SSE4.1 keeps the scalar unpack (no variable shifts before AVX2) and
    // vectorizes the d-wide MAC, which dominates: O(t·d) vs O(t) per tile.
    simd_block_driver!(
        block_gemm_sse41_b2,
        "sse4.1",
        unpack_b2_scalar,
        axpy_i32_sse41
    );
    simd_block_driver!(
        block_gemm_sse41_b4,
        "sse4.1",
        unpack_b4_scalar,
        axpy_i32_sse41
    );
    simd_block_driver!(
        block_gemm_sse41_b8,
        "sse4.1",
        unpack_b8_scalar,
        axpy_i32_sse41
    );

    /// The AVX2 block drivers swap the per-code axpy for the
    /// register-blocked [`tile_mac_avx2`] — same tile walk as
    /// `block_body!`, different MAC shape.
    macro_rules! avx2_block_driver {
        ($name:ident, $unpack:ident) => {
            /// # Safety
            /// Caller must ensure the CPU supports AVX2.
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(
                bytes: &[u8],
                zp: i32,
                h: usize,
                w: usize,
                v: &[i32],
                d: usize,
                acc: &mut [i32],
            ) {
                let mut tile = [0i32; TILE];
                for lr in 0..h {
                    let row_base = lr * w;
                    let arow = &mut acc[lr * d..(lr + 1) * d];
                    let mut k0 = 0usize;
                    while k0 < w {
                        let t = TILE.min(w - k0);
                        $unpack(bytes, row_base + k0, zp, &mut tile[..t]);
                        tile_mac_avx2(&tile[..t], &v[k0 * d..], d, arow);
                        k0 += t;
                    }
                }
            }
        };
    }

    avx2_block_driver!(block_gemm_avx2_b2, unpack_b2_avx2);
    avx2_block_driver!(block_gemm_avx2_b4, unpack_b4_avx2);
    avx2_block_driver!(block_gemm_avx2_b8, unpack_b8_avx2);

    /// # Safety
    /// Caller must ensure the CPU supports SSE4.1.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn gemm_i32_sse41(
        a: &[u32],
        za: i32,
        b: &[i32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        gemm_body!(axpy_i32_sse41, a, za, b, m, k, n, out)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_i32_avx2(
        a: &[u32],
        za: i32,
        b: &[i32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        gemm_body!(axpy_i32_avx2, a, za, b, m, k, n, out)
    }

    // Bit-identical SIMD replication of the scalar quantize map. IEEE
    // division is correctly rounded, so `divps` matches scalar `/` lane
    // for lane; `f32::round` (half away from zero) is *not* a hardware
    // rounding mode, so it is rebuilt as truncate + bump: a lane whose
    // dropped fraction is ≥ 0.5 adds ±1 with the operand's sign. The
    // bump is only ever nonzero below 2²⁴ (larger floats are already
    // integers), so the add is exact; any lane whose rounded magnitude
    // reaches [`QUANTIZE_SAFE_BOUND`] — including NaN/∞, which fail the
    // ordered compare — is redone through the scalar map instead of
    // trusting `cvtps` out-of-range behavior.

    /// # Safety
    /// Caller must ensure SSE4.1 and `|zp| ≤ 2³⁰`.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn quantize_codes_sse41(
        values: &[f32],
        scale: f32,
        zp: i32,
        max_code: u32,
        out: &mut [u32],
    ) {
        let sv = _mm_set1_ps(scale);
        let half = _mm_set1_ps(0.5);
        let one = _mm_set1_ps(1.0);
        let signmask = _mm_set1_ps(-0.0);
        let bound = _mm_set1_ps(QUANTIZE_SAFE_BOUND);
        let zpv = _mm_set1_epi32(zp);
        let zero = _mm_setzero_si128();
        let maxv = _mm_set1_epi32(max_code as i32);
        let n = values.len().min(out.len());
        let mut j = 0usize;
        while j + 4 <= n {
            let x = _mm_loadu_ps(values.as_ptr().add(j));
            let r = _mm_div_ps(x, sv);
            let t = _mm_round_ps(r, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
            let frac = _mm_andnot_ps(signmask, _mm_sub_ps(r, t));
            let bump = _mm_and_ps(
                _mm_cmpge_ps(frac, half),
                _mm_or_ps(_mm_and_ps(signmask, r), one),
            );
            let rounded = _mm_add_ps(t, bump);
            let safe = _mm_cmplt_ps(_mm_andnot_ps(signmask, rounded), bound);
            if _mm_movemask_ps(safe) != 0xF {
                quantize_codes_scalar(&values[j..j + 4], scale, zp, max_code, &mut out[j..j + 4]);
                j += 4;
                continue;
            }
            let code = _mm_add_epi32(_mm_cvtps_epi32(rounded), zpv);
            let clamped = _mm_min_epi32(_mm_max_epi32(code, zero), maxv);
            _mm_storeu_si128(out.as_mut_ptr().add(j) as *mut __m128i, clamped);
            j += 4;
        }
        quantize_codes_scalar(&values[j..n], scale, zp, max_code, &mut out[j..n]);
    }

    /// # Safety
    /// Caller must ensure AVX2 and `|zp| ≤ 2³⁰`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_codes_avx2(
        values: &[f32],
        scale: f32,
        zp: i32,
        max_code: u32,
        out: &mut [u32],
    ) {
        let sv = _mm256_set1_ps(scale);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let signmask = _mm256_set1_ps(-0.0);
        let bound = _mm256_set1_ps(QUANTIZE_SAFE_BOUND);
        let zpv = _mm256_set1_epi32(zp);
        let zero = _mm256_setzero_si256();
        let maxv = _mm256_set1_epi32(max_code as i32);
        let n = values.len().min(out.len());
        let mut j = 0usize;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(values.as_ptr().add(j));
            let r = _mm256_div_ps(x, sv);
            let t = _mm256_round_ps(r, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
            let frac = _mm256_andnot_ps(signmask, _mm256_sub_ps(r, t));
            let bump = _mm256_and_ps(
                _mm256_cmp_ps(frac, half, _CMP_GE_OQ),
                _mm256_or_ps(_mm256_and_ps(signmask, r), one),
            );
            let rounded = _mm256_add_ps(t, bump);
            let safe = _mm256_cmp_ps(_mm256_andnot_ps(signmask, rounded), bound, _CMP_LT_OQ);
            if _mm256_movemask_ps(safe) != 0xFF {
                quantize_codes_scalar(&values[j..j + 8], scale, zp, max_code, &mut out[j..j + 8]);
                j += 8;
                continue;
            }
            let code = _mm256_add_epi32(_mm256_cvtps_epi32(rounded), zpv);
            let clamped = _mm256_min_epi32(_mm256_max_epi32(code, zero), maxv);
            _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, clamped);
            j += 8;
        }
        quantize_codes_scalar(&values[j..n], scale, zp, max_code, &mut out[j..n]);
    }

    // The symmetric map needs no safe-lane fallback: the dispatcher
    // guarantees a positive finite scale, so `x/s` is NaN-free for any
    // finite `x`, non-finite inputs are masked to 0 (an ordered `|x| < ∞`
    // compare rejects NaN too), and the ±127 clamp happens in f32 *before*
    // the i32 convert — even an ∞ quotient (subnormal scale) clamps to
    // exactly what the scalar map produces.

    /// # Safety
    /// Caller must ensure SSE4.1 and a positive finite `scale`.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn quantize_symmetric_sse41(values: &[f32], scale: f32, out: &mut [i8]) {
        let sv = _mm_set1_ps(scale);
        let half = _mm_set1_ps(0.5);
        let one = _mm_set1_ps(1.0);
        let signmask = _mm_set1_ps(-0.0);
        let inf = _mm_set1_ps(f32::INFINITY);
        let lim = _mm_set1_ps(127.0);
        let nlim = _mm_set1_ps(-127.0);
        let n = values.len().min(out.len());
        let mut tmp = [0i32; 4];
        let mut j = 0usize;
        while j + 4 <= n {
            let x = _mm_loadu_ps(values.as_ptr().add(j));
            let finite = _mm_cmplt_ps(_mm_andnot_ps(signmask, x), inf);
            let r = _mm_div_ps(x, sv);
            let t = _mm_round_ps(r, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
            let frac = _mm_andnot_ps(signmask, _mm_sub_ps(r, t));
            let bump = _mm_and_ps(
                _mm_cmpge_ps(frac, half),
                _mm_or_ps(_mm_and_ps(signmask, r), one),
            );
            let rounded = _mm_add_ps(t, bump);
            let clamped = _mm_min_ps(_mm_max_ps(rounded, nlim), lim);
            let q = _mm_cvtps_epi32(_mm_and_ps(clamped, finite));
            _mm_storeu_si128(tmp.as_mut_ptr() as *mut __m128i, q);
            for (o, &c) in out[j..j + 4].iter_mut().zip(&tmp) {
                *o = c as i8;
            }
            j += 4;
        }
        quantize_symmetric_scalar(&values[j..n], scale, &mut out[j..n]);
    }

    /// # Safety
    /// Caller must ensure AVX2 and a positive finite `scale`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_symmetric_avx2(values: &[f32], scale: f32, out: &mut [i8]) {
        let sv = _mm256_set1_ps(scale);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let signmask = _mm256_set1_ps(-0.0);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let lim = _mm256_set1_ps(127.0);
        let nlim = _mm256_set1_ps(-127.0);
        let n = values.len().min(out.len());
        let mut tmp = [0i32; 8];
        let mut j = 0usize;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(values.as_ptr().add(j));
            let finite = _mm256_cmp_ps(_mm256_andnot_ps(signmask, x), inf, _CMP_LT_OQ);
            let r = _mm256_div_ps(x, sv);
            let t = _mm256_round_ps(r, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
            let frac = _mm256_andnot_ps(signmask, _mm256_sub_ps(r, t));
            let bump = _mm256_and_ps(
                _mm256_cmp_ps(frac, half, _CMP_GE_OQ),
                _mm256_or_ps(_mm256_and_ps(signmask, r), one),
            );
            let rounded = _mm256_add_ps(t, bump);
            let clamped = _mm256_min_ps(_mm256_max_ps(rounded, nlim), lim);
            let q = _mm256_cvtps_epi32(_mm256_and_ps(clamped, finite));
            _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, q);
            for (o, &c) in out[j..j + 8].iter_mut().zip(&tmp) {
                *o = c as i8;
            }
            j += 8;
        }
        quantize_symmetric_scalar(&values[j..n], scale, &mut out[j..n]);
    }
}

/// One packed block's `acc[r][c] += Σ_k (code[r][k] − zp) · v[k][c]` on
/// the chosen kernel. `bytes` holds `h·w` packed codes at `bits`;
/// `v` is `w·d` centered i32; `acc` is `h·d`. Shapes are validated by
/// the public wrapper ([`crate::packed_block_gemm_i32_with`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_gemm(
    kernel: Kernel,
    bits: Bitwidth,
    bytes: &[u8],
    zp: i32,
    h: usize,
    w: usize,
    v: &[i32],
    d: usize,
    acc: &mut [i32],
) {
    debug_assert!(kernel.is_supported());
    match (kernel, bits) {
        (_, Bitwidth::B0) => {} // nothing stored, nothing accumulated
        (Kernel::Scalar, Bitwidth::B2) => block_gemm_scalar_b2(bytes, zp, h, w, v, d, acc),
        (Kernel::Scalar, Bitwidth::B4) => block_gemm_scalar_b4(bytes, zp, h, w, v, d, acc),
        (Kernel::Scalar, Bitwidth::B8) => block_gemm_scalar_b8(bytes, zp, h, w, v, d, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel` comes from `active_kernel`/`is_supported`
        // checks, so the required CPU feature is present.
        (Kernel::Sse41, Bitwidth::B2) => unsafe {
            x86::block_gemm_sse41_b2(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        (Kernel::Sse41, Bitwidth::B4) => unsafe {
            x86::block_gemm_sse41_b4(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        (Kernel::Sse41, Bitwidth::B8) => unsafe {
            x86::block_gemm_sse41_b8(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        (Kernel::Avx2, Bitwidth::B2) => unsafe {
            x86::block_gemm_avx2_b2(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        (Kernel::Avx2, Bitwidth::B4) => unsafe {
            x86::block_gemm_avx2_b4(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        (Kernel::Avx2, Bitwidth::B8) => unsafe {
            x86::block_gemm_avx2_b8(bytes, zp, h, w, v, d, acc)
        },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (_, Bitwidth::B2) => block_gemm_scalar_b2(bytes, zp, h, w, v, d, acc),
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (_, Bitwidth::B4) => block_gemm_scalar_b4(bytes, zp, h, w, v, d, acc),
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (_, Bitwidth::B8) => block_gemm_scalar_b8(bytes, zp, h, w, v, d, acc),
    }
}

/// `out[i][j] += Σ_p (a[i][p] − za) · b[p][j]` (`b` pre-centered) on the
/// chosen kernel — the tiled inner loops of [`crate::quantized_gemm_i32`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i32(
    kernel: Kernel,
    a: &[u32],
    za: i32,
    b: &[i32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    debug_assert!(kernel.is_supported());
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match kernel {
        Kernel::Scalar => gemm_i32_scalar(a, za, b, m, k, n, out),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel` comes from `active_kernel`/`is_supported`
        // checks, so the required CPU feature is present.
        Kernel::Sse41 => unsafe { x86::gemm_i32_sse41(a, za, b, m, k, n, out) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => unsafe { x86::gemm_i32_avx2(a, za, b, m, k, n, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => gemm_i32_scalar(a, za, b, m, k, n, out),
    }
}

/// `out[i] = clamp(round(values[i]/scale) + zp, 0, max_code)` on the
/// chosen kernel — the per-block inner loop of
/// [`crate::MixedPrecisionMap::quantize`]. Bit-identical to
/// [`crate::QuantParams::quantize`] per element on every kernel: unsafe
/// lanes (rounded magnitude ≥ 2³⁰, NaN, ∞) and out-of-bound zero points
/// are redone through the scalar map.
pub(crate) fn quantize_codes(
    kernel: Kernel,
    values: &[f32],
    scale: f32,
    zp: i32,
    max_code: u32,
    out: &mut [u32],
) {
    debug_assert!(kernel.is_supported());
    debug_assert_eq!(values.len(), out.len());
    // The SIMD paths add `zp` in i32; a zero point past the safe bound
    // could overflow the add, so such a block runs scalar end to end.
    // (Min-max calibration never produces one — correctness just must
    // not depend on that.)
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    let zp_safe = zp.unsigned_abs() <= 1 << 30;
    match kernel {
        Kernel::Scalar => quantize_codes_scalar(values, scale, zp, max_code, out),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Sse41 => {
            if zp_safe {
                // SAFETY: `kernel` comes from `active_kernel`/
                // `is_supported` checks, so the required CPU feature is
                // present; `zp` was just bounds-checked.
                unsafe { x86::quantize_codes_sse41(values, scale, zp, max_code, out) }
            } else {
                quantize_codes_scalar(values, scale, zp, max_code, out)
            }
        }
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => {
            if zp_safe {
                // SAFETY: as above.
                unsafe { x86::quantize_codes_avx2(values, scale, zp, max_code, out) }
            } else {
                quantize_codes_scalar(values, scale, zp, max_code, out)
            }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => quantize_codes_scalar(values, scale, zp, max_code, out),
    }
}

/// `out[i] = clamp(round(values[i]/scale), −127, 127)` as signed INT8
/// (non-finite values → 0) on the chosen kernel — the per-row inner loop
/// of [`crate::SymmetricInt8::quantize_rowwise`]. Bit-identical to the
/// scalar map on every kernel.
pub(crate) fn quantize_symmetric_i8(kernel: Kernel, values: &[f32], scale: f32, out: &mut [i8]) {
    debug_assert!(kernel.is_supported());
    debug_assert_eq!(values.len(), out.len());
    // A non-positive or non-finite scale routes NaN quotients through the
    // scalar map's NaN semantics; rowwise calibration never produces one
    // — correctness just must not depend on that.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    let scale_safe = scale.is_finite() && scale > 0.0;
    match kernel {
        Kernel::Scalar => quantize_symmetric_scalar(values, scale, out),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Sse41 => {
            if scale_safe {
                // SAFETY: `kernel` comes from `active_kernel`/
                // `is_supported` checks, so the required CPU feature is
                // present; `scale` was just bounds-checked.
                unsafe { x86::quantize_symmetric_sse41(values, scale, out) }
            } else {
                quantize_symmetric_scalar(values, scale, out)
            }
        }
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => {
            if scale_safe {
                // SAFETY: as above.
                unsafe { x86::quantize_symmetric_avx2(values, scale, out) }
            } else {
                quantize_symmetric_scalar(values, scale, out)
            }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => quantize_symmetric_scalar(values, scale, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackedCodes;

    /// Every supported kernel must produce the same accumulators as the
    /// scalar reference on a shape that exercises realignment (odd tile
    /// starts for the packed unpack) and ragged axpy tails.
    #[test]
    fn block_gemm_kernels_agree_on_odd_shapes() {
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let (h, w, d) = (3, TILE + 21, 7); // w odd → mid-byte rows for b2/b4
            let max = bits.max_code();
            let codes: Vec<u32> = (0..h * w).map(|i| (i as u32 * 7 + 3) % (max + 1)).collect();
            let packed = PackedCodes::pack(&codes, bits).unwrap();
            let v: Vec<i32> = (0..w * d).map(|i| (i as i32 % 9) - 4).collect();
            let zp = (max / 2) as i32;
            let mut want = vec![0i32; h * d];
            block_gemm(
                Kernel::Scalar,
                bits,
                packed.as_bytes(),
                zp,
                h,
                w,
                &v,
                d,
                &mut want,
            );
            for kernel in Kernel::supported() {
                let mut got = vec![0i32; h * d];
                block_gemm(kernel, bits, packed.as_bytes(), zp, h, w, &v, d, &mut got);
                assert_eq!(got, want, "kernel={kernel} bits={bits}");
            }
        }
    }

    #[test]
    fn quantize_kernels_agree_including_unsafe_lanes() {
        // Mixed ordinary / half-way / huge / non-finite values with an odd
        // length (lane tail), plus a zero point past the SIMD-safe bound
        // (whole-call scalar fallback). Half-way values pin the
        // round-half-away-from-zero rebuild against nearest-even `cvtps`.
        let mut values: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.173).collect();
        values.extend([
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            3.0e12,
            -3.0e12,
            0.5,
            -0.5,
            1.5,
            2.5,
        ]);
        for (scale, zp) in [(0.01f32, 7), (1.0e-30, 0), (1.0, -3), (0.37, i32::MAX)] {
            let mut want = vec![0u32; values.len()];
            quantize_codes(Kernel::Scalar, &values, scale, zp, 255, &mut want);
            for kernel in Kernel::supported() {
                let mut got = vec![0u32; values.len()];
                quantize_codes(kernel, &values, scale, zp, 255, &mut got);
                assert_eq!(got, want, "kernel={kernel} scale={scale} zp={zp}");
            }
        }
    }

    #[test]
    fn symmetric_quantize_kernels_agree_including_nonfinite_lanes() {
        // Ordinary values (odd length → lane tail), exact halves pinning
        // the round-half-away rebuild, non-finite inputs (→ 0), and an
        // ∞ quotient from a subnormal scale (→ ±127 via the f32 clamp).
        let mut values: Vec<f32> = (0..41).map(|i| (i as f32 - 20.0) * 6.3).collect();
        values.extend([
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.5,
            -0.5,
            1.5,
            -2.5,
            -0.0,
            1.0e30,
        ]);
        for scale in [1.0f32, 0.173, 1.0e-39, 1.0e30, f32::NAN, -1.0, 0.0] {
            let mut want = vec![0i8; values.len()];
            quantize_symmetric_scalar(&values, scale, &mut want);
            for kernel in Kernel::supported() {
                let mut got = vec![0i8; values.len()];
                quantize_symmetric_i8(kernel, &values, scale, &mut got);
                assert_eq!(got, want, "kernel={kernel} scale={scale}");
            }
        }
    }

    #[test]
    fn gemm_kernels_agree_on_ragged_tails() {
        let (m, k, n) = (4, TILE_K + 5, 13); // n not a lane multiple
        let a: Vec<u32> = (0..m * k).map(|i| (i as u32 * 11) % 256).collect();
        let b: Vec<i32> = (0..k * n).map(|i| (i as i32 % 17) - 8).collect();
        let mut want = vec![0i32; m * n];
        gemm_i32(Kernel::Scalar, &a, 128, &b, m, k, n, &mut want);
        for kernel in Kernel::supported() {
            let mut got = vec![0i32; m * n];
            gemm_i32(kernel, &a, 128, &b, m, k, n, &mut got);
            assert_eq!(got, want, "kernel={kernel}");
        }
    }
}
