//! Quantization substrate for the PARO reproduction.
//!
//! Implements the quantization machinery of the paper's Sec. II-B and
//! Sec. III: uniform affine quantization `x ≈ s·(x_int − z)` with dynamic
//! min-max calibration, the grouping granularities used by the baselines and
//! by PARO (per-tensor, per-row, per-dimension, per-block), bit-packed
//! integer storage for 2/4/8-bit codes, and an integer GEMM that checks the
//! fixed-point compute path against the fake-quantized float path.
//!
//! # Example
//!
//! ```
//! use paro_quant::{Bitwidth, QuantParams};
//!
//! let values = [0.0f32, 0.25, 0.5, 1.0];
//! let params = QuantParams::calibrate_minmax(&values, Bitwidth::B8);
//! for &v in &values {
//!     let code = params.quantize(v);
//!     let back = params.dequantize(code);
//!     // Within half a quantization step.
//!     assert!((v - back).abs() <= params.scale() / 2.0 + 1e-6);
//! }
//! ```

// `deny` rather than `forbid`: the SIMD micro-kernels in `kernels` and
// `qkt` opt back in with a module-level `allow` — every other module
// stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitwidth;
mod error;
mod gemm;
mod grouping;
mod int_attn;
mod kernels;
mod mixed_map;
mod packed;
mod params;
mod qkt;
mod symmetric;

pub use bitwidth::{Bitwidth, ParseBitwidthError};
pub use error::QuantError;
pub use gemm::{
    dequantize_gemm, quantized_gemm_i32, quantized_gemm_i32_with, QuantizedGemmOperand,
};
pub use grouping::{
    fake_quant_2d, fake_quant_blocks, group_stats, BlockGrid, GroupStats, Grouping,
};
pub use int_attn::{
    packed_attn_v, packed_attn_v_with, packed_block_gemm_i32, packed_block_gemm_i32_with,
    PackedAttnV, PerColCodes,
};
pub use mixed_map::{MixedPrecisionMap, PARAM_BYTES_PER_BLOCK};
pub use packed::PackedCodes;
pub use params::QuantParams;
pub use qkt::{qkt_block_i32, qkt_block_i32_with};
pub use symmetric::SymmetricInt8;
