//! i8×i8→i32 score micro-kernels for the `QKᵀ` path.
//!
//! The output-aware score computation (paper Sec. IV-B) multiplies a
//! panel of symmetric INT8 `Q` codes against a panel of (possibly
//! LDZ-truncated) INT8 `K` codes, one block at a time. This module is
//! that multiply: `acc[r][c] = Σ_j q[r][j] · k[c][j]` over contiguous
//! row-major panels, dispatched on the same [`Kernel`] value as every
//! other hot loop in the workspace.
//!
//! The SIMD paths widen 16 (SSE4.1) or 32 (AVX2) signed bytes to i16
//! lanes (`pmovsxbw`) and multiply-accumulate pairs into i32 lanes
//! (`pmaddwd` — exact: |product| ≤ 127² = 16129, and a pair sum fits
//! i16×2 comfortably inside i32). Every product is exact and i32
//! addition is associative, so the horizontal lane sum equals the
//! scalar left-to-right sum **bit for bit** on any input — pinned by
//! `tests/qkt_equivalence.rs` on all kernels the host supports.
//!
//! Accumulators do not overflow for any realistic head dimension:
//! |acc| ≤ d·127², so i32 holds every `d` up to ~133 000.

// The SIMD paths need `unsafe` for intrinsics; bounds are established by
// the safe dispatchers (shapes validated by the public wrappers).
#![allow(unsafe_code)]

use crate::QuantError;
use paro_tensor::kernel::{active_kernel, Kernel};

fn qkt_scalar(q: &[i8], h: usize, k: &[i8], w: usize, d: usize, acc: &mut [i32]) {
    for r in 0..h {
        let qrow = &q[r * d..(r + 1) * d];
        let arow = &mut acc[r * w..(r + 1) * w];
        for (c, slot) in arow.iter_mut().enumerate() {
            let krow = &k[c * d..(c + 1) * d];
            let mut sum = 0i32;
            for (&a, &b) in qrow.iter().zip(krow) {
                sum += a as i32 * b as i32;
            }
            *slot = sum;
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Horizontal sum of 4 i32 lanes (exact — i32 addition commutes).
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn hsum_epi32_sse(v: __m128i) -> i32 {
        let hi = _mm_add_epi32(v, _mm_shuffle_epi32(v, 0b01_00_11_10));
        _mm_cvtsi128_si32(_mm_add_epi32(hi, _mm_shuffle_epi32(hi, 0b00_00_00_01)))
    }

    /// i8 dot product over `n` elements, 16 bytes per step.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn dot_i8_sse41(a: *const i8, b: *const i8, n: usize) -> i32 {
        let mut accv = _mm_setzero_si128();
        let mut j = 0usize;
        while j + 16 <= n {
            let av = _mm_loadu_si128(a.add(j) as *const __m128i);
            let bv = _mm_loadu_si128(b.add(j) as *const __m128i);
            let alo = _mm_cvtepi8_epi16(av);
            let ahi = _mm_cvtepi8_epi16(_mm_srli_si128(av, 8));
            let blo = _mm_cvtepi8_epi16(bv);
            let bhi = _mm_cvtepi8_epi16(_mm_srli_si128(bv, 8));
            accv = _mm_add_epi32(accv, _mm_madd_epi16(alo, blo));
            accv = _mm_add_epi32(accv, _mm_madd_epi16(ahi, bhi));
            j += 16;
        }
        let mut sum = hsum_epi32_sse(accv);
        while j < n {
            sum += *a.add(j) as i32 * *b.add(j) as i32;
            j += 1;
        }
        sum
    }

    /// i8 dot product over `n` elements, 32 bytes per step.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_avx2(a: *const i8, b: *const i8, n: usize) -> i32 {
        let mut accv = _mm256_setzero_si256();
        let mut j = 0usize;
        while j + 32 <= n {
            let av = _mm256_loadu_si256(a.add(j) as *const __m256i);
            let bv = _mm256_loadu_si256(b.add(j) as *const __m256i);
            let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
            let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
            let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
            let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
            accv = _mm256_add_epi32(accv, _mm256_madd_epi16(alo, blo));
            accv = _mm256_add_epi32(accv, _mm256_madd_epi16(ahi, bhi));
            j += 32;
        }
        if j + 16 <= n {
            let av = _mm_loadu_si128(a.add(j) as *const __m128i);
            let bv = _mm_loadu_si128(b.add(j) as *const __m128i);
            accv = _mm256_add_epi32(
                accv,
                _mm256_madd_epi16(_mm256_cvtepi8_epi16(av), _mm256_cvtepi8_epi16(bv)),
            );
            j += 16;
        }
        let lanes = _mm_add_epi32(
            _mm256_castsi256_si128(accv),
            _mm256_extracti128_si256(accv, 1),
        );
        let mut sum = hsum_epi32_sse(lanes);
        while j < n {
            sum += *a.add(j) as i32 * *b.add(j) as i32;
            j += 1;
        }
        sum
    }

    /// # Safety
    /// Caller must ensure SSE4.1 and validated panel shapes.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn qkt_sse41(
        q: &[i8],
        h: usize,
        k: &[i8],
        w: usize,
        d: usize,
        acc: &mut [i32],
    ) {
        for r in 0..h {
            let qp = q.as_ptr().add(r * d);
            let arow = &mut acc[r * w..(r + 1) * w];
            for (c, slot) in arow.iter_mut().enumerate() {
                *slot = dot_i8_sse41(qp, k.as_ptr().add(c * d), d);
            }
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 and validated panel shapes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn qkt_avx2(
        q: &[i8],
        h: usize,
        k: &[i8],
        w: usize,
        d: usize,
        acc: &mut [i32],
    ) {
        for r in 0..h {
            let qp = q.as_ptr().add(r * d);
            let arow = &mut acc[r * w..(r + 1) * w];
            for (c, slot) in arow.iter_mut().enumerate() {
                *slot = dot_i8_avx2(qp, k.as_ptr().add(c * d), d);
            }
        }
    }
}

/// `acc[r][c] = Σ_j q[r][j] · k[c][j]` on the chosen kernel over
/// contiguous row-major panels (`q` is `h·d`, `k` is `w·d` — `k` rows
/// are *keys*, i.e. the panel is already transposed relative to the
/// score matrix). Results overwrite `acc` (`h·w`).
fn qkt_i8_i32(kernel: Kernel, q: &[i8], h: usize, k: &[i8], w: usize, d: usize, acc: &mut [i32]) {
    debug_assert!(kernel.is_supported());
    match kernel {
        Kernel::Scalar => qkt_scalar(q, h, k, w, d, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel` comes from `active_kernel`/`is_supported`
        // checks, so the required CPU feature is present; shapes are
        // validated by the public wrappers.
        Kernel::Sse41 => unsafe { x86::qkt_sse41(q, h, k, w, d, acc) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => unsafe { x86::qkt_avx2(q, h, k, w, d, acc) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => qkt_scalar(q, h, k, w, d, acc),
    }
}

/// One `QKᵀ` block's integer score accumulators on the active
/// [`Kernel`]: `acc[r][c] = Σ_j q[r·d+j] · k[c·d+j]`.
///
/// `q` holds `h` query rows of `d` codes, `k` holds `w` key rows of `d`
/// codes (both row-major, contiguous), and `acc` receives `h·w` i32
/// results (overwritten, not accumulated).
///
/// # Errors
///
/// Returns [`QuantError::PackedLengthMismatch`] if any slice length
/// disagrees with `h`, `w`, `d`.
pub fn qkt_block_i32(
    q: &[i8],
    h: usize,
    k: &[i8],
    w: usize,
    d: usize,
    acc: &mut [i32],
) -> Result<(), QuantError> {
    qkt_block_i32_with(q, h, k, w, d, acc, active_kernel())
}

/// [`qkt_block_i32`] on an explicit [`Kernel`]. Accumulators are
/// bit-identical across kernels (exact products, associative i32
/// accumulation).
///
/// # Errors
///
/// Same as [`qkt_block_i32`].
pub fn qkt_block_i32_with(
    q: &[i8],
    h: usize,
    k: &[i8],
    w: usize,
    d: usize,
    acc: &mut [i32],
    kernel: Kernel,
) -> Result<(), QuantError> {
    if q.len() != h * d {
        return Err(QuantError::PackedLengthMismatch {
            bytes: q.len(),
            expected: h * d,
        });
    }
    if k.len() != w * d {
        return Err(QuantError::PackedLengthMismatch {
            bytes: k.len(),
            expected: w * d,
        });
    }
    if acc.len() != h * w {
        return Err(QuantError::PackedLengthMismatch {
            bytes: acc.len(),
            expected: h * w,
        });
    }
    qkt_i8_i32(kernel, q, h, k, w, d, acc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_on_ragged_depths() {
        // Depths straddling the 16/32-byte SIMD steps, including tails.
        for d in [1usize, 7, 15, 16, 17, 31, 32, 33, 48, 64, 100] {
            let (h, w) = (3usize, 5usize);
            let q: Vec<i8> = (0..h * d).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let k: Vec<i8> = (0..w * d).map(|i| ((i * 91 + 5) % 255) as i8).collect();
            let mut want = vec![0i32; h * w];
            qkt_block_i32_with(&q, h, &k, w, d, &mut want, Kernel::Scalar).unwrap();
            for kernel in Kernel::supported() {
                let mut got = vec![0i32; h * w];
                qkt_block_i32_with(&q, h, &k, w, d, &mut got, kernel).unwrap();
                assert_eq!(got, want, "kernel={kernel} d={d}");
            }
        }
    }

    #[test]
    fn matches_hand_dot() {
        let q: Vec<i8> = vec![1, -2, 3, 4, -5, 6];
        let k: Vec<i8> = vec![7, 8, -9, -1, 2, 3];
        let mut acc = vec![0i32; 4];
        qkt_block_i32(&q, 2, &k, 2, 3, &mut acc).unwrap();
        // [1·7 − 2·8 − 3·9, −1 − 4 + 9, 4·7 − 5·8 − 6·9, −4 − 10 + 18]
        assert_eq!(acc, vec![-36, 4, -66, 4]);
    }

    #[test]
    fn validation() {
        let q = vec![0i8; 6];
        let k = vec![0i8; 6];
        let mut acc = vec![0i32; 4];
        assert!(qkt_block_i32(&q, 2, &k, 2, 3, &mut acc).is_ok());
        assert!(qkt_block_i32(&q, 2, &k, 3, 3, &mut acc).is_err());
        assert!(qkt_block_i32(&q, 3, &k, 2, 3, &mut acc).is_err());
        assert!(qkt_block_i32(&q, 2, &k, 2, 2, &mut acc).is_err());
    }
}
