use crate::Bitwidth;
use paro_tensor::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// Uniform affine quantization parameters for one group.
///
/// Implements the paper's Sec. II-B scheme: a float `x` is approximated by
/// `x̂ = s·(x_int − z)` where the integer code is
/// `x_int = clamp(round(x/s) + z, 0, 2^b − 1)`.
///
/// Calibration is dynamic min-max, exactly as in the paper:
/// `s = (max(x) − min(x)) / (2^b − 1)` with `z = round(−min(x)/s)`, so
/// `min(x)` *quantizes to* code 0 but code 0 *dequantizes to* `−s·z`,
/// which can differ from `min(x)` by up to `s/2` (the zero point is an
/// integer, so it rounds). See [`QuantParams::calibrate_minmax`] for the
/// precise round-trip contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
    bits: Bitwidth,
}

impl QuantParams {
    /// Builds parameters directly from a scale, zero point and bitwidth.
    ///
    /// Prefer [`QuantParams::calibrate_minmax`] unless replaying stored
    /// parameters. A non-positive or non-finite `scale` is clamped to a tiny
    /// positive value so `quantize` never divides by zero.
    pub fn new(scale: f32, zero_point: i32, bits: Bitwidth) -> Self {
        let scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            f32::MIN_POSITIVE
        };
        QuantParams {
            scale,
            zero_point,
            bits,
        }
    }

    /// Dynamic min-max calibration over a group of values (the paper's
    /// activation-quantization rule).
    ///
    /// Round-trip contract (let `lo = min(x)`, `s` the scale):
    ///
    /// - `quantize(lo) == 0` exactly — `round` is symmetric about zero, so
    ///   `round(lo/s) + round(−lo/s) = 0` always;
    /// - `dequantize(quantize(lo))` may differ from `lo` by up to `s/2`,
    ///   because the zero point `z = round(−lo/s)` is rounded to an
    ///   integer. Code 0 dequantizes to `−s·z`, not to `lo`;
    /// - an exact `0.0` in a group whose range straddles zero round-trips
    ///   to exactly `0.0` (code `z` dequantizes to `s·(z−z) = 0`).
    ///
    /// Degenerate groups (empty, constant, or all-non-finite) yield a scale
    /// that reproduces the constant exactly via the zero point.
    pub fn calibrate_minmax(values: &[f32], bits: Bitwidth) -> Self {
        if bits == Bitwidth::B0 {
            return QuantParams::new(1.0, 0, bits);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            return QuantParams::new(1.0, 0, bits);
        }
        let span = hi - lo;
        if span <= 0.0 {
            // Constant group: represent the constant `c = lo` exactly.
            // With s = |c| and z = -sign(c), code 0 dequantizes to exactly
            // c; a zero constant uses the trivial (s, z=0) pair.
            if lo == 0.0 {
                return QuantParams::new(f32::MIN_POSITIVE, 0, bits);
            }
            let z = if lo > 0.0 { -1 } else { 1 };
            return QuantParams::new(lo.abs(), z, bits);
        }
        // True min-max affine calibration: the range is [min, max], NOT
        // extended to include zero. This matters for PARO: after reorder,
        // dense high-value blocks sit far from zero, and a [min, max] range
        // gives them a far smaller scale than a [0, max] range would.
        let scale = span / bits.max_code() as f32;
        let zero_point = (-lo / scale).round() as i32;
        QuantParams::new(scale, zero_point, bits)
    }

    /// Percentile-clipped calibration: like
    /// [`QuantParams::calibrate_minmax`] but the range covers only the
    /// central `pct` fraction of the (sorted) values, clipping the tails.
    ///
    /// A standard PTQ alternative to min-max for heavy-tailed activations.
    /// For post-softmax attention maps it is usually the *wrong* choice —
    /// the outliers carry the attention mass — which the `quant`
    /// calibration ablation demonstrates; it is provided for that
    /// comparison and for users quantizing other tensors.
    ///
    /// `pct` is clamped to `(0, 1]`; `pct = 1.0` reduces to min-max.
    pub fn calibrate_percentile(values: &[f32], bits: Bitwidth, pct: f32) -> Self {
        if bits == Bitwidth::B0 {
            return QuantParams::new(1.0, 0, bits);
        }
        let pct = if pct.is_finite() {
            pct.clamp(1e-3, 1.0)
        } else {
            1.0
        };
        let mut finite: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return QuantParams::new(1.0, 0, bits);
        }
        finite.sort_by(f32::total_cmp);
        let n = finite.len();
        let cut = (((1.0 - pct) / 2.0) * n as f32).floor() as usize;
        let lo = finite[cut.min(n - 1)];
        let hi = finite[(n - 1 - cut).max(cut.min(n - 1))];
        let span = hi - lo;
        if span <= 0.0 {
            return QuantParams::calibrate_minmax(&[lo], bits);
        }
        let scale = span / bits.max_code() as f32;
        let zero_point = (-lo / scale).round() as i32;
        QuantParams::new(scale, zero_point, bits)
    }

    /// The scaling factor `s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The zero point `z`.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// The bitwidth `b`.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Quantizes a value to its integer code `clamp(round(x/s)+z, 0, 2^b−1)`.
    ///
    /// `B0` always returns code 0.
    pub fn quantize(&self, x: f32) -> u32 {
        if self.bits == Bitwidth::B0 {
            return 0;
        }
        // Saturating: `±∞ as i64` saturates to the i64 extremes, and the
        // zero-point add must not wrap past them (it clamps next anyway).
        let q = ((x / self.scale).round() as i64).saturating_add(self.zero_point as i64);
        q.clamp(0, self.bits.max_code() as i64) as u32
    }

    /// Quantizes a slice of values in one pass on the dispatched SIMD
    /// kernel. Element for element bit-identical to
    /// [`QuantParams::quantize`].
    pub fn quantize_slice(&self, values: &[f32]) -> Vec<u32> {
        self.quantize_slice_with(values, crate::kernels::active_kernel())
    }

    /// [`QuantParams::quantize_slice`] on an explicit kernel (forced-kernel
    /// testing); results are bit-identical across kernels.
    pub fn quantize_slice_with(&self, values: &[f32], kernel: Kernel) -> Vec<u32> {
        let mut out = vec![0u32; values.len()];
        if self.bits == Bitwidth::B0 {
            return out; // B0 always codes to 0, no arithmetic at all
        }
        crate::kernels::quantize_codes(
            kernel,
            values,
            self.scale,
            self.zero_point,
            self.bits.max_code(),
            &mut out,
        );
        out
    }

    /// Dequantizes an integer code back to a float `s·(code − z)`.
    ///
    /// `B0` always returns 0 (the block is skipped).
    pub fn dequantize(&self, code: u32) -> f32 {
        if self.bits == Bitwidth::B0 {
            return 0.0;
        }
        self.scale * (code as i64 - self.zero_point as i64) as f32
    }

    /// Quantize-then-dequantize ("fake quantization"), the float-side model
    /// of the integer datapath.
    pub fn fake_quant(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Fake-quantizes a slice in one pass.
    pub fn fake_quant_slice(&self, values: &[f32]) -> Vec<f32> {
        values.iter().map(|&v| self.fake_quant(v)).collect()
    }

    /// Sum of squared quantization errors over a group.
    pub fn sq_error(&self, values: &[f32]) -> f32 {
        values
            .iter()
            .map(|&v| {
                let e = v - self.fake_quant(v);
                e * e
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32 * 0.173).sin() * 3.0).collect();
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let p = QuantParams::calibrate_minmax(&values, bits);
            for &v in &values {
                let err = (v - p.fake_quant(v)).abs();
                assert!(
                    err <= p.scale() / 2.0 + 1e-5,
                    "bits={bits} v={v} err={err} scale={}",
                    p.scale()
                );
            }
        }
    }

    #[test]
    fn min_quantizes_to_code_zero_but_roundtrip_rounds() {
        // The documented contract: quantize(min) is exactly code 0, yet
        // dequantize(0) = −s·z can miss min by up to s/2 because the zero
        // point is rounded to an integer. Both halves are pinned here so a
        // future "fix" to either side shows up as a test failure.
        let groups: [&[f32]; 4] = [
            &[0.1, 1.0],
            &[-0.73, 0.4, 2.2],
            &[3.0, 3.1, 9.7],
            &[-5.0, -1.0, -0.2],
        ];
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            for values in groups {
                let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
                let p = QuantParams::calibrate_minmax(values, bits);
                assert_eq!(p.quantize(lo), 0, "bits={bits} lo={lo}");
                let err = (p.dequantize(0) - lo).abs();
                assert!(
                    err <= p.scale() / 2.0 + 1e-6,
                    "bits={bits} lo={lo} err={err} scale={}",
                    p.scale()
                );
            }
        }
        // A concrete case where the round-trip is NOT exact: [0.1, 1.0] at
        // B2 gives s = 0.3 and z = round(−1/3) = 0, so code 0 reads back
        // as 0.0, not 0.1.
        let p = QuantParams::calibrate_minmax(&[0.1, 1.0], Bitwidth::B2);
        assert_eq!(p.zero_point(), 0);
        assert_ne!(p.dequantize(p.quantize(0.1)), 0.1);
    }

    #[test]
    fn zero_is_exactly_representable() {
        // Post-softmax attention maps are full of (near-)zeros; the
        // calibration must keep exact zeros exact.
        let values = [0.0f32, 0.1, 0.9, 0.0, 0.3];
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let p = QuantParams::calibrate_minmax(&values, bits);
            assert_eq!(p.fake_quant(0.0), 0.0, "bits={bits}");
        }
    }

    #[test]
    fn b0_skips_everything() {
        let p = QuantParams::calibrate_minmax(&[1.0, 2.0, 3.0], Bitwidth::B0);
        assert_eq!(p.quantize(2.5), 0);
        assert_eq!(p.dequantize(0), 0.0);
        assert_eq!(p.fake_quant(123.0), 0.0);
    }

    #[test]
    fn constant_group_is_representable() {
        let p = QuantParams::calibrate_minmax(&[0.0, 0.0, 0.0], Bitwidth::B4);
        assert_eq!(p.fake_quant(0.0), 0.0);
    }

    #[test]
    fn empty_and_nonfinite_groups_do_not_panic() {
        let p = QuantParams::calibrate_minmax(&[], Bitwidth::B8);
        assert!(p.scale() > 0.0);
        let p = QuantParams::calibrate_minmax(&[f32::NAN, f32::INFINITY], Bitwidth::B8);
        assert!(p.fake_quant(1.0).is_finite());
    }

    #[test]
    fn codes_stay_in_range() {
        let values = [-5.0f32, -1.0, 0.0, 2.0, 7.0];
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let p = QuantParams::calibrate_minmax(&values, bits);
            for v in [-100.0f32, -5.0, 0.0, 7.0, 100.0] {
                assert!(p.quantize(v) <= bits.max_code());
            }
        }
    }

    #[test]
    fn more_bits_never_worse() {
        let values: Vec<f32> = (0..256).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
        let e2 = QuantParams::calibrate_minmax(&values, Bitwidth::B2).sq_error(&values);
        let e4 = QuantParams::calibrate_minmax(&values, Bitwidth::B4).sq_error(&values);
        let e8 = QuantParams::calibrate_minmax(&values, Bitwidth::B8).sq_error(&values);
        assert!(e2 >= e4);
        assert!(e4 >= e8);
    }

    #[test]
    fn outlier_inflates_scale() {
        // The paper's core observation (Sec. III-A): a single large outlier
        // in the group inflates the scale and crushes the small values.
        let uniform = [0.01f32, 0.012, 0.011, 0.013];
        let with_outlier = [0.01f32, 0.012, 0.011, 0.9];
        let pu = QuantParams::calibrate_minmax(&uniform, Bitwidth::B4);
        let po = QuantParams::calibrate_minmax(&with_outlier, Bitwidth::B4);
        assert!(po.scale() > pu.scale() * 10.0);
        // Small values become indistinguishable under the outlier-driven scale.
        assert_eq!(po.quantize(0.01), po.quantize(0.012));
        // Without the outlier they stay distinguishable.
        assert_ne!(pu.quantize(0.01), pu.quantize(0.013));
    }

    #[test]
    fn percentile_full_range_equals_minmax() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).sin()).collect();
        let a = QuantParams::calibrate_minmax(&values, Bitwidth::B4);
        let b = QuantParams::calibrate_percentile(&values, Bitwidth::B4, 1.0);
        assert!((a.scale() - b.scale()).abs() < 1e-6);
        assert_eq!(a.zero_point(), b.zero_point());
    }

    #[test]
    fn percentile_clips_tails() {
        // One huge outlier among small values: 90th-percentile calibration
        // ignores it and keeps the small values' resolution.
        let mut values = vec![0.01f32; 99];
        values.push(10.0);
        let minmax = QuantParams::calibrate_minmax(&values, Bitwidth::B4);
        let clipped = QuantParams::calibrate_percentile(&values, Bitwidth::B4, 0.9);
        assert!(clipped.scale() < minmax.scale() / 10.0);
        // But the outlier itself saturates badly under clipping.
        let err_clipped = (10.0 - clipped.fake_quant(10.0)).abs();
        let err_minmax = (10.0 - minmax.fake_quant(10.0)).abs();
        assert!(err_clipped > err_minmax);
    }

    #[test]
    fn percentile_wrong_for_attention_maps() {
        // The ablation conclusion: on an attention-map-like distribution
        // (few large in-group values carrying the mass, many near-zero
        // background values), clipping the top percentile destroys the
        // values that matter — total *mass-weighted* error explodes.
        let mut values: Vec<f32> = (0..96).map(|i| 1e-3 + 1e-4 * (i % 7) as f32).collect();
        values.extend([0.22f32, 0.24, 0.25, 0.29]); // the in-group mass
        let minmax = QuantParams::calibrate_minmax(&values, Bitwidth::B4);
        let clipped = QuantParams::calibrate_percentile(&values, Bitwidth::B4, 0.9);
        let weighted_err = |p: &QuantParams| -> f32 {
            values
                .iter()
                .map(|&v| v * (v - p.fake_quant(v)).abs())
                .sum()
        };
        assert!(
            weighted_err(&clipped) > weighted_err(&minmax) * 3.0,
            "clipping should be far worse on attention maps: {} vs {}",
            weighted_err(&clipped),
            weighted_err(&minmax)
        );
    }

    #[test]
    fn percentile_degenerate_inputs() {
        let p = QuantParams::calibrate_percentile(&[], Bitwidth::B8, 0.9);
        assert!(p.scale() > 0.0);
        let p = QuantParams::calibrate_percentile(&[f32::NAN], Bitwidth::B8, 0.9);
        assert!(p.scale() > 0.0);
        let p = QuantParams::calibrate_percentile(&[5.0; 10], Bitwidth::B8, 0.5);
        assert_eq!(p.fake_quant(5.0), 5.0);
        let p = QuantParams::calibrate_percentile(&[1.0, 2.0], Bitwidth::B0, 0.9);
        assert_eq!(p.fake_quant(2.0), 0.0);
    }

    #[test]
    fn quantize_slice_matches_elementwise() {
        let values: Vec<f32> = (0..41).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        for bits in [Bitwidth::B0, Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let p = QuantParams::calibrate_minmax(&values, bits);
            let want: Vec<u32> = values.iter().map(|&v| p.quantize(v)).collect();
            assert_eq!(p.quantize_slice(&values), want, "bits={bits}");
        }
    }

    #[test]
    fn new_clamps_bad_scale() {
        let p = QuantParams::new(0.0, 0, Bitwidth::B8);
        assert!(p.scale() > 0.0);
        let p = QuantParams::new(f32::NAN, 0, Bitwidth::B8);
        assert!(p.scale() > 0.0);
    }
}
