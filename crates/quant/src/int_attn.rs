//! Packed-integer block-sparse `AttnV` execution: the deployment path's
//! compute kernels.
//!
//! [`MixedPrecisionMap`] is the *storage* model — packed 2/4/8-bit codes
//! per block, nothing for 0-bit blocks. This module adds the matching
//! *compute* model: per-bitwidth i32 GEMM micro-kernels that unpack code
//! tiles from the packed bytes into small stack buffers, multiply-
//! accumulate against per-column-quantized `V` codes in i32, and apply
//! the FP16-style scale product once per block — exactly the PE-array /
//! vector-unit split of [`crate::quantized_gemm_i32`] +
//! [`crate::dequantize_gemm`], so the two paths are bit-identical on the
//! same codes. 0-bit blocks are bypassed without touching their bytes
//! (the dispatcher bypass), with MAC accounting matching the float-side
//! block-sparse reference.

use crate::kernels::{self, Kernel};
use crate::mixed_map::PARAM_BYTES_PER_BLOCK;
use crate::{Bitwidth, MixedPrecisionMap, PackedCodes, QuantError, QuantParams};
use paro_tensor::{Tensor, TensorError};

/// A rank-2 tensor quantized per column ("per-dimension", the granularity
/// the paper uses for `V`), with the integer codes kept for compute.
///
/// [`PerColCodes::dequantize`] is bit-identical to
/// `fake_quant_2d(t, Grouping::PerCol, bits).0` — the codes are the real
/// integer form of the float path's fake-quantized tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PerColCodes {
    codes: Vec<u32>,
    rows: usize,
    cols: usize,
    bits: Bitwidth,
    params: Vec<QuantParams>,
}

impl PerColCodes {
    /// Quantizes a rank-2 tensor per column at the given bitwidth.
    ///
    /// # Errors
    ///
    /// Returns a tensor rank error if `t` is not rank 2.
    pub fn quantize(t: &Tensor, bits: Bitwidth) -> Result<Self, QuantError> {
        if t.rank() != 2 {
            return Err(QuantError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: t.rank(),
            }));
        }
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let a = t.as_slice();
        let mut params = Vec::with_capacity(cols);
        let mut codes = vec![0u32; rows * cols];
        let mut col = vec![0.0f32; rows];
        for c in 0..cols {
            for r in 0..rows {
                col[r] = a[r * cols + c];
            }
            let p = QuantParams::calibrate_minmax(&col, bits);
            for r in 0..rows {
                codes[r * cols + c] = p.quantize(col[r]);
            }
            params.push(p);
        }
        Ok(PerColCodes {
            codes,
            rows,
            cols,
            bits,
            params,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage bitwidth.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Per-column quantization parameters.
    pub fn params(&self) -> &[QuantParams] {
        &self.params
    }

    /// Row-major codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Packed storage footprint: per-column packed code payloads plus one
    /// parameter record per column.
    pub fn payload_bytes(&self) -> usize {
        self.cols * (PackedCodes::bytes_for(self.rows, self.bits) + PARAM_BYTES_PER_BLOCK)
    }

    /// Codes with the per-column zero point pre-subtracted (the operand
    /// register form the MAC array consumes).
    pub fn centered(&self) -> Vec<i32> {
        let mut out = vec![0i32; self.rows * self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[r * self.cols + c] =
                    self.codes[r * self.cols + c] as i32 - self.params[c].zero_point();
            }
        }
        out
    }

    /// Dequantizes back to a float tensor, bit-identical to the per-column
    /// fake-quantized view.
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[r * self.cols + c] = self.params[c].dequantize(self.codes[r * self.cols + c]);
            }
        }
        Tensor::from_vec(&[self.rows, self.cols], out).expect("dims match codes by construction")
    }
}

/// Result of one packed-integer block-sparse `map x V`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedAttnV {
    /// The attention output `[n, d]`.
    pub output: Tensor,
    /// MACs actually executed (every element of every non-0-bit block,
    /// matching the float-side block-sparse accounting).
    pub executed_macs: u64,
    /// MACs a dense computation would have executed.
    pub dense_macs: u64,
    /// Packed map bytes the kernels actually read: code payload plus
    /// parameter bytes of every non-bypassed block.
    pub packed_map_bytes: u64,
    /// Number of 0-bit blocks bypassed without touching their bytes.
    pub skipped_blocks: usize,
    /// Stable name of the micro-kernel that executed the MACs (see
    /// [`paro_tensor::kernel::Kernel::as_str`]).
    pub kernel: &'static str,
}

impl PackedAttnV {
    /// Fraction of dense MACs skipped.
    pub fn skipped_fraction(&self) -> f64 {
        if self.dense_macs == 0 {
            return 0.0;
        }
        1.0 - self.executed_macs as f64 / self.dense_macs as f64
    }
}

/// Computes `map x V` directly on packed integer codes, skipping 0-bit
/// blocks.
///
/// Per block `b` (scale `s_b`, zero point `z_b`) and output column `c`
/// (V scale `s_c`, zero point `z_c`), the contribution to `out[r][c]` is
/// `(Σ_k (m[r][k] − z_b)·(v[k][c] − z_c)) · (s_b·s_c)` — i32 accumulation
/// then one f32 scale application, the exact expression
/// [`crate::quantized_gemm_i32`] + [`crate::dequantize_gemm`] compute, so
/// on identical codes the two paths agree bit for bit.
///
/// # Errors
///
/// Returns a matmul dimension mismatch if `v.rows()` differs from the
/// map's column count, or [`QuantError::Transient`] when the
/// `quant.pack_attn_v` failpoint is armed (chaos builds only).
pub fn packed_attn_v(map: &MixedPrecisionMap, v: &PerColCodes) -> Result<PackedAttnV, QuantError> {
    packed_attn_v_with(map, v, kernels::active_kernel())
}

/// [`packed_attn_v`] on an explicit [`Kernel`] instead of the dispatched
/// one. Accumulators are bit-identical across kernels; the equivalence
/// tests and in-process benchmark comparisons use this to pin SIMD paths
/// against the scalar reference.
///
/// # Errors
///
/// Same as [`packed_attn_v`].
pub fn packed_attn_v_with(
    map: &MixedPrecisionMap,
    v: &PerColCodes,
    kernel: Kernel,
) -> Result<PackedAttnV, QuantError> {
    if paro_failpoint::fire(paro_failpoint::site::QUANT_PACK_ATTN_V) {
        return Err(QuantError::Transient {
            site: paro_failpoint::site::QUANT_PACK_ATTN_V,
        });
    }
    let (m, n) = map.shape();
    if v.rows() != n {
        return Err(QuantError::Tensor(TensorError::MatmulDimMismatch {
            left: vec![m, n],
            right: vec![v.rows(), v.cols()],
        }));
    }
    let d = v.cols();
    let grid = map.grid();
    let (gr, gc) = grid.grid_dims(m, n);
    let unpack_span = paro_trace::span(paro_trace::stage::ATTNV_UNPACK);
    let v_centered = v.centered();
    drop(unpack_span);
    // Per-(block, column) scale product, rebuilt per block row-major —
    // computed exactly as `dequantize_gemm`'s `a.scale() * b.scale()`.
    let mut scale_row = vec![0.0f32; d];
    let mut acc = vec![0i32; grid.block_rows * d];
    let mut out = vec![0.0f32; m * d];
    let mut executed = 0u64;
    let mut packed_bytes = 0u64;
    let mut skipped = 0usize;
    for bi in 0..gr {
        for bj in 0..gc {
            let idx = bi * gc + bj;
            if map.block_bits(idx) == Bitwidth::B0 {
                skipped += 1;
                continue; // dispatcher bypass: bytes never touched
            }
            let (r0, c0, h, w) = grid.block_bounds(bi, bj, m, n);
            let params = map.block_params(idx);
            let codes = map.block_codes(idx);
            executed += (h * w * d) as u64;
            packed_bytes += map.block_payload_bytes(idx) as u64;
            let block_acc = &mut acc[..h * d];
            block_acc.fill(0);
            // The `attnv.mac` span covers only the micro-kernel call, so
            // its summary measures kernel throughput undiluted by the
            // (kernel-independent) accumulator fill and f32 scatter.
            let mac_span = paro_trace::span_detailed(paro_trace::stage::ATTNV_MAC, kernel.as_str());
            packed_block_gemm_i32_with(
                codes,
                params.zero_point(),
                h,
                w,
                &v_centered[c0 * d..(c0 + w) * d],
                d,
                block_acc,
                kernel,
            )?;
            drop(mac_span);
            let dequant_span = paro_trace::span(paro_trace::stage::ATTNV_DEQUANT);
            let s_b = params.scale();
            for (sr, p) in scale_row.iter_mut().zip(v.params()) {
                *sr = s_b * p.scale();
            }
            for lr in 0..h {
                let orow = &mut out[(r0 + lr) * d..(r0 + lr + 1) * d];
                let arow = &block_acc[lr * d..(lr + 1) * d];
                for ((o, &a), &s) in orow.iter_mut().zip(arow).zip(&scale_row) {
                    *o += a as f32 * s;
                }
            }
            drop(dequant_span);
        }
    }
    Ok(PackedAttnV {
        output: Tensor::from_vec(&[m, d], out)?,
        executed_macs: executed,
        dense_macs: (m * n * d) as u64,
        packed_map_bytes: packed_bytes,
        skipped_blocks: skipped,
        kernel: kernel.as_str(),
    })
}

/// One block's integer GEMM against pre-centered `V` codes: dispatches to
/// the per-bitwidth micro-kernel of the active [`Kernel`].
///
/// `codes` holds the block's `h*w` packed map codes (row-major within the
/// block), `v_centered` the `w*d` zero-point-subtracted V codes of the
/// block's key range, and `acc` receives `h*d` i32 accumulators
/// (`acc[r][c] += Σ_k (code[r][k] − zero_point) · v_centered[k][c]`).
///
/// # Errors
///
/// Returns [`QuantError::PackedLengthMismatch`] if `codes` does not hold
/// `h*w` elements or the slice lengths disagree with `h`, `w`, `d`.
pub fn packed_block_gemm_i32(
    codes: &PackedCodes,
    zero_point: i32,
    h: usize,
    w: usize,
    v_centered: &[i32],
    d: usize,
    acc: &mut [i32],
) -> Result<(), QuantError> {
    packed_block_gemm_i32_with(
        codes,
        zero_point,
        h,
        w,
        v_centered,
        d,
        acc,
        kernels::active_kernel(),
    )
}

/// [`packed_block_gemm_i32`] on an explicit [`Kernel`]. Accumulators are
/// bit-identical across kernels (exact i32 arithmetic, identical
/// accumulation order).
///
/// # Errors
///
/// Same as [`packed_block_gemm_i32`].
#[allow(clippy::too_many_arguments)]
pub fn packed_block_gemm_i32_with(
    codes: &PackedCodes,
    zero_point: i32,
    h: usize,
    w: usize,
    v_centered: &[i32],
    d: usize,
    acc: &mut [i32],
    kernel: Kernel,
) -> Result<(), QuantError> {
    if codes.len() != h * w {
        return Err(QuantError::PackedLengthMismatch {
            bytes: codes.len(),
            expected: h * w,
        });
    }
    if v_centered.len() != w * d {
        return Err(QuantError::PackedLengthMismatch {
            bytes: v_centered.len(),
            expected: w * d,
        });
    }
    if acc.len() != h * d {
        return Err(QuantError::PackedLengthMismatch {
            bytes: acc.len(),
            expected: h * d,
        });
    }
    kernels::block_gemm(
        kernel,
        codes.bits(),
        codes.as_bytes(),
        zero_point,
        h,
        w,
        v_centered,
        d,
        acc,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::TILE;
    use crate::{dequantize_gemm, quantized_gemm_i32, BlockGrid, Grouping, QuantizedGemmOperand};
    use paro_tensor::rng::seeded;
    use paro_tensor::{metrics, Tensor};
    use rand::distributions::Uniform;

    fn softmax_like(n: usize) -> Tensor {
        Tensor::from_fn(&[n, n], |i| {
            if i[0] / 4 == i[1] / 4 {
                0.2 + 0.01 * ((i[0] + i[1]) % 5) as f32
            } else {
                0.002 + 0.0005 * ((i[0] * 3 + i[1]) % 7) as f32
            }
        })
    }

    fn mixed_bits(n_blocks: usize) -> Vec<Bitwidth> {
        (0..n_blocks)
            .map(|i| match i % 4 {
                0 => Bitwidth::B8,
                1 => Bitwidth::B4,
                2 => Bitwidth::B2,
                _ => Bitwidth::B0,
            })
            .collect()
    }

    #[test]
    fn percol_codes_dequantize_matches_fake_quant() {
        let v = Tensor::random(&[13, 7], &Uniform::new(-2.0f32, 2.0), &mut seeded(5));
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let q = PerColCodes::quantize(&v, bits).unwrap();
            let (fq, params) = crate::fake_quant_2d(&v, Grouping::PerCol, bits).unwrap();
            assert_eq!(q.dequantize(), fq, "bits={bits}");
            assert_eq!(q.params(), &params[..]);
        }
    }

    #[test]
    fn percol_payload_counts_packed_bytes() {
        let v = Tensor::zeros(&[10, 4]);
        let q = PerColCodes::quantize(&v, Bitwidth::B8).unwrap();
        // 4 columns x (10 bytes of codes + 4 param bytes).
        assert_eq!(q.payload_bytes(), 4 * 14);
        let q2 = PerColCodes::quantize(&v, Bitwidth::B2).unwrap();
        // 10 elements x 2 bits = 3 bytes per column.
        assert_eq!(q2.payload_bytes(), 4 * 7);
    }

    #[test]
    fn single_block_bit_identical_to_reference_gemm() {
        // One map block spanning the whole key range, checked per V column
        // against quantized_gemm_i32 + dequantize_gemm built from the SAME
        // codes: i32 accumulators and f32 outputs must agree bit for bit.
        let n = 12;
        let d = 5;
        let map = softmax_like(n);
        let v = Tensor::random(&[n, d], &Uniform::new(-1.5f32, 1.5), &mut seeded(9));
        for bits in [Bitwidth::B2, Bitwidth::B4, Bitwidth::B8] {
            let grid = BlockGrid::square(n).unwrap();
            let packed = MixedPrecisionMap::quantize(&map, grid, &[bits]).unwrap();
            let vq = PerColCodes::quantize(&v, Bitwidth::B8).unwrap();
            let got = packed_attn_v(&packed, &vq).unwrap();
            let a_op = QuantizedGemmOperand::from_parts(
                packed.block_codes(0).unpack(),
                n,
                n,
                packed.block_params(0),
            )
            .unwrap();
            for c in 0..d {
                let col_codes: Vec<u32> = (0..n).map(|r| vq.codes()[r * d + c]).collect();
                let b_op =
                    QuantizedGemmOperand::from_parts(col_codes, n, 1, vq.params()[c]).unwrap();
                let acc = quantized_gemm_i32(&a_op, &b_op).unwrap();
                let want = dequantize_gemm(&acc, &a_op, &b_op).unwrap();
                for r in 0..n {
                    let g = got.output.at(&[r, c]);
                    let w = want.at(&[r, 0]);
                    assert_eq!(g.to_bits(), w.to_bits(), "bits={bits} r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn matches_float_sparse_path_and_accounts_macs() {
        let n = 18; // not divisible by the block edge: clipped edge blocks
        let d = 6;
        let map = softmax_like(n);
        let grid = BlockGrid::square(4).unwrap();
        let bits = mixed_bits(grid.block_count(n, n));
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        let v = Tensor::random(&[n, d], &Uniform::new(-1.0f32, 1.0), &mut seeded(3));
        let vq = PerColCodes::quantize(&v, Bitwidth::B8).unwrap();
        let got = packed_attn_v(&packed, &vq).unwrap();
        // Float reference: dense matmul of the dequantized operands.
        let dense = packed
            .dequantize()
            .unwrap()
            .matmul(&vq.dequantize())
            .unwrap();
        assert!(
            metrics::relative_l2(&dense, &got.output).unwrap() < 1e-5,
            "packed-int output must match the fake-quant float path"
        );
        // MAC accounting: every non-B0 block contributes h*w*d.
        let (gr, gc) = grid.grid_dims(n, n);
        let mut want_exec = 0u64;
        let mut want_bytes = 0u64;
        let mut want_skipped = 0usize;
        for bi in 0..gr {
            for bj in 0..gc {
                let idx = bi * gc + bj;
                if packed.block_bits(idx) == Bitwidth::B0 {
                    want_skipped += 1;
                    continue;
                }
                let (_, _, h, w) = grid.block_bounds(bi, bj, n, n);
                want_exec += (h * w * d) as u64;
                want_bytes += packed.block_payload_bytes(idx) as u64;
            }
        }
        assert_eq!(got.executed_macs, want_exec);
        assert_eq!(got.dense_macs, (n * n * d) as u64);
        assert_eq!(got.packed_map_bytes, want_bytes);
        assert_eq!(got.skipped_blocks, want_skipped);
        assert!(got.skipped_fraction() > 0.0);
    }

    #[test]
    fn all_b0_map_yields_exact_zero_output_for_free() {
        let n = 8;
        let grid = BlockGrid::square(4).unwrap();
        let bits = vec![Bitwidth::B0; grid.block_count(n, n)];
        let packed = MixedPrecisionMap::quantize(&softmax_like(n), grid, &bits).unwrap();
        let vq = PerColCodes::quantize(&Tensor::full(&[n, 3], 1.0), Bitwidth::B8).unwrap();
        let got = packed_attn_v(&packed, &vq).unwrap();
        assert!(got.output.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(got.executed_macs, 0);
        assert_eq!(got.packed_map_bytes, 0);
        assert_eq!(got.skipped_blocks, 4);
        assert_eq!(got.skipped_fraction(), 1.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let packed = MixedPrecisionMap::quantize(
            &softmax_like(8),
            BlockGrid::square(4).unwrap(),
            &[Bitwidth::B8; 4],
        )
        .unwrap();
        let vq = PerColCodes::quantize(&Tensor::zeros(&[7, 3]), Bitwidth::B8).unwrap();
        assert!(packed_attn_v(&packed, &vq).is_err());
        let rank1 = Tensor::zeros(&[4]);
        assert!(PerColCodes::quantize(&rank1, Bitwidth::B8).is_err());
    }

    #[test]
    fn block_gemm_validates_lengths() {
        let codes = PackedCodes::pack(&[1, 2, 3, 0], Bitwidth::B4).unwrap();
        let mut acc = vec![0i32; 4];
        // Wrong code count for the claimed block shape.
        assert!(packed_block_gemm_i32(&codes, 0, 3, 2, &[0; 4], 2, &mut acc).is_err());
        // Wrong V slice length.
        assert!(packed_block_gemm_i32(&codes, 0, 2, 2, &[0; 3], 2, &mut acc).is_err());
        // Wrong accumulator length.
        assert!(packed_block_gemm_i32(&codes, 0, 2, 2, &[0; 4], 2, &mut acc[..3]).is_err());
        // Correct shapes pass.
        assert!(packed_block_gemm_i32(&codes, 0, 2, 2, &[1; 4], 2, &mut acc).is_ok());
        assert_eq!(acc, vec![3, 3, 3, 3]);
    }

    #[test]
    fn tile_boundaries_are_seamless() {
        // A block row wider than one tile: the kernel must unpack multiple
        // tiles per row without losing or duplicating elements.
        let w = TILE + 17;
        let h = 3;
        let map = Tensor::from_fn(&[h, w], |i| ((i[0] * w + i[1]) % 13) as f32 * 0.05);
        let grid = BlockGrid::new(h, w).unwrap();
        let packed = MixedPrecisionMap::quantize(&map, grid, &[Bitwidth::B2]).unwrap();
        let v = Tensor::from_fn(&[w, 2], |i| ((i[0] + i[1]) % 5) as f32 - 2.0);
        let vq = PerColCodes::quantize(&v, Bitwidth::B8).unwrap();
        let got = packed_attn_v(&packed, &vq).unwrap();
        let dense = packed
            .dequantize()
            .unwrap()
            .matmul(&vq.dequantize())
            .unwrap();
        assert!(metrics::relative_l2(&dense, &got.output).unwrap() < 1e-5);
    }
}
