//! Packed storage of a mixed-precision attention map.
//!
//! The accelerator stores each attention-map block at its allocated
//! bitwidth: packed integer codes plus one FP16-style `(scale, zero_point)`
//! pair per block, and nothing at all for 0-bit blocks. This type is that
//! storage format in software: it quantizes a map block-wise into packed
//! codes, reports the exact byte footprint (the number the paper's
//! "average 4.80 bits" compression claim is about), and dequantizes back
//! for computation.

use crate::{Bitwidth, BlockGrid, PackedCodes, QuantError, QuantParams};
use paro_tensor::kernel::{active_kernel, Kernel};
use paro_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Bytes charged per stored block for quantization parameters (FP16 scale
/// + INT8 zero point, padded).
pub const PARAM_BYTES_PER_BLOCK: usize = 4;

/// A block-quantized attention map in packed storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPrecisionMap {
    rows: usize,
    cols: usize,
    grid: BlockGrid,
    blocks: Vec<StoredBlock>,
}

/// One stored block: packed codes + parameters (absent for 0-bit blocks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredBlock {
    bits: Bitwidth,
    params: QuantParams,
    codes: PackedCodes,
}

impl MixedPrecisionMap {
    /// Quantizes a rank-2 map block-wise at the given per-block bitwidths
    /// (row-major block order) into packed storage.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BitwidthCountMismatch`] if the bitwidth list
    /// does not match the block count, and propagates tensor errors.
    pub fn quantize(
        map: &Tensor,
        grid: BlockGrid,
        bits_per_block: &[Bitwidth],
    ) -> Result<Self, QuantError> {
        Self::quantize_with(map, grid, bits_per_block, active_kernel())
    }

    /// [`MixedPrecisionMap::quantize`] on an explicit [`Kernel`]
    /// (forced-kernel testing). The stored blocks are bit-identical
    /// across kernels.
    ///
    /// # Errors
    ///
    /// Same as [`MixedPrecisionMap::quantize`].
    pub fn quantize_with(
        map: &Tensor,
        grid: BlockGrid,
        bits_per_block: &[Bitwidth],
        kernel: Kernel,
    ) -> Result<Self, QuantError> {
        if map.rank() != 2 {
            return Err(QuantError::Tensor(paro_tensor::TensorError::RankMismatch {
                expected: 2,
                actual: map.rank(),
            }));
        }
        let (rows, cols) = (map.shape()[0], map.shape()[1]);
        let (gr, gc) = grid.grid_dims(rows, cols);
        if bits_per_block.len() != gr * gc {
            return Err(QuantError::BitwidthCountMismatch {
                supplied: bits_per_block.len(),
                blocks: gr * gc,
            });
        }
        let data = map.as_slice();
        let mut blocks = Vec::with_capacity(gr * gc);
        // One scratch gather buffer reused across blocks — the per-block
        // `Tensor` allocations were a measurable share of quantize_map.
        let mut scratch: Vec<f32> = Vec::new();
        let mut zeros: Vec<u32> = Vec::new();
        for bi in 0..gr {
            for bj in 0..gc {
                let (r0, c0, h, w) = grid.block_bounds(bi, bj, rows, cols);
                let bits = bits_per_block[bi * gc + bj];
                if bits == Bitwidth::B0 {
                    // Bypassed block: calibration ignores the values and
                    // every code is 0, so skip the gather and arithmetic
                    // entirely (bit-identical to the general path).
                    zeros.resize(h * w, 0);
                    blocks.push(StoredBlock {
                        bits,
                        params: QuantParams::calibrate_minmax(&[], bits),
                        codes: PackedCodes::pack(&zeros[..h * w], bits)?,
                    });
                    continue;
                }
                scratch.clear();
                for r in r0..r0 + h {
                    scratch.extend_from_slice(&data[r * cols + c0..r * cols + c0 + w]);
                }
                let params = QuantParams::calibrate_minmax(&scratch, bits);
                let code_list = params.quantize_slice_with(&scratch, kernel);
                let codes = PackedCodes::pack(&code_list, bits)?;
                blocks.push(StoredBlock {
                    bits,
                    params,
                    codes,
                });
            }
        }
        Ok(MixedPrecisionMap {
            rows,
            cols,
            grid,
            blocks,
        })
    }

    /// Map dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The block grid.
    pub fn grid(&self) -> BlockGrid {
        self.grid
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The bitwidth of block `i` (row-major).
    pub fn block_bits(&self, i: usize) -> Bitwidth {
        self.blocks[i].bits
    }

    /// The quantization parameters of block `i` (row-major).
    pub fn block_params(&self, i: usize) -> QuantParams {
        self.blocks[i].params
    }

    /// The packed codes of block `i` (row-major), stored row-major within
    /// the block.
    pub fn block_codes(&self, i: usize) -> &PackedCodes {
        &self.blocks[i].codes
    }

    /// The bytes the execution path actually reads for block `i`: packed
    /// code payload plus parameter bytes, or 0 for a bypassed 0-bit block.
    pub fn block_payload_bytes(&self, i: usize) -> usize {
        let b = &self.blocks[i];
        if b.bits == Bitwidth::B0 {
            0
        } else {
            b.codes.byte_len() + PARAM_BYTES_PER_BLOCK
        }
    }

    /// Fraction of map elements that dequantize to exactly zero: every
    /// element of a 0-bit block, plus every code equal to its block's zero
    /// point (`s·(z − z) = 0`; a nonzero `code − z` never underflows to
    /// zero because scales are clamped to at least `f32::MIN_POSITIVE`).
    /// Equals `fraction_zero(self.dequantize())` without materializing the
    /// dense map.
    pub fn zero_fraction(&self) -> f32 {
        let mut zeros = 0u64;
        let mut elems = 0u64;
        for b in &self.blocks {
            elems += b.codes.len() as u64;
            if b.bits == Bitwidth::B0 {
                zeros += b.codes.len() as u64;
            } else if b.params.zero_point() >= 0 {
                let z = b.params.zero_point() as u32;
                zeros += b.codes.unpack().iter().filter(|&&c| c == z).count() as u64;
            }
        }
        if elems == 0 {
            0.0
        } else {
            zeros as f32 / elems as f32
        }
    }

    /// Exact storage footprint in bytes: packed code payloads plus
    /// parameter bytes for every non-skipped block.
    pub fn footprint_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                if b.bits == Bitwidth::B0 {
                    0
                } else {
                    b.codes.byte_len() + PARAM_BYTES_PER_BLOCK
                }
            })
            .sum()
    }

    /// Footprint of the same map stored uniformly at `bits`.
    pub fn uniform_footprint_bytes(&self, bits: Bitwidth) -> usize {
        if bits == Bitwidth::B0 {
            return 0;
        }
        self.blocks
            .iter()
            .map(|b| PackedCodes::bytes_for(b.codes.len(), bits) + PARAM_BYTES_PER_BLOCK)
            .sum()
    }

    /// Element-weighted average stored bits per map element.
    pub fn effective_bits(&self) -> f32 {
        let mut bit_sum = 0u64;
        let mut elems = 0u64;
        for b in &self.blocks {
            bit_sum += b.bits.bits() as u64 * b.codes.len() as u64;
            elems += b.codes.len() as u64;
        }
        if elems == 0 {
            0.0
        } else {
            bit_sum as f32 / elems as f32
        }
    }

    /// Dequantizes the full map back to a dense tensor (0-bit blocks read
    /// as zeros).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors (cannot fail for a well-formed map).
    pub fn dequantize(&self) -> Result<Tensor, QuantError> {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        let (gr, gc) = self.grid.grid_dims(self.rows, self.cols);
        for bi in 0..gr {
            for bj in 0..gc {
                let (r0, c0, h, w) = self.grid.block_bounds(bi, bj, self.rows, self.cols);
                let stored = &self.blocks[bi * gc + bj];
                if stored.bits == Bitwidth::B0 {
                    continue;
                }
                let values: Vec<f32> = stored
                    .codes
                    .unpack()
                    .into_iter()
                    .map(|c| stored.params.dequantize(c))
                    .collect();
                let block = Tensor::from_vec(&[h, w], values)?;
                out.set_block(r0, c0, &block)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake_quant_blocks;
    use paro_tensor::metrics;

    fn softmax_like(n: usize) -> Tensor {
        Tensor::from_fn(&[n, n], |i| {
            if i[0] / 4 == i[1] / 4 {
                0.2 + 0.01 * ((i[0] + i[1]) % 5) as f32
            } else {
                0.002 + 0.0005 * ((i[0] * 3 + i[1]) % 7) as f32
            }
        })
    }

    fn mixed_bits(n_blocks: usize) -> Vec<Bitwidth> {
        (0..n_blocks)
            .map(|i| match i % 4 {
                0 => Bitwidth::B8,
                1 => Bitwidth::B4,
                2 => Bitwidth::B2,
                _ => Bitwidth::B0,
            })
            .collect()
    }

    #[test]
    fn packed_dequantize_matches_fake_quant() {
        // The packed storage path must be bit-identical to the float-side
        // fake quantization.
        let map = softmax_like(16);
        let grid = BlockGrid::square(4).unwrap();
        let bits = mixed_bits(grid.block_count(16, 16));
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        let (fq, _) = fake_quant_blocks(&map, grid, &bits).unwrap();
        assert_eq!(packed.dequantize().unwrap(), fq);
    }

    #[test]
    fn footprint_tracks_effective_bits() {
        let map = softmax_like(32);
        let grid = BlockGrid::square(4).unwrap();
        let count = grid.block_count(32, 32);
        let bits = mixed_bits(count);
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        // (8+4+2+0)/4 = 3.5 effective bits.
        assert!((packed.effective_bits() - 3.5).abs() < 0.01);
        let payload = packed.footprint_bytes() as f32;
        let ideal = 32.0 * 32.0 * 3.5 / 8.0;
        // Payload = codes + per-block params; with tiny 4x4 blocks the
        // parameter overhead is large (4 bytes per 16 elements), so allow
        // up to 50% above the pure-code ideal.
        assert!(
            payload >= ideal && payload < ideal * 1.5,
            "payload {payload} vs ideal {ideal}"
        );
    }

    #[test]
    fn compression_vs_uniform_int8_and_fp16() {
        // The paper's 4.80-bit claim: vs INT8 storage the mixed map is
        // ~8/4.8 = 1.67x smaller (ignoring params).
        let map = softmax_like(64);
        let grid = BlockGrid::square(8).unwrap();
        let count = grid.block_count(64, 64);
        // ~10% B0, 20% B2, 30% B4, 40% B8 -> ~4.8 bits nominal.
        let bits: Vec<Bitwidth> = (0..count)
            .map(|i| {
                let frac = i as f32 / count as f32;
                if frac < 0.10 {
                    Bitwidth::B0
                } else if frac < 0.30 {
                    Bitwidth::B2
                } else if frac < 0.60 {
                    Bitwidth::B4
                } else {
                    Bitwidth::B8
                }
            })
            .collect();
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        assert!(
            (packed.effective_bits() - 4.8).abs() < 0.2,
            "effective bits {}",
            packed.effective_bits()
        );
        let int8 = packed.uniform_footprint_bytes(Bitwidth::B8);
        let ratio = int8 as f32 / packed.footprint_bytes() as f32;
        assert!(
            (1.4..2.0).contains(&ratio),
            "compression vs INT8 {ratio} should be ~1.67x"
        );
    }

    #[test]
    fn zero_bit_blocks_cost_nothing() {
        let map = softmax_like(8);
        let grid = BlockGrid::square(4).unwrap();
        let bits = vec![Bitwidth::B0; grid.block_count(8, 8)];
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        assert_eq!(packed.footprint_bytes(), 0);
        assert!(packed
            .dequantize()
            .unwrap()
            .as_slice()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn quality_preserved_through_packing() {
        let map = softmax_like(32);
        let grid = BlockGrid::square(4).unwrap();
        let bits = vec![Bitwidth::B8; grid.block_count(32, 32)];
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        let back = packed.dequantize().unwrap();
        assert!(metrics::relative_l2(&map, &back).unwrap() < 0.02);
    }

    #[test]
    fn validation() {
        let map = softmax_like(8);
        let grid = BlockGrid::square(4).unwrap();
        assert!(matches!(
            MixedPrecisionMap::quantize(&map, grid, &[Bitwidth::B8]),
            Err(QuantError::BitwidthCountMismatch { .. })
        ));
        let v = Tensor::zeros(&[4]);
        assert!(MixedPrecisionMap::quantize(&v, grid, &[]).is_err());
    }

    #[test]
    fn zero_fraction_matches_dense_count() {
        let map = softmax_like(16);
        let grid = BlockGrid::square(4).unwrap();
        let bits = mixed_bits(grid.block_count(16, 16));
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        let dense = packed.dequantize().unwrap();
        let expected = dense.as_slice().iter().filter(|&&v| v == 0.0).count() as f32
            / dense.as_slice().len() as f32;
        assert_eq!(packed.zero_fraction(), expected);
        assert!(packed.zero_fraction() > 0.0, "B0 blocks guarantee zeros");
    }

    #[test]
    fn accessors() {
        let map = softmax_like(8);
        let grid = BlockGrid::square(4).unwrap();
        let bits = mixed_bits(grid.block_count(8, 8));
        let packed = MixedPrecisionMap::quantize(&map, grid, &bits).unwrap();
        assert_eq!(packed.shape(), (8, 8));
        assert_eq!(packed.block_count(), 4);
        assert_eq!(packed.block_bits(0), Bitwidth::B8);
        assert_eq!(packed.block_bits(3), Bitwidth::B0);
    }
}
