use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantization bitwidth from the paper's palette `{0, 2, 4, 8}`.
///
/// `B0` means "skip": the paper's mixed-precision allocator may assign zero
/// bits to an attention-map block, in which case the accelerator's
/// dispatcher bypasses the block entirely and its dequantized value is zero.
///
/// # Example
///
/// ```
/// use paro_quant::Bitwidth;
///
/// assert_eq!(Bitwidth::B4.bits(), 4);
/// assert_eq!(Bitwidth::B4.levels(), 16);
/// assert_eq!(Bitwidth::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bitwidth {
    /// Zero bits: the block is skipped and reads back as exactly zero.
    B0,
    /// Two-bit codes (4 levels).
    B2,
    /// Four-bit codes (16 levels).
    B4,
    /// Eight-bit codes (256 levels).
    B8,
}

impl Bitwidth {
    /// All bitwidths in ascending order, matching the paper's `b ∈ {0,2,4,8}`.
    pub const ALL: [Bitwidth; 4] = [Bitwidth::B0, Bitwidth::B2, Bitwidth::B4, Bitwidth::B8];

    /// The number of bits.
    pub const fn bits(self) -> u32 {
        match self {
            Bitwidth::B0 => 0,
            Bitwidth::B2 => 2,
            Bitwidth::B4 => 4,
            Bitwidth::B8 => 8,
        }
    }

    /// The number of representable levels, `2^bits` (1 for `B0`).
    pub const fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// The maximum code value, `2^bits − 1`.
    pub const fn max_code(self) -> u32 {
        self.levels() - 1
    }

    /// Parses a bit count into a `Bitwidth`.
    ///
    /// Returns `None` for anything outside `{0, 2, 4, 8}`.
    pub const fn from_bits(bits: u32) -> Option<Bitwidth> {
        match bits {
            0 => Some(Bitwidth::B0),
            2 => Some(Bitwidth::B2),
            4 => Some(Bitwidth::B4),
            8 => Some(Bitwidth::B8),
            _ => None,
        }
    }
}

impl std::str::FromStr for Bitwidth {
    type Err = ParseBitwidthError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_end_matches("bit");
        trimmed
            .parse::<u32>()
            .ok()
            .and_then(Bitwidth::from_bits)
            .ok_or_else(|| ParseBitwidthError {
                input: s.to_string(),
            })
    }
}

impl TryFrom<u32> for Bitwidth {
    type Error = ParseBitwidthError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        Bitwidth::from_bits(bits).ok_or_else(|| ParseBitwidthError {
            input: bits.to_string(),
        })
    }
}

/// Error parsing a [`Bitwidth`] from text or an integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitwidthError {
    input: String,
}

impl fmt::Display for ParseBitwidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "'{}' is not a valid bitwidth (expected 0, 2, 4 or 8)",
            self.input
        )
    }
}

impl std::error::Error for ParseBitwidthError {}

impl fmt::Display for Bitwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_codes() {
        assert_eq!(Bitwidth::B0.levels(), 1);
        assert_eq!(Bitwidth::B2.levels(), 4);
        assert_eq!(Bitwidth::B4.levels(), 16);
        assert_eq!(Bitwidth::B8.levels(), 256);
        assert_eq!(Bitwidth::B8.max_code(), 255);
        assert_eq!(Bitwidth::B0.max_code(), 0);
    }

    #[test]
    fn from_bits_roundtrip() {
        for b in Bitwidth::ALL {
            assert_eq!(Bitwidth::from_bits(b.bits()), Some(b));
        }
        assert_eq!(Bitwidth::from_bits(3), None);
        assert_eq!(Bitwidth::from_bits(16), None);
    }

    #[test]
    fn ordering_matches_bits() {
        assert!(Bitwidth::B0 < Bitwidth::B2);
        assert!(Bitwidth::B2 < Bitwidth::B4);
        assert!(Bitwidth::B4 < Bitwidth::B8);
    }

    #[test]
    fn display() {
        assert_eq!(Bitwidth::B4.to_string(), "4bit");
        assert_eq!(Bitwidth::B0.to_string(), "0bit");
    }

    #[test]
    fn parse_roundtrip() {
        for b in Bitwidth::ALL {
            // Display -> FromStr round trip.
            assert_eq!(b.to_string().parse::<Bitwidth>().unwrap(), b);
            // Bare number too.
            assert_eq!(b.bits().to_string().parse::<Bitwidth>().unwrap(), b);
            assert_eq!(Bitwidth::try_from(b.bits()).unwrap(), b);
        }
        assert!("3".parse::<Bitwidth>().is_err());
        assert!("four".parse::<Bitwidth>().is_err());
        assert!(Bitwidth::try_from(16u32).is_err());
        let err = "3".parse::<Bitwidth>().unwrap_err();
        assert!(err.to_string().contains("3"));
    }
}
